/// \file Persistent thread-team substrate for barrier-coupled back-ends.
///
/// AccCpuThreads maps every alpaka thread of a block onto its own OS thread
/// and synchronizes them with a std::barrier. Those threads must all exist
/// concurrently (a barrier participant blocks its OS thread), so the
/// chunk-scheduling ThreadPool cannot host them — its dynamic scheduling
/// gives no concurrency guarantee. The seed spawned a fresh std::jthread
/// team on *every* kernel launch; this pool keeps the team threads alive
/// across launches and hands out exactly teamSize of them per run, removing
/// the dominant per-launch cost of the AccCpuThreads back-end (thread
/// creation, ~tens of microseconds each).
///
/// Publication uses the same generation-parity spin-then-park protocol as
/// ThreadPool's job slots (see spin.hpp and DESIGN.md §3.5): members spin
/// briefly on the generation word before parking in an atomic futex wait,
/// and the submitter elides the wake syscall while every parked member was
/// already covered by an earlier notify. Back-to-back AccCpuThreads
/// launches therefore stop futex-round-tripping per launch on multi-core
/// machines. Member selection is an atomic ticket: the first teamSize
/// registrants of a generation run the body, later ones back out.
///
/// Retention policy: the pool keeps at most retainCount() threads between
/// runs (oversized teams get their surplus spawned per run and trimmed
/// afterwards, i.e. seed behaviour) — a single huge launch must not pin
/// hundreds of OS threads for the process lifetime, and the bounded size
/// also bounds the notify_all wakeup fan-out per launch.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace threadpool
{
    class TeamPool
    {
    public:
        TeamPool();
        ~TeamPool();

        TeamPool(TeamPool const&) = delete;
        auto operator=(TeamPool const&) -> TeamPool& = delete;

        //! Runs body(t) for every t in [0, teamSize), each on its own
        //! persistent OS thread, all live concurrently (so body may use
        //! blocking barriers between the members). Blocks until every
        //! member returned. body must not throw — kernel-level errors are
        //! captured by the executors before they reach the pool.
        //!
        //! Concurrent runTeam calls from different threads serialize.
        //! Nested calls from inside a team body are rejected (throws
        //! UsageError): the members the inner run would need are the ones
        //! the outer run is blocking on.
        void runTeam(std::size_t teamSize, std::function<void(std::size_t)> const& body);

        //! Number of persistent threads currently alive (grows on demand,
        //! trimmed back to retainCount() after oversized runs).
        [[nodiscard]] auto threadCount() const -> std::size_t;

        //! Maximum number of threads kept alive between runs.
        [[nodiscard]] static auto retainCount() -> std::size_t;

        //! Lazily constructed process-wide pool.
        [[nodiscard]] static auto global() -> TeamPool&;

    private:
        void memberLoop(std::size_t memberIndex);
        //! Wakes every member (trim and shutdown): bumps the generation by
        //! 2 — the parity stays "closed", so no tickets can be claimed —
        //! and pays an unconditional notify.
        void wakeAllMembers();

        std::mutex submitMutex_; //!< serializes whole runTeam calls
        mutable std::mutex threadsMutex_; //!< protects threads_ only

        //! Run descriptor: plain fields, written under submitMutex_ while
        //! the generation is closed, read by members only between
        //! registering in active_ and re-validating the generation — the
        //! same publication argument as ThreadPool's job slots.
        std::function<void(std::size_t)> const* body_ = nullptr;
        std::size_t teamSize_ = 0;

        //! Odd = run open (tickets claimable), even = closed.
        alignas(64) std::atomic<std::uint64_t> generation_{0};
        //! Member indices handed out this run; the first teamSize_ claimants
        //! execute the body.
        alignas(64) std::atomic<std::size_t> nextTicket_{0};
        //! Ticket holders still inside the body.
        alignas(64) std::atomic<std::size_t> running_{0};
        //! Members registered between generation validation and back-out.
        alignas(64) std::atomic<std::size_t> active_{0};
        alignas(64) std::atomic<std::size_t> parked_{0};
        std::atomic<bool> parkedSinceNotify_{false};
        //! Members with index >= keep_ exit their loop (trim protocol).
        std::atomic<std::size_t> keep_{static_cast<std::size_t>(-1)};
        std::atomic<bool> shutdown_{false};
        int spinBudget_;
        std::vector<std::jthread> threads_;
    };
} // namespace threadpool
