/// \file Persistent thread-team substrate for barrier-coupled back-ends.
///
/// AccCpuThreads maps every alpaka thread of a block onto its own OS thread
/// and synchronizes them with a std::barrier. Those threads must all exist
/// concurrently (a barrier participant blocks its OS thread), so the
/// chunk-scheduling ThreadPool cannot host them — its dynamic scheduling
/// gives no concurrency guarantee. The seed spawned a fresh std::jthread
/// team on *every* kernel launch; this pool keeps the team threads alive
/// across launches and hands out exactly teamSize of them per run, removing
/// the dominant per-launch cost of the AccCpuThreads back-end (thread
/// creation, ~tens of microseconds each).
///
/// Retention policy: the pool keeps at most retainCount() threads between
/// runs (oversized teams get their surplus spawned per run and trimmed
/// afterwards, i.e. seed behaviour) — a single huge launch must not pin
/// hundreds of OS threads for the process lifetime, and the bounded size
/// also bounds the notify_all wakeup fan-out per launch.
///
/// This is a correctness-first substrate: launches are rare compared to the
/// barrier traffic inside them, so publication uses a plain mutex/condvar.
/// The throughput-critical engine is ThreadPool (see thread_pool.hpp).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace threadpool
{
    class TeamPool
    {
    public:
        TeamPool() = default;
        ~TeamPool();

        TeamPool(TeamPool const&) = delete;
        auto operator=(TeamPool const&) -> TeamPool& = delete;

        //! Runs body(t) for every t in [0, teamSize), each on its own
        //! persistent OS thread, all live concurrently (so body may use
        //! blocking barriers between the members). Blocks until every
        //! member returned. body must not throw — kernel-level errors are
        //! captured by the executors before they reach the pool.
        //!
        //! Concurrent runTeam calls from different threads serialize.
        //! Nested calls from inside a team body are rejected (throws
        //! std::logic_error): the members the inner run would need are
        //! the ones the outer run is blocking on.
        void runTeam(std::size_t teamSize, std::function<void(std::size_t)> const& body);

        //! Number of persistent threads currently alive (grows on demand,
        //! trimmed back to retainCount() after oversized runs).
        [[nodiscard]] auto threadCount() const -> std::size_t;

        //! Maximum number of threads kept alive between runs.
        [[nodiscard]] static auto retainCount() -> std::size_t;

        //! Lazily constructed process-wide pool.
        [[nodiscard]] static auto global() -> TeamPool&;

    private:
        void memberLoop(std::size_t memberIndex);

        std::mutex submitMutex_; //!< serializes whole runTeam calls
        mutable std::mutex mutex_; //!< protects all state below
        std::condition_variable cvWork_;
        std::condition_variable cvDone_;
        std::uint64_t generation_ = 0;
        std::function<void(std::size_t)> const* body_ = nullptr;
        std::size_t teamSize_ = 0;
        std::size_t nextTicket_ = 0; //!< member indices handed out this run
        std::size_t running_ = 0; //!< members still inside body
        std::size_t keep_ = static_cast<std::size_t>(-1); //!< members with index >= keep_ exit
        bool shutdown_ = false;
        std::vector<std::jthread> threads_;
    };
} // namespace threadpool
