/// \file Spin-then-park primitives shared by the threadpool substrates.
///
/// ThreadPool (chunk scheduling) and TeamPool (barrier-coupled teams) use
/// the same waiting discipline: spin briefly on an atomic word, then park
/// in a C++20 atomic (futex) wait. In-flight work units are typically
/// sub-microsecond, so the spin phase usually wins and the syscall is
/// skipped. The helpers live here so both pools share one tested copy.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>

#if defined(__x86_64__) && defined(__GNUC__)
#    include <immintrin.h>
#endif

namespace threadpool::detail
{
    inline void cpuRelax() noexcept
    {
#if defined(__x86_64__) && defined(__GNUC__)
        _mm_pause();
#else
        std::this_thread::yield();
#endif
    }

    //! Default spin iterations before parking in the futex.
    inline constexpr int spinBeforePark = 4096;

    //! Actual spin budget for this machine: zero on single-hardware-thread
    //! machines, where spinning can never observe progress by another core
    //! and only steals the timeslice of the thread being waited for.
    [[nodiscard]] inline auto machineSpinBudget() noexcept -> int
    {
        return std::thread::hardware_concurrency() <= 1 ? 0 : spinBeforePark;
    }

    //! Odd generations mean "slot open", even mean "closed" (the parity
    //! protocol of the generation-stamped job slots).
    [[nodiscard]] constexpr auto isOpen(std::uint64_t generation) noexcept -> bool
    {
        return (generation & 1u) != 0;
    }

    //! Spin briefly, then park on the futex until \p counter reaches zero.
    inline void awaitZero(std::atomic<std::size_t>& counter, int spins)
    {
        for(;;)
        {
            auto const value = counter.load(std::memory_order_seq_cst);
            if(value == 0)
                return;
            if(spins-- > 0)
                cpuRelax();
            else
                counter.wait(value, std::memory_order_seq_cst);
        }
    }

    //! Publish word with syscall-elided wakeups, the waiting discipline
    //! shared by ThreadPool's job-ring publication and the graph replay
    //! engine's ready ring (DESIGN.md §3.1/§4.3).
    //!
    //! Protocol: a waiter snapshots the word, re-checks its own readiness
    //! predicate, spins, and eventually parks via park(snapshot); a
    //! publisher makes its state visible (release/seq_cst stores), then
    //! calls publish(). The seq_cst bump forms a Dekker pair with the
    //! waiter's parked-counter increment — either the waiter's re-check or
    //! its futex value check sees the publish, or the publisher sees it
    //! parked and pays the notify. The notify itself is elided while every
    //! currently parked waiter was already covered by an earlier notify
    //! (woken but not yet scheduled still counts as parked); a waiter
    //! parking after the last notify re-arms the flag, so nobody sleeps
    //! through a publish.
    class PublishWord
    {
    public:
        //! Word value to pass to park(); always re-check the readiness
        //! predicate *after* taking the snapshot.
        [[nodiscard]] auto snapshot() const noexcept -> std::uint64_t
        {
            return seq_.load(std::memory_order_seq_cst);
        }

        //! Advertises newly published state and wakes parked waiters
        //! (elided when all were covered by an earlier notify).
        void publish() noexcept
        {
            seq_.fetch_add(1, std::memory_order_seq_cst);
            if(parked_.load(std::memory_order_seq_cst) != 0
               && parkedSinceNotify_.exchange(false, std::memory_order_seq_cst))
                seq_.notify_all();
        }

        //! Unconditional advertise + wake (shutdown paths).
        void publishAlways() noexcept
        {
            seq_.fetch_add(1, std::memory_order_seq_cst);
            seq_.notify_all();
        }

        //! Blocks until the word moved past \p seen (or a spurious wake).
        void park(std::uint64_t seen) noexcept
        {
            parked_.fetch_add(1, std::memory_order_seq_cst);
            parkedSinceNotify_.store(true, std::memory_order_seq_cst);
            seq_.wait(seen, std::memory_order_seq_cst);
            parked_.fetch_sub(1, std::memory_order_relaxed);
        }

    private:
        alignas(64) std::atomic<std::uint64_t> seq_{0};
        alignas(64) std::atomic<std::size_t> parked_{0};
        std::atomic<bool> parkedSinceNotify_{false};
    };
} // namespace threadpool::detail
