/// \file Spin-then-park primitives shared by the threadpool substrates.
///
/// ThreadPool (chunk scheduling) and TeamPool (barrier-coupled teams) use
/// the same waiting discipline: spin briefly on an atomic word, then park
/// in a C++20 atomic (futex) wait. In-flight work units are typically
/// sub-microsecond, so the spin phase usually wins and the syscall is
/// skipped. The helpers live here so both pools share one tested copy.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>

#if defined(__x86_64__) && defined(__GNUC__)
#    include <immintrin.h>
#endif

namespace threadpool::detail
{
    inline void cpuRelax() noexcept
    {
#if defined(__x86_64__) && defined(__GNUC__)
        _mm_pause();
#else
        std::this_thread::yield();
#endif
    }

    //! Default spin iterations before parking in the futex.
    inline constexpr int spinBeforePark = 4096;

    //! Actual spin budget for this machine: zero on single-hardware-thread
    //! machines, where spinning can never observe progress by another core
    //! and only steals the timeslice of the thread being waited for.
    [[nodiscard]] inline auto machineSpinBudget() noexcept -> int
    {
        return std::thread::hardware_concurrency() <= 1 ? 0 : spinBeforePark;
    }

    //! Odd generations mean "slot open", even mean "closed" (the parity
    //! protocol of the generation-stamped job slots).
    [[nodiscard]] constexpr auto isOpen(std::uint64_t generation) noexcept -> bool
    {
        return (generation & 1u) != 0;
    }

    //! Spin briefly, then park on the futex until \p counter reaches zero.
    inline void awaitZero(std::atomic<std::size_t>& counter, int spins)
    {
        for(;;)
        {
            auto const value = counter.load(std::memory_order_seq_cst);
            if(value == 0)
                return;
            if(spins-- > 0)
                cpuRelax();
            else
                counter.wait(value, std::memory_order_seq_cst);
        }
    }
} // namespace threadpool::detail
