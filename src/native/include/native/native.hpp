/// \file Native baseline implementations (paper Sec. 4: "Source codes
/// denoted as native are not wrapped by Alpaka, but contain pure CUDA or
/// OpenMP code").
///
/// Three baseline families:
///  * seq  — plain sequential C++ (the paper's native C++ DAXPY),
///  * omp  — OpenMP 2 parallel-for implementations (the paper's native
///           OpenMP kernels, run on the Xeon nodes),
///  * sim  — kernels written directly against the raw gpusim API (the
///           paper's native CUDA kernels, run on the K20/K80; see DESIGN.md
///           for the substitution).
///
/// The Alpaka-vs-native comparisons of Fig. 4/5/6/8/10 measure exactly the
/// abstraction overhead because both sides execute on the same substrate.
#pragma once

#include "gpusim/device.hpp"
#include "gpusim/stream.hpp"

#include <cstddef>

namespace native::seq
{
    //! y <- a*x + y, plain loop.
    void daxpy(std::size_t n, double a, double const* x, double* y);

    //! C <- alpha*A*B + beta*C, classic triple loop (row-major, leading
    //! dimensions in elements).
    void gemm(
        std::size_t n,
        double alpha,
        double const* a,
        std::size_t lda,
        double const* b,
        std::size_t ldb,
        double beta,
        double* c,
        std::size_t ldc);
} // namespace native::seq

namespace native::omp
{
    //! y <- a*x + y, `#pragma omp parallel for`.
    void daxpy(std::size_t n, double a, double const* x, double* y);

    //! C <- alpha*A*B + beta*C, parallel over rows with nested loops — the
    //! paper's "standard DGEMM algorithm with nested for loops".
    void gemm(
        std::size_t n,
        double alpha,
        double const* a,
        std::size_t lda,
        double const* b,
        std::size_t ldb,
        double beta,
        double* c,
        std::size_t ldc);
} // namespace native::omp

namespace native::sim
{
    //! y <- a*x + y on device buffers; one thread per element, launched
    //! with \p threadsPerBlock threads (the classic CUDA daxpy shape).
    void daxpy(
        gpusim::Stream& stream,
        std::size_t n,
        double a,
        double const* devX,
        double* devY,
        unsigned threadsPerBlock = 128);

    //! Block-parallel shared-memory tiled DGEMM on device buffers, the CUDA
    //! programming guide algorithm (square thread blocks of
    //! \p tile x \p tile threads, one C element per thread, A/B tiles
    //! staged through shared memory, two barriers per tile step).
    void gemmTiled(
        gpusim::Stream& stream,
        std::size_t n,
        double alpha,
        double const* devA,
        std::size_t lda,
        double const* devB,
        std::size_t ldb,
        double beta,
        double* devC,
        std::size_t ldc,
        unsigned tile = 8);
} // namespace native::sim
