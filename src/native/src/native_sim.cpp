#include "native/native.hpp"

namespace native::sim
{
    void daxpy(
        gpusim::Stream& stream,
        std::size_t n,
        double a,
        double const* devX,
        double* devY,
        unsigned threadsPerBlock)
    {
        gpusim::GridSpec grid;
        grid.block = gpusim::Dim3{threadsPerBlock, 1, 1};
        grid.grid = gpusim::Dim3{
            static_cast<unsigned>((n + threadsPerBlock - 1) / threadsPerBlock),
            1,
            1};
        grid.noBarrier = true; // daxpy never synchronizes

        stream.launch(
            grid,
            [n, a, devX, devY](gpusim::ThreadCtx& ctx)
            {
                auto const i = ctx.globalLinearThreadIdx();
                if(i < n)
                    devY[i] = a * devX[i] + devY[i];
            });
    }

    void gemmTiled(
        gpusim::Stream& stream,
        std::size_t n,
        double alpha,
        double const* devA,
        std::size_t lda,
        double const* devB,
        std::size_t ldb,
        double beta,
        double* devC,
        std::size_t ldc,
        unsigned tile)
    {
        gpusim::GridSpec grid;
        grid.block = gpusim::Dim3{tile, tile, 1};
        auto const blocks = static_cast<unsigned>((n + tile - 1) / tile);
        grid.grid = gpusim::Dim3{blocks, blocks, 1};
        grid.sharedMemBytes = 2ull * tile * tile * sizeof(double);

        stream.launch(
            grid,
            [n, alpha, devA, lda, devB, ldb, beta, devC, ldc, tile](gpusim::ThreadCtx& ctx)
            {
                auto* const tileA = reinterpret_cast<double*>(ctx.sharedMem());
                auto* const tileB = tileA + static_cast<std::size_t>(tile) * tile;

                auto const tx = ctx.threadIdx().x;
                auto const ty = ctx.threadIdx().y;
                auto const row = static_cast<std::size_t>(ctx.blockIdx().y) * tile + ty;
                auto const col = static_cast<std::size_t>(ctx.blockIdx().x) * tile + tx;

                double sum = 0.0;
                auto const tileCount = (n + tile - 1) / tile;
                for(std::size_t t = 0; t < tileCount; ++t)
                {
                    auto const aCol = t * tile + tx;
                    auto const bRow = t * tile + ty;
                    tileA[ty * tile + tx] = (row < n && aCol < n) ? devA[row * lda + aCol] : 0.0;
                    tileB[ty * tile + tx] = (bRow < n && col < n) ? devB[bRow * ldb + col] : 0.0;
                    ctx.sync();

                    for(unsigned k = 0; k < tile; ++k)
                        sum += tileA[ty * tile + k] * tileB[k * tile + tx];
                    ctx.sync();
                }

                if(row < n && col < n)
                    devC[row * ldc + col] = alpha * sum + beta * devC[row * ldc + col];
            });
    }
} // namespace native::sim
