#include "native/native.hpp"

namespace native::seq
{
    void daxpy(std::size_t n, double a, double const* x, double* y)
    {
        for(std::size_t i = 0; i < n; ++i)
            y[i] = a * x[i] + y[i];
    }

    void gemm(
        std::size_t n,
        double alpha,
        double const* a,
        std::size_t lda,
        double const* b,
        std::size_t ldb,
        double beta,
        double* c,
        std::size_t ldc)
    {
        for(std::size_t i = 0; i < n; ++i)
        {
            for(std::size_t j = 0; j < n; ++j)
            {
                double sum = 0.0;
                for(std::size_t k = 0; k < n; ++k)
                    sum += a[i * lda + k] * b[k * ldb + j];
                c[i * ldc + j] = alpha * sum + beta * c[i * ldc + j];
            }
        }
    }
} // namespace native::seq

namespace native::omp
{
    void daxpy(std::size_t n, double a, double const* x, double* y)
    {
        auto const count = static_cast<long long>(n);
#pragma omp parallel for schedule(static)
        for(long long i = 0; i < count; ++i)
            y[i] = a * x[i] + y[i];
    }

    void gemm(
        std::size_t n,
        double alpha,
        double const* a,
        std::size_t lda,
        double const* b,
        std::size_t ldb,
        double beta,
        double* c,
        std::size_t ldc)
    {
        auto const rows = static_cast<long long>(n);
#pragma omp parallel for schedule(static)
        for(long long i = 0; i < rows; ++i)
        {
            for(std::size_t j = 0; j < n; ++j)
            {
                double sum = 0.0;
                for(std::size_t k = 0; k < n; ++k)
                    sum += a[static_cast<std::size_t>(i) * lda + k] * b[k * ldb + j];
                c[static_cast<std::size_t>(i) * ldc + j]
                    = alpha * sum + beta * c[static_cast<std::size_t>(i) * ldc + j];
            }
        }
    }
} // namespace native::omp
