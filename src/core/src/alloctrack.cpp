#include "alpaka/core/alloctrack.hpp"

#if defined(ALPAKA_REPRO_ALLOCTRACK)

#    include <atomic>
#    include <cstddef>
#    include <cstdlib>
#    include <new>

namespace
{
    // Relaxed is enough: the audit reads the counter on a quiesced
    // process state (before/after a serving window it drained), never
    // pairs it with another variable.
    std::atomic<std::uint64_t> gAllocCount{0};
    std::atomic<std::uint64_t> gDeallocCount{0};

    auto countedAlloc(std::size_t size) noexcept -> void*
    {
        gAllocCount.fetch_add(1, std::memory_order_relaxed);
        // malloc(0) may return nullptr legally; operator new must not.
        return std::malloc(size != 0 ? size : 1);
    }

    auto countedAlignedAlloc(std::size_t size, std::size_t align) noexcept -> void*
    {
        gAllocCount.fetch_add(1, std::memory_order_relaxed);
        // aligned_alloc requires size to be a multiple of the alignment.
        auto const rounded = (size + align - 1) / align * align;
        return std::aligned_alloc(align, rounded != 0 ? rounded : align);
    }

    void countedFree(void* ptr) noexcept
    {
        if(ptr == nullptr)
            return;
        gDeallocCount.fetch_add(1, std::memory_order_relaxed);
        std::free(ptr);
    }
} // namespace

// Replacements for the replaceable global allocation functions. Sized
// deletes forward to the unsized forms; sanitizer builds still intercept
// the underlying malloc/free, so the audit composes with TSan/ASan lanes.

auto operator new(std::size_t size) -> void*
{
    if(auto* const p = countedAlloc(size))
        return p;
    throw std::bad_alloc{};
}

auto operator new[](std::size_t size) -> void*
{
    return ::operator new(size);
}

auto operator new(std::size_t size, std::align_val_t align) -> void*
{
    if(auto* const p = countedAlignedAlloc(size, static_cast<std::size_t>(align)))
        return p;
    throw std::bad_alloc{};
}

auto operator new[](std::size_t size, std::align_val_t align) -> void*
{
    return ::operator new(size, align);
}

auto operator new(std::size_t size, std::nothrow_t const&) noexcept -> void*
{
    return countedAlloc(size);
}

auto operator new[](std::size_t size, std::nothrow_t const&) noexcept -> void*
{
    return countedAlloc(size);
}

auto operator new(std::size_t size, std::align_val_t align, std::nothrow_t const&) noexcept -> void*
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}

auto operator new[](std::size_t size, std::align_val_t align, std::nothrow_t const&) noexcept -> void*
{
    return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* ptr) noexcept
{
    countedFree(ptr);
}

void operator delete[](void* ptr) noexcept
{
    countedFree(ptr);
}

void operator delete(void* ptr, std::size_t) noexcept
{
    countedFree(ptr);
}

void operator delete[](void* ptr, std::size_t) noexcept
{
    countedFree(ptr);
}

void operator delete(void* ptr, std::align_val_t) noexcept
{
    countedFree(ptr);
}

void operator delete[](void* ptr, std::align_val_t) noexcept
{
    countedFree(ptr);
}

void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept
{
    countedFree(ptr);
}

void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept
{
    countedFree(ptr);
}

void operator delete(void* ptr, std::nothrow_t const&) noexcept
{
    countedFree(ptr);
}

void operator delete[](void* ptr, std::nothrow_t const&) noexcept
{
    countedFree(ptr);
}

void operator delete(void* ptr, std::align_val_t, std::nothrow_t const&) noexcept
{
    countedFree(ptr);
}

void operator delete[](void* ptr, std::align_val_t, std::nothrow_t const&) noexcept
{
    countedFree(ptr);
}

namespace alpaka::core
{
    auto allocTrackEnabled() noexcept -> bool
    {
        return true;
    }

    auto allocCount() noexcept -> std::uint64_t
    {
        return gAllocCount.load(std::memory_order_relaxed);
    }

    auto deallocCount() noexcept -> std::uint64_t
    {
        return gDeallocCount.load(std::memory_order_relaxed);
    }
} // namespace alpaka::core

#else // !ALPAKA_REPRO_ALLOCTRACK

namespace alpaka::core
{
    auto allocTrackEnabled() noexcept -> bool
    {
        return false;
    }

    auto allocCount() noexcept -> std::uint64_t
    {
        return 0;
    }

    auto deallocCount() noexcept -> std::uint64_t
    {
        return 0;
    }
} // namespace alpaka::core

#endif
