/// \file Fault-injection registry and seeded decision function (DESIGN.md §7.2).

#include "alpaka/core/fault.hpp"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace alpaka::fault
{
    namespace detail
    {
        //! One armed (site, schedule, action). Owned jointly by the plan
        //! that installed it and any in-flight evaluate() that snapshotted
        //! it — a site hit races freely with plan destruction, so the
        //! registry hands out shared_ptrs and never frees under a hitter.
        struct Rule
        {
            std::string site;
            std::uint64_t seed;
            Trigger trigger;
            bool isDelay = false;
            std::chrono::nanoseconds delayFor{0};
            std::function<std::exception_ptr()> make;
            std::atomic<std::uint64_t> hits{0};
            std::atomic<std::uint64_t> fired{0};
        };

        namespace
        {
            struct Registry
            {
                std::mutex mutex;
                std::vector<std::shared_ptr<Rule>> rules; // installation order
            };

            auto registry() -> Registry&
            {
                static Registry r;
                return r;
            }

            // FNV-1a, so a site's schedule is stable across runs and
            // independent of other sites sharing the seed.
            auto hashSite(std::string_view site) noexcept -> std::uint64_t
            {
                std::uint64_t h = 0xcbf29ce484222325ull;
                for(char const c : site)
                {
                    h ^= static_cast<unsigned char>(c);
                    h *= 0x100000001b3ull;
                }
                return h;
            }

            auto splitmix64(std::uint64_t x) noexcept -> std::uint64_t
            {
                x += 0x9E3779B97F4A7C15ull;
                x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
                x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
                return x ^ (x >> 31);
            }
        } // namespace

        auto armedRules() noexcept -> std::atomic<int>&
        {
            static std::atomic<int> n{0};
            return n;
        }

        namespace
        {
            //! Process totals behind fault::totalHits/totalFires — the
            //! registry's fault-fire counters (DESIGN.md §10.4). Bumped
            //! only inside evaluate(), i.e. only while armed: the
            //! unarmed fast path stays one load.
            std::atomic<std::uint64_t> g_totalHits{0};
            std::atomic<std::uint64_t> g_totalFires{0};
        } // namespace

        void evaluate(char const* site)
        {
            g_totalHits.fetch_add(1, std::memory_order_relaxed);
            // Snapshot the matching rules, then act with the lock dropped:
            // a firing rule may sleep or throw, and a concurrent plan
            // destructor must never wait behind either.
            std::vector<std::shared_ptr<Rule>> matched;
            {
                auto& reg = registry();
                std::lock_guard<std::mutex> lock(reg.mutex);
                for(auto const& r : reg.rules)
                    if(r->site == site)
                        matched.push_back(r);
            }
            for(auto const& r : matched)
            {
                auto const hitIndex = r->hits.fetch_add(1, std::memory_order_relaxed) + 1;
                if(!Plan::decides(r->seed, r->site, r->trigger, hitIndex))
                    continue;
                // fetch_add first so concurrent hitters agree on who owns
                // each of the maxFires slots; overshoot simply doesn't act.
                if(r->fired.fetch_add(1, std::memory_order_relaxed) + 1 > r->trigger.maxFires)
                    continue;
                g_totalFires.fetch_add(1, std::memory_order_relaxed);
                if(r->isDelay)
                    std::this_thread::sleep_for(r->delayFor);
                else if(r->make)
                    std::rethrow_exception(r->make());
                else
                    throw InjectedFault("injected fault at site '" + r->site + "'");
            }
        }
    } // namespace detail

    auto totalHits() noexcept -> std::uint64_t
    {
        return detail::g_totalHits.load(std::memory_order_relaxed);
    }

    auto totalFires() noexcept -> std::uint64_t
    {
        return detail::g_totalFires.load(std::memory_order_relaxed);
    }

    auto Plan::envSeed() -> std::uint64_t
    {
        if(char const* const env = std::getenv("ALPAKA_STRESS_SEED"))
            return std::strtoull(env, nullptr, 0);
        return 0x5EDBA7C4ull;
    }

    Plan::Plan() : Plan(envSeed())
    {
    }

    Plan::Plan(std::uint64_t seed) : seed_(seed)
    {
    }

    Plan::~Plan()
    {
        auto& reg = detail::registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        for(auto const& mine : rules_)
            reg.rules.erase(std::remove(reg.rules.begin(), reg.rules.end(), mine), reg.rules.end());
        detail::armedRules().fetch_sub(static_cast<int>(rules_.size()), std::memory_order_release);
    }

    namespace
    {
        void install(std::shared_ptr<detail::Rule> rule, std::vector<std::shared_ptr<detail::Rule>>& mine)
        {
            auto& reg = detail::registry();
            {
                std::lock_guard<std::mutex> lock(reg.mutex);
                reg.rules.push_back(rule);
            }
            mine.push_back(std::move(rule));
            detail::armedRules().fetch_add(1, std::memory_order_release);
        }
    } // namespace

    auto Plan::fail(std::string_view site, Trigger trigger, std::function<std::exception_ptr()> make) -> Plan&
    {
        auto rule = std::make_shared<detail::Rule>();
        rule->site = std::string(site);
        rule->seed = seed_;
        rule->trigger = trigger;
        rule->make = std::move(make);
        install(std::move(rule), rules_);
        return *this;
    }

    auto Plan::delay(std::string_view site, std::chrono::nanoseconds duration, Trigger trigger) -> Plan&
    {
        auto rule = std::make_shared<detail::Rule>();
        rule->site = std::string(site);
        rule->seed = seed_;
        rule->trigger = trigger;
        rule->isDelay = true;
        rule->delayFor = duration;
        install(std::move(rule), rules_);
        return *this;
    }

    auto Plan::hits(std::string_view site) const -> std::uint64_t
    {
        std::uint64_t n = 0;
        for(auto const& r : rules_)
            if(r->site == site)
                n = std::max(n, r->hits.load(std::memory_order_relaxed));
        return n;
    }

    auto Plan::fires(std::string_view site) const -> std::uint64_t
    {
        std::uint64_t n = 0;
        for(auto const& r : rules_)
            if(r->site == site)
                n += std::min(r->fired.load(std::memory_order_relaxed), r->trigger.maxFires);
        return n;
    }

    auto Plan::decides(std::uint64_t seed, std::string_view site, Trigger const& trigger, std::uint64_t hitIndex)
        -> bool
    {
        if(hitIndex < trigger.nth)
            return false;
        if(trigger.period == 0)
        {
            if(hitIndex != trigger.nth)
                return false;
        }
        else if((hitIndex - trigger.nth) % trigger.period != 0)
            return false;
        if(trigger.probability >= 1.0)
            return true;
        if(trigger.probability <= 0.0)
            return false;
        auto const x
            = detail::splitmix64(seed ^ detail::hashSite(site) ^ (hitIndex * 0x9E3779B97F4A7C15ull));
        // 53 uniform mantissa bits in [0,1) against p — the standard
        // bit-exact uniform-double construction.
        return static_cast<double>(x >> 11) * 0x1.0p-53 < trigger.probability;
    }
} // namespace alpaka::fault
