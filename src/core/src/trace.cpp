/// \file Trace thread table, site interning, and the calibrated drain
/// (DESIGN.md §10.2). The recording hot path lives in the header; this
/// file is everything that may lock or allocate — registration, name
/// interning, and the collector side.

#include "alpaka/core/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>
#include <string>

namespace alpaka::trace
{
    namespace detail
    {
        namespace
        {
            //! Lock-free ring table: slots claimed by one fetch_add,
            //! pointers published with release stores. Rings are never
            //! freed — a collector may drain a ring after its thread
            //! exited, and the table bounds the footprint regardless.
            std::atomic<ThreadRing*> g_table[maxThreads]{};
            std::atomic<std::uint32_t> g_threadCount{0};

            struct SiteTable
            {
                std::mutex mutex;
                std::vector<std::string> names; // id = index
            };

            auto siteTable() -> SiteTable&
            {
                static SiteTable t;
                return t;
            }

            //! Site-id readers (drain, exporters) must not take the
            //! intern lock: names are also published into this bounded
            //! lock-free mirror (release store per slot, like the ring
            //! table). 512 sites is far beyond the code's site count.
            constexpr std::size_t maxSites = 512;
            std::atomic<char const*> g_siteNames[maxSites]{};
            std::atomic<std::uint32_t> g_siteCount{0};

            auto steadyNs() noexcept -> std::uint64_t
            {
                return std::uint64_t(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now().time_since_epoch())
                        .count());
            }

            //! Two-point tick→ns calibration. The base pair is captured
            //! at static-init/first-use; drain() refreshes the second
            //! point each call, so the mapping tightens as wall time
            //! accumulates. On non-x86, ticks already ARE steady ns and
            //! the mapping is the identity.
            struct Calibration
            {
                std::uint64_t tick0;
                std::uint64_t ns0;
            };

            auto calibration() noexcept -> Calibration&
            {
                static Calibration c{nowTicks(), steadyNs()};
                return c;
            }

            // Forces base-pair capture before any event is recorded in
            // this TU's users (best effort; first drain still works
            // even if events predate it — ticks map linearly anyway).
            [[maybe_unused]] auto const& g_calibInit = calibration();
        } // namespace

        auto registerThisThread() noexcept -> ThreadRing*
        {
            auto const tid = g_threadCount.fetch_add(1, std::memory_order_relaxed);
            if(tid >= maxThreads)
                return nullptr;
            // Default-init, NOT value-init: the 256 KiB events array must
            // stay untouched here. Zeroing it faults every page of the
            // ring inside the first record() — ~300 ns/launch measured on
            // short-lived submitter threads — and the collector never
            // reads past [tail, head), so indeterminate cells are
            // unobservable. aligned_alloc + placement new rather than the
            // aligned operator new: rings must not route through
            // replaceable operators (tests and the ALLOCTRACK audit
            // replace them, and the ring is infrastructure those audits
            // measure AROUND, not part of the measured workload).
            static_assert(sizeof(ThreadRing) % alignof(ThreadRing) == 0);
            void* const mem = std::aligned_alloc(alignof(ThreadRing), sizeof(ThreadRing));
            if(mem == nullptr)
                return nullptr;
            auto* const r = ::new(mem) ThreadRing;
            if(r == nullptr)
                return nullptr;
            r->tid = tid;
            g_table[tid].store(r, std::memory_order_release);
            return r;
        }
    } // namespace detail

    void setEnabled(bool on) noexcept
    {
        detail::g_enabled.store(on, std::memory_order_relaxed);
    }

    auto enabled() noexcept -> bool
    {
        return detail::g_enabled.load(std::memory_order_relaxed);
    }

    auto internSite(std::string_view name) -> std::uint32_t
    {
        auto& t = detail::siteTable();
        std::lock_guard<std::mutex> lock(t.mutex);
        for(std::size_t i = 0; i < t.names.size(); ++i)
            if(t.names[i] == name)
                return std::uint32_t(i);
        auto const id = std::uint32_t(t.names.size());
        t.names.emplace_back(name);
        if(id < detail::maxSites)
        {
            // string storage is stable: names are never erased and the
            // vector only grows, but the c_str pointer must survive
            // reallocation — publish a leaked copy instead.
            auto* const stable = new char[name.size() + 1];
            std::memcpy(stable, name.data(), name.size());
            stable[name.size()] = '\0';
            detail::g_siteNames[id].store(stable, std::memory_order_release);
            detail::g_siteCount.store(id + 1, std::memory_order_release);
        }
        return id;
    }

    auto siteName(std::uint32_t id) noexcept -> std::string_view
    {
        if(id >= detail::g_siteCount.load(std::memory_order_acquire))
            return "?";
        auto const* const s = detail::g_siteNames[id].load(std::memory_order_acquire);
        return s != nullptr ? std::string_view(s) : std::string_view("?");
    }

    auto siteCount() noexcept -> std::size_t
    {
        return detail::g_siteCount.load(std::memory_order_acquire);
    }

    void nameThread(std::string_view name) noexcept
    {
        auto* const r = detail::ring();
        if(r == nullptr)
            return;
        auto const n = std::min(name.size(), sizeof(r->name) - 1);
        std::memcpy(r->name, name.data(), n);
        r->name[n] = '\0';
        r->named.store(true, std::memory_order_release);
    }

    auto threadName(std::uint32_t tid) noexcept -> std::string_view
    {
        if(tid >= maxThreads)
            return {};
        auto const* const r = detail::g_table[tid].load(std::memory_order_acquire);
        if(r == nullptr || !r->named.load(std::memory_order_acquire))
            return {};
        return r->name;
    }

    auto threadCount() noexcept -> std::size_t
    {
        return std::min<std::size_t>(detail::g_threadCount.load(std::memory_order_relaxed), maxThreads);
    }

    auto drain(std::vector<Event>& out) -> DrainStats
    {
        // One collector at a time: tail is single-consumer state.
        static std::mutex drainMutex;
        std::lock_guard<std::mutex> lock(drainMutex);

        // Refresh the calibration's far point; convert through the
        // resulting linear map. Identity when ticks are already ns.
        auto const& base = detail::calibration();
        auto const tick1 = detail::nowTicks();
        auto const ns1 = std::uint64_t(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
        double nsPerTick = 1.0;
        if(tick1 > base.tick0 && ns1 > base.ns0)
            nsPerTick = double(ns1 - base.ns0) / double(tick1 - base.tick0);
        auto const toNs = [&](std::uint64_t tick) -> std::uint64_t
        {
            if(tick <= base.tick0)
                return base.ns0;
            return base.ns0 + std::uint64_t(double(tick - base.tick0) * nsPerTick);
        };

        DrainStats stats{};
        auto const n = threadCount();
        for(std::size_t i = 0; i < n; ++i)
        {
            auto* const r = detail::g_table[i].load(std::memory_order_acquire);
            if(r == nullptr)
                continue;
            ++stats.threads;
            // Snapshot-consistent slice: exactly the events published
            // before this acquire (litmus: obs/*_ring_publish).
            auto const head = r->head.load(std::memory_order_acquire);
            auto tail = r->tail.load(std::memory_order_relaxed);
            for(; tail != head; ++tail)
            {
                Event e = r->events[tail & (ringCapacity - 1)];
                e.tsNs = toNs(e.tsNs);
                out.push_back(e);
                ++stats.events;
            }
            // Grant cell reuse only after the copies above (litmus:
            // obs/*_ring_reclaim).
            r->tail.store(head, std::memory_order_release);
            stats.dropped += r->dropped.load(std::memory_order_relaxed);
        }
        stats.tableFullDrops = detail::g_tableFullDrops.load(std::memory_order_relaxed);
        return stats;
    }

    auto droppedTotal() noexcept -> std::uint64_t
    {
        std::uint64_t total = 0;
        auto const n = threadCount();
        for(std::size_t i = 0; i < n; ++i)
            if(auto const* const r = detail::g_table[i].load(std::memory_order_acquire))
                total += r->dropped.load(std::memory_order_relaxed);
        return total;
    }

    auto recordedTotal() noexcept -> std::uint64_t
    {
        std::uint64_t total = 0;
        auto const n = threadCount();
        for(std::size_t i = 0; i < n; ++i)
            if(auto const* const r = detail::g_table[i].load(std::memory_order_acquire))
                total += r->head.load(std::memory_order_relaxed);
        return total;
    }

    auto tableFullDrops() noexcept -> std::uint64_t
    {
        return detail::g_tableFullDrops.load(std::memory_order_relaxed);
    }
} // namespace alpaka::trace
