/// \file Umbrella header of the alpaka reproduction library.
///
/// Include this single header to get the full public API used throughout
/// the paper's listings:
///
///   using Acc = alpaka::acc::AccCpuSerial<alpaka::Dim1, std::size_t>;
///   auto dev  = alpaka::dev::DevMan<Acc>::getDevByIdx(0);
///   alpaka::stream::StreamCpuAsync stream(dev);
///   auto workDiv = alpaka::workdiv::WorkDivMembers<alpaka::Dim1, std::size_t>(256u, 16u, 1u);
///   auto exec = alpaka::exec::create<Acc>(workDiv, kernel, args...);
///   alpaka::stream::enqueue(stream, exec);
///   alpaka::wait::wait(stream);
#pragma once

#include "alpaka/acc/acc_cpu.hpp"
#include "alpaka/acc/acc_cpu_extra.hpp"
#include "alpaka/acc/acc_cudasim.hpp"
#include "alpaka/acc/props.hpp"
#include "alpaka/atomic.hpp"
#include "alpaka/block.hpp"
#include "alpaka/core/common.hpp"
#include "alpaka/core/error.hpp"
#include "alpaka/core/map_idx.hpp"
#include "alpaka/dev.hpp"
#include "alpaka/dim.hpp"
#include "alpaka/element.hpp"
#include "alpaka/event.hpp"
#include "alpaka/exec.hpp"
#include "alpaka/idx.hpp"
#include "alpaka/kernel.hpp"
#include "alpaka/math.hpp"
#include "alpaka/mem.hpp"
#include "alpaka/meta/nd_loop.hpp"
#include "alpaka/origin.hpp"
#include "alpaka/rand.hpp"
#include "alpaka/stream.hpp"
#include "alpaka/vec.hpp"
#include "alpaka/wait.hpp"
#include "alpaka/workdiv.hpp"
#include "alpaka/workdiv_policy.hpp"
