/// \file Counter-based random number generation for kernels.
///
/// Monte-Carlo workloads (the HASEonGPU application of the paper's Fig. 10)
/// need per-thread random streams that are reproducible and independent
/// regardless of the executing back-end. A counter-based generator is the
/// canonical choice: Philox4x32-10 (Salmon et al., SC'11), the same family
/// cuRAND and the real alpaka use. Each (seed, subsequence) pair is an
/// independent stream; the generator state is four counter words plus two
/// key words and needs no warm-up.
#pragma once

#include "alpaka/core/common.hpp"

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>

namespace alpaka::rand
{
    //! Philox4x32-10 engine. Satisfies the basic requirements of a
    //! UniformRandomBitGenerator over std::uint32_t.
    class Philox4x32x10
    {
    public:
        using result_type = std::uint32_t;

        //! \param seed key of the stream family
        //! \param subsequence independent stream selector (e.g. the global
        //!        thread index); streams with different subsequences never
        //!        overlap
        //! \param offset starting position within the stream
        ALPAKA_FN_ACC explicit Philox4x32x10(
            std::uint64_t seed,
            std::uint64_t subsequence = 0,
            std::uint64_t offset = 0) noexcept
            : key_{static_cast<std::uint32_t>(seed), static_cast<std::uint32_t>(seed >> 32)}
            , counter_{
                  static_cast<std::uint32_t>(offset),
                  static_cast<std::uint32_t>(offset >> 32),
                  static_cast<std::uint32_t>(subsequence),
                  static_cast<std::uint32_t>(subsequence >> 32)}
        {
        }

        [[nodiscard]] static constexpr auto min() noexcept -> result_type
        {
            return 0;
        }
        [[nodiscard]] static constexpr auto max() noexcept -> result_type
        {
            return std::numeric_limits<result_type>::max();
        }

        //! Next 32 random bits.
        ALPAKA_FN_ACC auto operator()() noexcept -> result_type
        {
            if(cacheIdx_ == 4)
            {
                cache_ = bijection(counter_, key_);
                advanceCounter();
                cacheIdx_ = 0;
            }
            return cache_[cacheIdx_++];
        }

        //! The raw 4x32-bit block function (exposed for known-answer tests).
        [[nodiscard]] ALPAKA_FN_ACC static auto bijection(
            std::array<std::uint32_t, 4> counter,
            std::array<std::uint32_t, 2> key) noexcept -> std::array<std::uint32_t, 4>
        {
            for(int round = 0; round < 10; ++round)
            {
                counter = singleRound(counter, key);
                key[0] += 0x9E3779B9u; // golden ratio
                key[1] += 0xBB67AE85u; // sqrt(3)-1
            }
            return counter;
        }

    private:
        ALPAKA_FN_ACC static auto mulHiLo(std::uint32_t a, std::uint32_t b, std::uint32_t& hi) noexcept
            -> std::uint32_t
        {
            auto const product = static_cast<std::uint64_t>(a) * b;
            hi = static_cast<std::uint32_t>(product >> 32);
            return static_cast<std::uint32_t>(product);
        }

        [[nodiscard]] ALPAKA_FN_ACC static auto singleRound(
            std::array<std::uint32_t, 4> const& ctr,
            std::array<std::uint32_t, 2> const& key) noexcept -> std::array<std::uint32_t, 4>
        {
            std::uint32_t hi0 = 0;
            std::uint32_t hi1 = 0;
            auto const lo0 = mulHiLo(0xD2511F53u, ctr[0], hi0);
            auto const lo1 = mulHiLo(0xCD9E8D57u, ctr[2], hi1);
            return {hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0};
        }

        ALPAKA_FN_ACC void advanceCounter() noexcept
        {
            if(++counter_[0] == 0)
                ++counter_[1]; // 2^64 blocks per subsequence
        }

        std::array<std::uint32_t, 2> key_;
        std::array<std::uint32_t, 4> counter_;
        std::array<std::uint32_t, 4> cache_{};
        unsigned cacheIdx_ = 4;
    };

    namespace generator
    {
        //! Creates the default generator of an accelerator (API mirrors
        //! alpaka; every back-end of this repo uses Philox).
        template<typename TAcc>
        ALPAKA_FN_ACC auto createDefault(
            TAcc const& /*acc*/,
            std::uint64_t seed,
            std::uint64_t subsequence = 0,
            std::uint64_t offset = 0) -> Philox4x32x10
        {
            return Philox4x32x10(seed, subsequence, offset);
        }
    } // namespace generator

    namespace distribution
    {
        //! Uniform reals in (0, 1]: never returns 0 so that log(u) is safe.
        template<typename T>
        class UniformReal
        {
        public:
            template<typename TEngine>
            ALPAKA_FN_ACC auto operator()(TEngine& engine) -> T
            {
                if constexpr(sizeof(T) > 4)
                {
                    auto const hi = static_cast<std::uint64_t>(engine());
                    auto const lo = static_cast<std::uint64_t>(engine());
                    auto const bits53 = ((hi << 32) | lo) >> 11;
                    return static_cast<T>(bits53 + 1) * static_cast<T>(0x1.0p-53);
                }
                else
                {
                    auto const bits24 = engine() >> 8;
                    return static_cast<T>(bits24 + 1) * static_cast<T>(0x1.0p-24);
                }
            }
        };

        //! Uniform integers over the full 32/64-bit range.
        template<typename T>
        class UniformUint
        {
        public:
            template<typename TEngine>
            ALPAKA_FN_ACC auto operator()(TEngine& engine) -> T
            {
                if constexpr(sizeof(T) > 4)
                    return (static_cast<T>(engine()) << 32) | static_cast<T>(engine());
                else
                    return static_cast<T>(engine());
            }
        };

        //! Standard normal distribution via Box-Muller (caches the second
        //! variate).
        template<typename T>
        class NormalReal
        {
        public:
            template<typename TEngine>
            ALPAKA_FN_ACC auto operator()(TEngine& engine) -> T
            {
                if(hasSpare_)
                {
                    hasSpare_ = false;
                    return spare_;
                }
                UniformReal<T> uniform;
                auto const u1 = uniform(engine); // in (0,1], log safe
                auto const u2 = uniform(engine);
                auto const radius = std::sqrt(T(-2) * std::log(u1));
                auto const angle = T(2) * std::numbers::pi_v<T> * u2;
                spare_ = radius * std::sin(angle);
                hasSpare_ = true;
                return radius * std::cos(angle);
            }

        private:
            T spare_{};
            bool hasSpare_ = false;
        };
    } // namespace distribution
} // namespace alpaka::rand
