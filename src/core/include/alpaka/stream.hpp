/// \file Streams: in-order work queues of a device (paper Sec. 3.4.5).
#pragma once

#include "alpaka/core/common.hpp"
#include "alpaka/core/error.hpp"
#include "alpaka/core/task_queue.hpp"
#include "alpaka/dev.hpp"

#include "gpusim/capture.hpp"
#include "gpusim/stream.hpp"

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <type_traits>
#include <utility>
#include <vector>

namespace alpaka::detail
{
    //! Anything the device-wide wait can block on.
    struct IWaitable
    {
        virtual ~IWaitable() = default;
        virtual void waitIdle() = 0;
    };

    //! Process-wide registry of live streams per device, enabling
    //! wait::wait(dev) ("block until the device finished all work").
    class StreamRegistry
    {
    public:
        [[nodiscard]] static auto instance() -> StreamRegistry&
        {
            static StreamRegistry registry;
            return registry;
        }

        void add(void const* devKey, std::weak_ptr<IWaitable> stream)
        {
            std::scoped_lock lock(mutex_);
            auto& list = streams_[devKey];
            // Compact expired entries opportunistically.
            std::erase_if(list, [](auto const& w) { return w.expired(); });
            list.push_back(std::move(stream));
        }

        void waitAll(void const* devKey)
        {
            std::vector<std::shared_ptr<IWaitable>> live;
            {
                std::scoped_lock lock(mutex_);
                auto const it = streams_.find(devKey);
                if(it == streams_.end())
                    return;
                // Compact here too: a device whose streams all died and
                // that never registers a new one would otherwise keep its
                // expired entries forever (add only compacts the list it
                // inserts into).
                std::erase_if(it->second, [](auto const& w) { return w.expired(); });
                for(auto const& weak : it->second)
                    if(auto locked = weak.lock())
                        live.push_back(std::move(locked));
            }
            for(auto const& stream : live)
                stream->waitIdle();
        }

        //! Registered entries (live or not yet compacted) for \p devKey.
        //! Test observability: churning short-lived streams must not grow
        //! the registry unboundedly.
        [[nodiscard]] auto entryCount(void const* devKey) const -> std::size_t
        {
            std::scoped_lock lock(mutex_);
            auto const it = streams_.find(devKey);
            return it == streams_.end() ? 0 : it->second.size();
        }

    private:
        mutable std::mutex mutex_;
        std::map<void const*, std::vector<std::weak_ptr<IWaitable>>> streams_;
    };
} // namespace alpaka::detail

namespace alpaka::stream
{
    namespace trait
    {
        //! Customization point: how to enqueue a task of type \p TTask into
        //! a stream of type \p TStream. Kernel executors, memory operations
        //! and events all funnel through this.
        template<typename TStream, typename TTask, typename = void>
        struct Enqueue;
    } // namespace trait

    //! Enqueues \p task into \p stream (paper Listing 5:
    //! `stream::enqueue(stream, exec)`).
    template<typename TStream, typename TTask>
    void enqueue(TStream& stream, TTask&& task)
    {
        trait::Enqueue<TStream, std::decay_t<TTask>>::enqueue(stream, std::forward<TTask>(task));
    }

    //! Synchronous CPU stream: every operation executes in the enqueuing
    //! host thread; enqueue returns when the operation completed.
    class StreamCpuSync
    {
    public:
        using Dev = dev::DevCpu;

        explicit StreamCpuSync(dev::DevCpu const& device) : dev_(device)
        {
        }

        [[nodiscard]] auto getDev() const noexcept -> dev::DevCpu
        {
            return dev_;
        }

        //! Runs a type-erased task right away (used by Enqueue traits) —
        //! or, while capturing, records it instead of running it.
        void run(std::function<void()> task) const
        {
            if(auto const& sink = captureSink())
            {
                sink->task(std::move(task), false);
                return;
            }
            task();
        }

        void wait() const
        {
            // Synchronous: always drained (but synchronizing a capture is
            // a misuse — nothing is executing).
            if(captureSink() != nullptr)
                throw UsageError("StreamCpuSync: wait() on a capturing stream");
        }

        //! \name stream capture (see gpusim/capture.hpp for the contract;
        //! a sink whose session ended is dropped lazily, so stream and
        //! capture session may die in any order)
        //! @{
        void beginCapture(std::shared_ptr<gpusim::CaptureSink> sink)
        {
            if(captureSink() != nullptr)
                throw UsageError("StreamCpuSync: beginCapture while already capturing");
            if(sink == nullptr)
                throw UsageError("StreamCpuSync: beginCapture requires a sink");
            capture_ = std::move(sink);
        }
        void endCapture() noexcept
        {
            capture_.reset();
        }
        [[nodiscard]] auto captureSink() const noexcept -> std::shared_ptr<gpusim::CaptureSink> const&
        {
            if(capture_ != nullptr && !capture_->active())
                capture_.reset();
            return capture_;
        }
        //! @}

    private:
        dev::DevCpu dev_;
        //! Mutable: captureSink() drops a stale sink from const accessors;
        //! capture, like enqueue, is externally synchronized per stream.
        mutable std::shared_ptr<gpusim::CaptureSink> capture_;
    };

    //! Asynchronous CPU stream: a worker thread executes operations in
    //! enqueue order while the host continues (paper Sec. 3.4.5). Kernel
    //! tasks of pool-backed accelerators submit from this worker into the
    //! shared ThreadPool; its multi-slot job ring (DESIGN.md §3.5) lets the
    //! jobs of concurrent streams overlap instead of serializing at the
    //! pool.
    class StreamCpuAsync
    {
    public:
        using Dev = dev::DevCpu;

        explicit StreamCpuAsync(dev::DevCpu const& device) : impl_(std::make_shared<Impl>(device))
        {
            detail::StreamRegistry::instance().add(device.registryKey(), impl_);
        }

        [[nodiscard]] auto getDev() const noexcept -> dev::DevCpu
        {
            return impl_->dev;
        }

        //! Enqueues a task — or, while capturing, records it instead.
        void push(std::function<void()> task, bool always = false) const
        {
            if(auto const& sink = captureSink())
            {
                sink->task(std::move(task), always);
                return;
            }
            impl_->queue.enqueue(std::move(task), always);
        }

        //! Blocks until all enqueued work finished; rethrows task errors.
        void wait() const
        {
            if(captureSink() != nullptr)
                throw UsageError("StreamCpuAsync: wait() on a capturing stream");
            impl_->queue.wait();
        }

        [[nodiscard]] auto idle() const -> bool
        {
            return impl_->queue.idle();
        }

        //! Opaque identity of the stream's shared queue (copies share it).
        //! The memory pool keys its no-fence same-stream block reuse on it
        //! (DESIGN.md §5.2).
        [[nodiscard]] auto queueKey() const noexcept -> void const*
        {
            return impl_.get();
        }

        //! Shared drained-state of the live queue (gpusim::DrainState).
        //! The memory pool's conservative destructor fence (DESIGN.md
        //! §5.3) polls it lock-free: holding the state holds neither the
        //! queue nor its worker thread.
        [[nodiscard]] auto drainState() const -> std::shared_ptr<gpusim::DrainState const>
        {
            return impl_->queue.drainState();
        }

        //! \name stream capture (see gpusim/capture.hpp for the contract;
        //! a sink whose session ended is dropped lazily, so stream and
        //! capture session may die in any order)
        //! @{
        void beginCapture(std::shared_ptr<gpusim::CaptureSink> sink) const
        {
            if(captureSink() != nullptr)
                throw UsageError("StreamCpuAsync: beginCapture while already capturing");
            if(sink == nullptr)
                throw UsageError("StreamCpuAsync: beginCapture requires a sink");
            impl_->capture = std::move(sink);
        }
        void endCapture() const noexcept
        {
            impl_->capture.reset();
        }
        [[nodiscard]] auto captureSink() const noexcept -> std::shared_ptr<gpusim::CaptureSink> const&
        {
            if(impl_->capture != nullptr && !impl_->capture->active())
                impl_->capture.reset();
            return impl_->capture;
        }
        //! @}

    private:
        struct Impl : detail::IWaitable
        {
            explicit Impl(dev::DevCpu const& device) : dev(device)
            {
            }
            void waitIdle() override
            {
                // wait::wait(dev) reaches the stream through here; a
                // capturing stream rejects synchronization on this path
                // exactly like on stream.wait() (and like the CudaSim
                // streams do through gpusim::Stream::wait).
                if(capture != nullptr && capture->active())
                    throw UsageError("StreamCpuAsync: wait() on a capturing stream");
                queue.wait();
            }

            dev::DevCpu dev;
            core::TaskQueue queue;
            //! Capture, like enqueue order, is externally synchronized per
            //! stream; copies of the stream share the capture state.
            std::shared_ptr<gpusim::CaptureSink> capture;
        };

        std::shared_ptr<Impl> impl_;
    };

    namespace detail
    {
        //! Shared implementation of the two CudaSim stream flavours.
        template<bool TAsync>
        class StreamCudaSimBase
        {
        public:
            using Dev = dev::DevCudaSim;

            explicit StreamCudaSimBase(dev::DevCudaSim const& device)
                : impl_(std::make_shared<Impl>(device))
            {
                alpaka::detail::StreamRegistry::instance().add(device.registryKey(), impl_);
            }

            [[nodiscard]] auto getDev() const noexcept -> dev::DevCudaSim
            {
                return impl_->dev;
            }

            [[nodiscard]] auto simStream() const noexcept -> gpusim::Stream&
            {
                return impl_->stream;
            }

            //! Blocks until all enqueued work finished; rethrows errors.
            void wait() const
            {
                impl_->stream.wait();
            }

            [[nodiscard]] auto idle() const -> bool
            {
                return impl_->stream.idle();
            }

            //! Shared drained-state for the memory pool's conservative
            //! fence (see StreamCpuAsync::drainState).
            [[nodiscard]] auto drainState() const -> std::shared_ptr<gpusim::DrainState const>
            {
                return impl_->stream.drainState();
            }

            //! \name stream capture — forwarded to the simulator stream,
            //! which intercepts launches, copies, fills and events itself.
            //! @{
            void beginCapture(std::shared_ptr<gpusim::CaptureSink> sink) const
            {
                impl_->stream.beginCapture(std::move(sink));
            }
            void endCapture() const noexcept
            {
                impl_->stream.endCapture();
            }
            [[nodiscard]] auto capturing() const noexcept -> bool
            {
                return impl_->stream.capturing();
            }
            //! @}

        private:
            struct Impl : alpaka::detail::IWaitable
            {
                explicit Impl(dev::DevCudaSim const& device)
                    : dev(device)
                    , stream(device.simDevice(), TAsync)
                {
                }
                void waitIdle() override
                {
                    stream.wait();
                }

                dev::DevCudaSim dev;
                gpusim::Stream stream;
            };

            std::shared_ptr<Impl> impl_;
        };
    } // namespace detail

    //! Synchronous stream of a simulated GPU.
    using StreamCudaSimSync = detail::StreamCudaSimBase<false>;
    //! Asynchronous stream of a simulated GPU.
    using StreamCudaSimAsync = detail::StreamCudaSimBase<true>;
} // namespace alpaka::stream
