/// \file Work division validation and derivation (paper Table 2).
#pragma once

#include "alpaka/acc/acc_cpu.hpp"
#include "alpaka/acc/acc_cudasim.hpp"
#include "alpaka/acc/props.hpp"
#include "alpaka/core/error.hpp"
#include "alpaka/vec.hpp"
#include "alpaka/workdiv.hpp"

#include <algorithm>
#include <sstream>
#include <string>

namespace alpaka::workdiv
{
    namespace trait
    {
        //! Whether an accelerator maps the thread level onto real
        //! parallelism (paper Table 2: back-ends with B threads per block)
        //! or collapses it (one thread per block; Sequential and OpenMP
        //! block rows).
        template<typename TAcc>
        struct UsesBlockThreads
        {
            static constexpr bool value = true;
        };

        //! Paper Table 2, "Sequential" row: grid N/V, block 1, element V.
        template<typename TDim, typename TSize>
        struct UsesBlockThreads<acc::AccCpuSerial<TDim, TSize>>
        {
            static constexpr bool value = false;
        };
        //! Paper Table 2, "OpenMP block" row: grid N/V, block 1, element V.
        template<typename TDim, typename TSize>
        struct UsesBlockThreads<acc::AccCpuOmp2Blocks<TDim, TSize>>
        {
            static constexpr bool value = false;
        };
    } // namespace trait

    //! Checks a work division against the accelerator limits on a device.
    template<typename TAcc, typename TDev, typename TDim, typename TSize>
    [[nodiscard]] auto isValidWorkDiv(TDev const& dev, WorkDivMembers<TDim, TSize> const& workDiv) -> bool
    {
        auto const props = acc::getAccDevProps<TAcc>(dev);
        auto const positive = [](TSize v) { return v > static_cast<TSize>(0); };
        if(!workDiv.gridBlockExtent().allOf(positive) || !workDiv.blockThreadExtent().allOf(positive)
           || !workDiv.threadElemExtent().allOf(positive))
            return false;
        if(workDiv.blockThreadExtent().prod() > props.blockThreadCountMax)
            return false;
        for(std::size_t d = 0; d < TDim::value; ++d)
        {
            if(workDiv.blockThreadExtent()[d] > props.blockThreadExtentMax[d])
                return false;
            if(workDiv.gridBlockExtent()[d] > props.gridBlockExtentMax[d])
                return false;
        }
        return true;
    }

    //! Like isValidWorkDiv but throws InvalidWorkDivError with a diagnostic.
    template<typename TAcc, typename TDev, typename TDim, typename TSize>
    void requireValidWorkDiv(TDev const& dev, WorkDivMembers<TDim, TSize> const& workDiv)
    {
        if(!isValidWorkDiv<TAcc>(dev, workDiv))
        {
            auto const props = acc::getAccDevProps<TAcc>(dev);
            std::ostringstream os;
            os << "work division " << workDiv << " is invalid for " << acc::getAccName<TAcc>() << " on device (max "
               << props.blockThreadCountMax << " threads/block, per-dim max " << props.blockThreadExtentMax << ")";
            throw InvalidWorkDivError(os.str());
        }
    }

    namespace detail
    {
        template<typename TSize>
        [[nodiscard]] constexpr auto floorPow2(TSize v) noexcept -> TSize
        {
            TSize p = 1;
            while(p * 2 <= v)
                p *= 2;
            return p;
        }
    } // namespace detail

    //! Derives a valid work division covering \p gridElemExtent elements
    //! with \p threadElemExtent elements per thread: chooses a block-thread
    //! extent within the accelerator limits (powers of two, innermost
    //! dimension first) and computes the grid extent by ceiling division.
    //! The grid may overshoot the element domain; kernels guard with an
    //! index check, exactly as in CUDA.
    template<typename TAcc, typename TDev, typename TDim, typename TSize>
    [[nodiscard]] auto getValidWorkDiv(
        TDev const& dev,
        Vec<TDim, TSize> const& gridElemExtent,
        Vec<TDim, TSize> const& threadElemExtent = Vec<TDim, TSize>::ones()) -> WorkDivMembers<TDim, TSize>
    {
        auto const props = acc::getAccDevProps<TAcc>(dev);
        auto blockThreads = Vec<TDim, TSize>::ones();
        // Heuristic upper bound so CPU back-ends do not create absurdly
        // large teams: cap the block at 256 threads or the device limit.
        TSize remaining = std::min<TSize>(props.blockThreadCountMax, static_cast<TSize>(256));
        auto const threadExtent = ceilDiv(gridElemExtent, threadElemExtent);
        for(std::size_t d = TDim::value; d-- > 0;)
        {
            auto const want = std::min({threadExtent[d], props.blockThreadExtentMax[d], remaining});
            blockThreads[d] = std::max<TSize>(detail::floorPow2(want), 1);
            remaining = std::max<TSize>(remaining / blockThreads[d], 1);
        }
        auto const gridBlocks = ceilDiv(gridElemExtent, blockThreads * threadElemExtent);
        return WorkDivMembers<TDim, TSize>(gridBlocks, blockThreads, threadElemExtent);
    }

    //! The paper's Table 2 mapping: given a 1-d problem of \p n elements, a
    //! requested block size \p b and \p v elements per thread, produces the
    //! work division the predefined accelerator would use —
    //! {N/(B*V), B, V} for thread-parallel back-ends and {N/V, 1, V} for
    //! single-thread-per-block back-ends (ceiling divisions).
    template<typename TAcc, typename TSize>
    [[nodiscard]] auto table2WorkDiv(TSize n, TSize b, TSize v) -> WorkDivMembers<dim::DimInt<1>, TSize>
    {
        auto const ceil = [](TSize num, TSize den) { return static_cast<TSize>((num + den - 1) / den); };
        if constexpr(trait::UsesBlockThreads<TAcc>::value)
            return {ceil(n, static_cast<TSize>(b * v)), b, v};
        else
            return {ceil(n, v), static_cast<TSize>(1), v};
    }
} // namespace alpaka::workdiv
