/// \file Element-level iteration helpers.
///
/// The element level (paper Sec. 3.2.4) is exposed to kernels as raw
/// extents; writing the chunked/grid-strided loops by hand is error prone.
/// uniformElements(acc, n) produces the index range the calling thread is
/// responsible for, covering [0, n) exactly once across the grid:
///
///   for(auto const i : alpaka::uniformElements(acc, n))
///       y[i] = a * x[i] + y[i];
///
/// Layout: each thread owns contiguous chunks of `Thread x Elems` indices,
/// advancing by the grid's total element capacity per round (a grid-strided
/// chunk loop). When the grid covers the domain in one round — the layout
/// of Table 2 — this degenerates to the plain chunk [tid*V, tid*V + V).
#pragma once

#include "alpaka/core/common.hpp"
#include "alpaka/idx.hpp"
#include "alpaka/workdiv.hpp"

#include <cstddef>

namespace alpaka
{
    template<typename TSize>
    class ElementRange
    {
    public:
        class Iterator
        {
        public:
            constexpr Iterator(TSize index, TSize chunkBegin, TSize chunkSize, TSize stride, TSize n) noexcept
                : index_(index)
                , chunkBegin_(chunkBegin)
                , chunkSize_(chunkSize)
                , stride_(stride)
                , n_(n)
            {
                clampToDomain();
            }

            [[nodiscard]] constexpr auto operator*() const noexcept -> TSize
            {
                return index_;
            }

            constexpr auto operator++() noexcept -> Iterator&
            {
                ++index_;
                if(index_ == chunkBegin_ + chunkSize_)
                {
                    // Chunk exhausted: jump to this thread's next chunk.
                    chunkBegin_ += stride_;
                    index_ = chunkBegin_;
                }
                clampToDomain();
                return *this;
            }

            [[nodiscard]] constexpr auto operator==(Iterator const& other) const noexcept -> bool
            {
                return index_ == other.index_;
            }

        private:
            constexpr void clampToDomain() noexcept
            {
                if(index_ >= n_)
                    index_ = n_; // normalize every past-the-end state
            }

            TSize index_;
            TSize chunkBegin_;
            TSize chunkSize_;
            TSize stride_;
            TSize n_;
        };

        constexpr ElementRange(TSize first, TSize chunkSize, TSize stride, TSize n) noexcept
            : first_(first)
            , chunkSize_(chunkSize)
            , stride_(stride)
            , n_(n)
        {
        }

        [[nodiscard]] constexpr auto begin() const noexcept -> Iterator
        {
            return Iterator(first_, first_, chunkSize_, stride_, n_);
        }
        [[nodiscard]] constexpr auto end() const noexcept -> Iterator
        {
            return Iterator(n_, first_, chunkSize_, stride_, n_);
        }

    private:
        TSize first_;
        TSize chunkSize_;
        TSize stride_;
        TSize n_;
    };

    //! The 1-d element indices of [0, n) owned by the calling thread.
    //! Every index is produced by exactly one thread of the grid,
    //! regardless of whether the grid is larger or smaller than the domain.
    template<typename TAcc, typename TSize>
    ALPAKA_FN_ACC constexpr auto uniformElements(TAcc const& acc, TSize n) -> ElementRange<TSize>
    {
        auto const gridThreadIdx
            = static_cast<TSize>(core::mapIdx<1>(
                  idx::getIdx<Grid, Threads>(acc),
                  workdiv::getWorkDiv<Grid, Threads>(acc))[0]);
        auto const gridThreadCount = static_cast<TSize>(workdiv::getWorkDiv<Grid, Threads>(acc).prod());
        auto const elems = static_cast<TSize>(workdiv::getWorkDiv<Thread, Elems>(acc).prod());
        return ElementRange<TSize>(gridThreadIdx * elems, elems, gridThreadCount * elems, n);
    }
} // namespace alpaka
