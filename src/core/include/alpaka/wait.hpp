/// \file Synchronization of host, devices, streams and events
/// (paper Sec. 3.2.1: "Grids can be synchronized to each other via explicit
/// synchronization evoked in the code").
#pragma once

#include "alpaka/dev.hpp"
#include "alpaka/event.hpp"
#include "alpaka/stream.hpp"

namespace alpaka::wait
{
    namespace trait
    {
        //! Customization point: block the calling host thread until \p T
        //! finished.
        template<typename T, typename = void>
        struct CurrentThreadWaitFor;

        //! Streams and events expose wait() directly.
        template<typename T>
        struct CurrentThreadWaitFor<T, std::void_t<decltype(std::declval<T const&>().wait())>>
        {
            static void wait(T const& waitable)
            {
                waitable.wait();
            }
        };

        //! Waiting for a device drains all of its registered streams.
        template<>
        struct CurrentThreadWaitFor<dev::DevCpu>
        {
            static void wait(dev::DevCpu const& device)
            {
                detail::StreamRegistry::instance().waitAll(device.registryKey());
            }
        };
        template<>
        struct CurrentThreadWaitFor<dev::DevCudaSim>
        {
            static void wait(dev::DevCudaSim const& device)
            {
                detail::StreamRegistry::instance().waitAll(device.registryKey());
            }
        };

        //! Customization point: make \p TWaiter (a stream) wait for
        //! \p TWaited (an event) before running subsequent work.
        template<typename TWaiter, typename TWaited, typename = void>
        struct WaiterWaitFor;

        template<>
        struct WaiterWaitFor<stream::StreamCpuSync, event::EventCpu>
        {
            static void wait(stream::StreamCpuSync& stream, event::EventCpu const& event)
            {
                // Captured: becomes a dependency edge on the event's last
                // record in the capture session.
                if(auto const& sink = stream.captureSink())
                {
                    sink->eventWait(event.key());
                    return;
                }
                // A sync stream's timeline is the host timeline.
                event.wait();
            }
        };

        template<>
        struct WaiterWaitFor<stream::StreamCpuAsync, event::EventCpu>
        {
            static void wait(stream::StreamCpuAsync& stream, event::EventCpu const& event)
            {
                if(auto const& sink = stream.captureSink())
                {
                    sink->eventWait(event.key());
                    return;
                }
                stream.push([event] { event.wait(); });
            }
        };

        template<bool TAsync>
        struct WaiterWaitFor<stream::detail::StreamCudaSimBase<TAsync>, event::EventCudaSim>
        {
            static void wait(stream::detail::StreamCudaSimBase<TAsync>& stream, event::EventCudaSim const& event)
            {
                stream.simStream().waitFor(event.simEvent());
            }
        };
    } // namespace trait

    //! Blocks the calling host thread until \p waitable (stream, event or
    //! device) completed all outstanding work.
    template<typename T>
    void wait(T const& waitable)
    {
        trait::CurrentThreadWaitFor<T>::wait(waitable);
    }

    //! Makes \p waiter (a stream) wait for \p waited (an event) before
    //! executing any later enqueued operation — cross-stream dependencies
    //! without blocking the host.
    template<typename TWaiter, typename TWaited>
    void wait(TWaiter& waiter, TWaited const& waited)
    {
        trait::WaiterWaitFor<TWaiter, TWaited>::wait(waiter, waited);
    }
} // namespace alpaka::wait
