/// \file Function attribute macros and version information.
///
/// The paper (Sec. 3.4.2) defines three annotation macros marking functions
/// as callable from host code, accelerator code, or both. On native CUDA
/// these would expand to __host__/__device__; all back-ends of this
/// reproduction execute in the host process, so the macros reduce to
/// `inline` — which is exactly the "zero overhead" path the paper
/// demonstrates for the CPU back-ends.
#pragma once

#define ALPAKA_FN_ACC inline
#define ALPAKA_FN_HOST inline
#define ALPAKA_FN_HOST_ACC inline

#define ALPAKA_REPRO_VERSION_MAJOR 0
#define ALPAKA_REPRO_VERSION_MINOR 1
#define ALPAKA_REPRO_VERSION_PATCH 0

namespace alpaka::core
{
    //! Library version as "major.minor.patch".
    [[nodiscard]] constexpr auto versionString() noexcept -> char const*
    {
        return "0.1.0";
    }
} // namespace alpaka::core
