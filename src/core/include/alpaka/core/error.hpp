/// \file Host-side error types of the alpaka library.
#pragma once

#include <stdexcept>
#include <string>

namespace alpaka
{
    //! Base class of all errors raised by the library.
    class Error : public std::runtime_error
    {
    public:
        using std::runtime_error::runtime_error;
    };

    //! A work division violates the constraints of the targeted accelerator
    //! or device (e.g. more than one thread per block on a blocking-only
    //! back-end, device limits exceeded, zero extents).
    class InvalidWorkDivError : public Error
    {
    public:
        using Error::Error;
    };

    //! Block shared memory request exceeds the accelerator's capacity.
    class SharedMemOverflowError : public Error
    {
    public:
        using Error::Error;
    };

    //! An unrecoverable condition inside a kernel execution (the kernel
    //! threw, threads diverged at a barrier, back-end resources failed).
    //! The original error is preserved as the nested exception when one
    //! exists.
    class KernelExecutionError : public Error
    {
    public:
        using Error::Error;
    };

    //! Misuse of the host-side API (bad device index, mismatched devices in
    //! a copy, ...).
    class UsageError : public Error
    {
    public:
        using Error::Error;
    };
} // namespace alpaka
