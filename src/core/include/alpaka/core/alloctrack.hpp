/// \file Test-only global heap-allocation counting (DESIGN.md §8.9).
///
/// The zero-allocation steady-state audit needs a process-wide observer
/// mirroring gpusim::MemoryManager::allocationCount() for the REAL heap:
/// when the build option ALPAKA_REPRO_ALLOCTRACK is ON, the global
/// operator new/delete families are replaced (in alloctrack.cpp) with
/// counting forwarders over std::malloc/std::free, and allocCount()
/// reports how many allocations the process has performed. Tests bracket
/// a steady-state serving window with two allocCount() reads and assert
/// the delta is zero (tests/serve/test_service_alloc.cpp).
///
/// With the option OFF (the default) nothing is replaced, the accessors
/// report zero, and allocTrackEnabled() lets tests skip themselves.
#pragma once

#include <cstdint>

namespace alpaka::core
{
    //! True when this binary was built with ALPAKA_REPRO_ALLOCTRACK and
    //! the counting operator new/delete replacements are live.
    [[nodiscard]] auto allocTrackEnabled() noexcept -> bool;

    //! Process-wide count of heap allocations (operator new family).
    [[nodiscard]] auto allocCount() noexcept -> std::uint64_t;

    //! Process-wide count of heap deallocations (operator delete family).
    [[nodiscard]] auto deallocCount() noexcept -> std::uint64_t;
} // namespace alpaka::core
