/// \file Always-on tracing primitives: per-thread span rings and the
/// lock-free thread table every layer records into (DESIGN.md §10).
///
/// The design goal is a flight recorder cheap enough to leave enabled
/// in production serving, priced with the same discipline as the fault
/// points (§7): recording sites compile to `((void) 0)` unless the
/// build defines ALPAKA_REPRO_TRACE (invariant 23 — the OFF hot path
/// is bit-for-bit free of trace code), and when compiled in, the
/// steady-state recording path allocates nothing and never blocks
/// (invariant 24) — a full ring drops-and-counts, it neither grows nor
/// waits for the collector.
///
/// Shape: each recording thread owns one fixed-size SPSC ring of
/// 32-byte events. The producer writes the cell with plain stores and
/// publishes with one release store of the head index (litmus:
/// obs/*_ring_publish); the collector acquires the head, copies
/// [tail, head), and grants cell reuse with a release store of tail
/// that the producer re-acquires only on the would-drop slow path
/// (litmus: obs/*_ring_reclaim — this edge is also what makes the
/// drop counter exact: a producer only counts a drop after an acquire
/// reload of tail proved the ring really is full). Rings register in a
/// fixed lock-free table (release-store of the slot pointer, claimed
/// by one fetch_add) and are deliberately never freed: a ring may be
/// drained after its thread exited, and the table is bounded by
/// maxThreads either way.
///
/// Timestamps are raw TSC ticks on x86 (one RDTSC ≈ a cache hit, the
/// difference between ≤2 % and ~10 % overhead at serve batch sizes)
/// and steady_clock nanoseconds elsewhere; drain() converts everything
/// to steady_clock nanoseconds through a two-point linear calibration,
/// so consumers only ever see ns.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace alpaka::trace
{
    enum class EventKind : std::uint8_t
    {
        SpanBegin = 0, //!< thread-scoped span open; arg free-form
        SpanEnd = 1, //!< closes the innermost same-site SpanBegin on this thread
        Instant = 2, //!< point event; arg free-form (usually a request id)
        Counter = 3, //!< sampled value; arg is the sample
        AsyncBegin = 4, //!< cross-thread span open; arg is the correlation id
        AsyncEnd = 5, //!< cross-thread span close; arg matches the begin
    };

    //! One ring cell. 32 bytes so a 64-byte line holds exactly two and
    //! the ring never straddles cells across lines.
    struct Event
    {
        std::uint64_t tsNs; //!< raw ticks in the ring; ns after drain()
        std::uint64_t arg;
        std::uint32_t site; //!< interned site id (siteName())
        std::uint32_t tid; //!< ring's registration index (threadName())
        EventKind kind;
        std::uint8_t reserved[7];
    };
    static_assert(sizeof(Event) == 32, "trace events are 32-byte cells");

    //! Events per thread ring (power of two). 8192 × 32 B = 256 KiB per
    //! recording thread, bounded by maxThreads.
    inline constexpr std::size_t ringCapacity = 8192;
    //! Thread-table slots. Threads beyond this record nothing (counted
    //! in tableFullDrops()), they never block or allocate.
    inline constexpr std::size_t maxThreads = 256;

    //! True when the build compiled the recording sites in.
    [[nodiscard]] constexpr auto compiledIn() noexcept -> bool
    {
#if defined(ALPAKA_REPRO_TRACE)
        return true;
#else
        return false;
#endif
    }

    namespace detail
    {
        struct ThreadRing
        {
            alignas(64) Event events[ringCapacity];
            //! Producer's publish index: next unwritten position. The
            //! release store is the only publication edge the collector
            //! synchronizes on.
            alignas(64) std::atomic<std::uint64_t> head{0};
            //! Producer-local mirror of tail — the fast path compares
            //! against this and touches the shared tail only when the
            //! ring LOOKS full.
            std::uint64_t tailCache = 0;
            std::uint32_t tid = 0;
            //! Collector cursor: first unread position. Its release
            //! store grants the producer cell reuse.
            alignas(64) std::atomic<std::uint64_t> tail{0};
            //! Producer-owned drop count; exact because only the single
            //! producer increments it, and only after the tail reload
            //! proved fullness (see record()).
            std::atomic<std::uint64_t> dropped{0};
            //! Optional thread name, published once via release flag.
            char name[48] = {};
            std::atomic<bool> named{false};
        };

        //! Global enable gate — one relaxed load on the hot path. True
        //! by default in traced builds ("always-on"); the bench flips it
        //! to price the recording path itself (paired measurement).
        inline std::atomic<bool> g_enabled{true};
        //! Records attempted by threads past the table bound.
        inline std::atomic<std::uint64_t> g_tableFullDrops{0};

        //! Registers the calling thread in the table (one allocation,
        //! ever, per thread — NOT on the steady-state path). Returns
        //! nullptr when the table is full.
        auto registerThisThread() noexcept -> ThreadRing*;

        [[nodiscard]] inline auto ring() noexcept -> ThreadRing*
        {
            thread_local ThreadRing* const r = registerThisThread();
            return r;
        }

        [[nodiscard]] inline auto nowTicks() noexcept -> std::uint64_t
        {
#if defined(__x86_64__) || defined(__i386__)
            return __builtin_ia32_rdtsc();
#else
            return std::uint64_t(std::chrono::steady_clock::now().time_since_epoch().count());
#endif
        }
    } // namespace detail

    //! Runtime gate for the recording path (compiled-in builds only;
    //! a no-op otherwise). Tracing starts enabled.
    void setEnabled(bool on) noexcept;
    [[nodiscard]] auto enabled() noexcept -> bool;

    //! Interns \p name, returning its stable site id. Locked, intended
    //! for once-per-site static initialization (the macros cache it).
    auto internSite(std::string_view name) -> std::uint32_t;
    [[nodiscard]] auto siteName(std::uint32_t id) noexcept -> std::string_view;
    [[nodiscard]] auto siteCount() noexcept -> std::size_t;

    //! Names the calling thread's ring for exporters ("serve.worker.0").
    void nameThread(std::string_view name) noexcept;
    [[nodiscard]] auto threadName(std::uint32_t tid) noexcept -> std::string_view;
    [[nodiscard]] auto threadCount() noexcept -> std::size_t;

    //! The recording hot path: one relaxed gate load, one tick read,
    //! four plain stores, one release store. Never blocks, never
    //! allocates; a full ring drops-and-counts (invariant 24).
    inline void record(std::uint32_t site, EventKind kind, std::uint64_t arg) noexcept
    {
        if(!detail::g_enabled.load(std::memory_order_relaxed))
            return;
        auto* const r = detail::ring();
        if(r == nullptr)
        {
            detail::g_tableFullDrops.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        auto const head = r->head.load(std::memory_order_relaxed);
        if(head - r->tailCache >= ringCapacity)
        {
            // Looks full: reload the collector's cursor (acquire pairs
            // with its release in drain() — litmus: obs/*_ring_reclaim)
            // and only drop if it STILL is. The acquire also orders the
            // upcoming cell overwrite after the collector's copies.
            r->tailCache = r->tail.load(std::memory_order_acquire);
            if(head - r->tailCache >= ringCapacity)
            {
                r->dropped.fetch_add(1, std::memory_order_relaxed);
                return;
            }
        }
        auto& e = r->events[head & (ringCapacity - 1)];
        e.tsNs = detail::nowTicks();
        e.arg = arg;
        e.site = site;
        e.tid = r->tid;
        e.kind = kind;
        // Publish: everything above is ordered before the index bump
        // (litmus: obs/*_ring_publish).
        r->head.store(head + 1, std::memory_order_release);
    }

    struct DrainStats
    {
        std::size_t events = 0; //!< appended by this drain
        std::size_t threads = 0; //!< rings visited
        std::uint64_t dropped = 0; //!< cumulative ring-full drops
        std::uint64_t tableFullDrops = 0; //!< cumulative table-full drops
    };

    //! Drains every registered ring's unread events into \p out
    //! (appended, timestamps converted to steady_clock ns). Serialized
    //! internally — any thread may call, one at a time proceeds. Each
    //! ring's slice is snapshot-consistent: exactly the events published
    //! before this drain's acquire of its head.
    auto drain(std::vector<Event>& out) -> DrainStats;

    //! Cumulative ring-full drops across all rings (without draining).
    [[nodiscard]] auto droppedTotal() noexcept -> std::uint64_t;
    //! Cumulative events ever published across all rings.
    [[nodiscard]] auto recordedTotal() noexcept -> std::uint64_t;
    [[nodiscard]] auto tableFullDrops() noexcept -> std::uint64_t;

    namespace detail
    {
        //! RAII pair for ALPAKA_TRACE_SCOPE.
        struct ScopedSpan
        {
            explicit ScopedSpan(std::uint32_t site, std::uint64_t arg) noexcept : site_(site)
            {
                record(site_, EventKind::SpanBegin, arg);
            }
            ScopedSpan(ScopedSpan const&) = delete;
            auto operator=(ScopedSpan const&) -> ScopedSpan& = delete;
            ~ScopedSpan()
            {
                record(site_, EventKind::SpanEnd, 0);
            }

        private:
            std::uint32_t site_;
        };
    } // namespace detail
} // namespace alpaka::trace

// Recording macros — the ALPAKA_FAULT_POINT pattern: in untraced
// builds every site is `((void) 0)` and the argument expressions are
// never evaluated (invariant 23). In traced builds each site interns
// its name once (function-local static) and records inline.
#if defined(ALPAKA_REPRO_TRACE)
#    define ALPAKA_TRACE_CONCAT_INNER_(a, b) a##b
#    define ALPAKA_TRACE_CONCAT_(a, b) ALPAKA_TRACE_CONCAT_INNER_(a, b)
#    define ALPAKA_TRACE_EVENT_(kindv, name, argv)                                                                    \
        do                                                                                                            \
        {                                                                                                             \
            static std::uint32_t const alpakaTraceSite_ = ::alpaka::trace::internSite(name);                          \
            ::alpaka::trace::record(alpakaTraceSite_, kindv, static_cast<std::uint64_t>(argv));                       \
        } while(false)
#    define ALPAKA_TRACE_INSTANT(name, argv) ALPAKA_TRACE_EVENT_(::alpaka::trace::EventKind::Instant, name, argv)
#    define ALPAKA_TRACE_COUNTER(name, valuev) ALPAKA_TRACE_EVENT_(::alpaka::trace::EventKind::Counter, name, valuev)
#    define ALPAKA_TRACE_SPAN_BEGIN(name, argv) ALPAKA_TRACE_EVENT_(::alpaka::trace::EventKind::SpanBegin, name, argv)
#    define ALPAKA_TRACE_SPAN_END(name) ALPAKA_TRACE_EVENT_(::alpaka::trace::EventKind::SpanEnd, name, 0)
#    define ALPAKA_TRACE_ASYNC_BEGIN(name, idv) ALPAKA_TRACE_EVENT_(::alpaka::trace::EventKind::AsyncBegin, name, idv)
#    define ALPAKA_TRACE_ASYNC_END(name, idv) ALPAKA_TRACE_EVENT_(::alpaka::trace::EventKind::AsyncEnd, name, idv)
//! Span over the enclosing block (RAII; name interned once).
#    define ALPAKA_TRACE_SCOPE(name, argv)                                                                            \
        static std::uint32_t const ALPAKA_TRACE_CONCAT_(alpakaTraceSite_, __LINE__)                                   \
            = ::alpaka::trace::internSite(name);                                                                      \
        ::alpaka::trace::detail::ScopedSpan const ALPAKA_TRACE_CONCAT_(alpakaTraceScope_, __LINE__)(                  \
            ALPAKA_TRACE_CONCAT_(alpakaTraceSite_, __LINE__),                                                         \
            static_cast<std::uint64_t>(argv))
#    define ALPAKA_TRACE_THREAD_NAME(name) ::alpaka::trace::nameThread(name)
#else
#    define ALPAKA_TRACE_INSTANT(name, argv) ((void) 0)
#    define ALPAKA_TRACE_COUNTER(name, valuev) ((void) 0)
#    define ALPAKA_TRACE_SPAN_BEGIN(name, argv) ((void) 0)
#    define ALPAKA_TRACE_SPAN_END(name) ((void) 0)
#    define ALPAKA_TRACE_ASYNC_BEGIN(name, idv) ((void) 0)
#    define ALPAKA_TRACE_ASYNC_END(name, idv) ((void) 0)
#    define ALPAKA_TRACE_SCOPE(name, argv) ((void) 0)
#    define ALPAKA_TRACE_THREAD_NAME(name) ((void) 0)
#endif
