/// \file Deterministic fault injection (DESIGN.md §7.2).
///
/// Every recovery path this codebase claims — mempool upstream-OOM
/// trim-and-retry, serve worker supervision, typed per-request error
/// confinement — is only as real as the test that forces the fault. This
/// header provides the forcing machinery, following the WiredTiger
/// discipline adopted for memory ordering (SNIPPETS.md §3): a claimed
/// failure-handling path gets a checked-in test that *provokes* the
/// failure, deterministically.
///
///  * Injection sites are named: `ALPAKA_FAULT_POINT("mempool.upstream_oom")`
///    marks the spot where an upstream allocation may be made to fail.
///    Sites compile to NOTHING (no atomic load, no branch — invariant 17)
///    unless the build sets `ALPAKA_REPRO_FAULTINJECT=ON`.
///  * A scoped `fault::Plan` arms sites for the duration of a test: fire
///    on the Nth hit, every Kth hit, with probability p, at most M times
///    (`fault::Trigger`). What firing *does* is the plan's choice too —
///    throw (an `InjectedFault` or a caller-supplied exception, e.g.
///    `std::bad_alloc` for OOM sites) or delay (stalls, slow fences, late
///    wakeups). The site itself stays one uniform line.
///  * Decisions are pure functions of (seed, site, hit index): chaos runs
///    are reproducible for a fixed `ALPAKA_STRESS_SEED`, and
///    `Plan::decides` re-derives any schedule offline so tests can assert
///    reproducibility without re-running the world.
///
/// The framework itself (Plan, Trigger, detail::hit) is compiled in both
/// modes so tests link and skip gracefully when injection is off; only
/// the *sites* vanish from the production code.
#pragma once

#include "alpaka/core/error.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace alpaka::fault
{
    //! The default exception an armed fail-site throws. Tests that force a
    //! specific error type (std::bad_alloc at OOM sites) supply their own
    //! factory instead.
    class InjectedFault : public Error
    {
    public:
        using Error::Error;
    };

    //! When an armed site fires, as a predicate over its hit counter
    //! (1-based: the first evaluation of a site is hit 1).
    struct Trigger
    {
        //! First hit eligible to fire.
        std::uint64_t nth = 1;
        //! 0: only hit `nth` is eligible; k: hits nth, nth+k, nth+2k, ...
        std::uint64_t period = 0;
        //! Seeded pseudo-random gate applied per eligible hit; decisions
        //! are pure in (seed, site, hit index) — see Plan::decides.
        double probability = 1.0;
        //! Cap on total fires (1 = one-shot even with a period).
        std::uint64_t maxFires = UINT64_MAX;

        //! Fire exactly once, on hit \p n.
        [[nodiscard]] static auto once(std::uint64_t n = 1) -> Trigger
        {
            return Trigger{n, 0, 1.0, 1};
        }
        //! Fire on every \p k-th hit starting at \p first.
        [[nodiscard]] static auto every(std::uint64_t k, std::uint64_t first = 1) -> Trigger
        {
            return Trigger{first, k, 1.0, UINT64_MAX};
        }
        //! Fire each hit independently with probability \p p.
        [[nodiscard]] static auto withProbability(double p) -> Trigger
        {
            return Trigger{1, 1, p, UINT64_MAX};
        }
    };

    namespace detail
    {
        struct Rule;

        //! Count of installed rules across all live plans; sites bail out
        //! on a single relaxed load while no plan is armed.
        [[nodiscard]] auto armedRules() noexcept -> std::atomic<int>&;

        void evaluate(char const* site);

        //! The compiled-in body of ALPAKA_FAULT_POINT: nothing but one
        //! relaxed atomic load while no plan is installed.
        inline void hit(char const* site)
        {
            if(armedRules().load(std::memory_order_acquire) != 0)
                evaluate(site);
        }
    } // namespace detail

    //! Process-wide armed-site hits (site evaluations while any plan was
    //! installed). Zero in unarmed runs and untraced builds; exported
    //! through obs::collectFault (DESIGN.md §10.4).
    [[nodiscard]] auto totalHits() noexcept -> std::uint64_t;
    //! Process-wide rule fires (injections that actually acted).
    [[nodiscard]] auto totalFires() noexcept -> std::uint64_t;

    //! A scoped fault schedule: rules installed through it arm the named
    //! sites process-wide until the plan dies (tests stack plans freely —
    //! rules of different plans on one site all apply, in installation
    //! order). Thread safe: sites are hit from any thread; rule state is
    //! atomic and decisions are hit-count-deterministic, so concurrent
    //! hitters always agree on which hit index fires.
    class Plan
    {
    public:
        //! Seeded from ALPAKA_STRESS_SEED when set, else a fixed default —
        //! the same convention the stress tests already use.
        Plan();
        explicit Plan(std::uint64_t seed);
        ~Plan();

        Plan(Plan const&) = delete;
        auto operator=(Plan const&) -> Plan& = delete;

        //! Arms \p site to throw when \p trigger fires: the exception from
        //! \p make, or InjectedFault when no factory is given.
        auto fail(std::string_view site, Trigger trigger = Trigger::once(), std::function<std::exception_ptr()> make = {})
            -> Plan&;

        //! Arms \p site to sleep \p duration when \p trigger fires (stalls,
        //! slow fences, late wakeups).
        auto delay(std::string_view site, std::chrono::nanoseconds duration, Trigger trigger = Trigger::once())
            -> Plan&;

        //! \name introspection over this plan's own rules
        //! @{
        //! Times the named site was evaluated against this plan's rules.
        [[nodiscard]] auto hits(std::string_view site) const -> std::uint64_t;
        //! Times this plan's rules fired at the named site.
        [[nodiscard]] auto fires(std::string_view site) const -> std::uint64_t;
        [[nodiscard]] auto seed() const noexcept -> std::uint64_t
        {
            return seed_;
        }
        //! @}

        //! The pure decision function: would a rule with \p trigger under
        //! \p seed fire on \p hitIndex of \p site (ignoring maxFires)?
        //! Exactly the predicate the installed rules evaluate — tests use
        //! it to re-derive and compare schedules offline (reproducibility,
        //! DESIGN.md §7.2).
        [[nodiscard]] static auto decides(
            std::uint64_t seed,
            std::string_view site,
            Trigger const& trigger,
            std::uint64_t hitIndex) -> bool;

        //! The ALPAKA_STRESS_SEED-or-default convention in one place.
        [[nodiscard]] static auto envSeed() -> std::uint64_t;

    private:
        std::uint64_t seed_;
        std::vector<std::shared_ptr<detail::Rule>> rules_;
    };
} // namespace alpaka::fault

//! A named injection site. Compiled out entirely (invariant 17: zero code,
//! not even a load) unless the build defines ALPAKA_REPRO_FAULTINJECT.
#if defined(ALPAKA_REPRO_FAULTINJECT)
#    define ALPAKA_FAULT_POINT(site) ::alpaka::fault::detail::hit(site)
#else
#    define ALPAKA_FAULT_POINT(site) ((void) 0)
#endif
