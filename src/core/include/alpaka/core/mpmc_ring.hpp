/// \file Bounded lock-free MPMC ring (Vyukov per-cell-sequence design).
///
/// The queue primitive behind the serve admission path and the node
/// caches of the lock-free TaskQueue (DESIGN.md §8.6/§8.7). Each cell
/// carries its own sequence number: a producer claims a slot with one CAS
/// on the enqueue cursor, writes the value, then publishes it by storing
/// seq = pos + 1 (release); a consumer observing that sequence (acquire)
/// owns the value and recycles the cell by storing seq = pos + capacity.
/// The per-cell sequence is what makes the design ABA-free across cursor
/// wraparound, and the single release/acquire edge per handoff is encoded
/// in litmus/serve/{x86,arm64}_admit_ring_cell.litmus.
///
/// Guarantees (relied on by tests/core/test_mpmc_ring.cpp):
///  * bounded: push on a full ring fails (returns false), never blocks;
///  * no lost or duplicated elements across any producer/consumer mix;
///  * per-producer FIFO: two pushes by one thread are popped in order
///    (cursor positions are claimed in program order).
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace alpaka::core
{
    //! \tparam T default-constructible, move-assignable element type.
    template<typename T>
    class MpmcRing
    {
    public:
        //! \p capacity is rounded up to the next power of two (min 2).
        explicit MpmcRing(std::size_t capacity)
            : capacity_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity))
            , mask_(capacity_ - 1)
            , cells_(std::make_unique<Cell[]>(capacity_))
        {
            for(std::size_t i = 0; i < capacity_; ++i)
                cells_[i].seq.store(i, std::memory_order_relaxed);
        }

        MpmcRing(MpmcRing const&) = delete;
        auto operator=(MpmcRing const&) -> MpmcRing& = delete;

        //! \returns false when the ring is full (the value is untouched
        //! in that case — the caller keeps ownership).
        [[nodiscard]] auto push(T& value) -> bool
        {
            auto pos = head_.load(std::memory_order_relaxed);
            for(;;)
            {
                auto& cell = cells_[pos & mask_];
                auto const seq = cell.seq.load(std::memory_order_acquire);
                auto const dif
                    = static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
                if(dif == 0)
                {
                    if(head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed))
                    {
                        cell.value = std::move(value);
                        // Publication edge of the handoff (litmus:
                        // serve/*_admit_ring_cell): the consumer's acquire
                        // load of seq orders the value write before its
                        // read.
                        cell.seq.store(pos + 1, std::memory_order_release);
                        return true;
                    }
                }
                else if(dif < 0)
                {
                    return false; // full: the tail lap has not recycled this cell yet
                }
                else
                {
                    pos = head_.load(std::memory_order_relaxed);
                }
            }
        }

        [[nodiscard]] auto push(T&& value) -> bool
        {
            return push(value);
        }

        //! \returns false when the ring is empty.
        [[nodiscard]] auto pop(T& out) -> bool
        {
            auto pos = tail_.load(std::memory_order_relaxed);
            for(;;)
            {
                auto& cell = cells_[pos & mask_];
                auto const seq = cell.seq.load(std::memory_order_acquire);
                auto const dif
                    = static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos + 1);
                if(dif == 0)
                {
                    if(tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed))
                    {
                        out = std::move(cell.value);
                        cell.value = T{}; // drop resources now, not a lap later
                        cell.seq.store(pos + capacity_, std::memory_order_release);
                        return true;
                    }
                }
                else if(dif < 0)
                {
                    return false; // empty (or the producer owning this cell is mid-write)
                }
                else
                {
                    pos = tail_.load(std::memory_order_relaxed);
                }
            }
        }

        [[nodiscard]] auto capacity() const noexcept -> std::size_t
        {
            return capacity_;
        }

    private:
        struct alignas(64) Cell
        {
            std::atomic<std::size_t> seq{0};
            T value{};
        };

        std::size_t capacity_;
        std::size_t mask_;
        std::unique_ptr<Cell[]> cells_;
        alignas(64) std::atomic<std::size_t> head_{0}; //!< enqueue cursor
        alignas(64) std::atomic<std::size_t> tail_{0}; //!< dequeue cursor
    };
} // namespace alpaka::core
