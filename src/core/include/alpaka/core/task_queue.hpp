/// \file Generic in-order asynchronous task queue backing StreamCpuAsync.
#pragma once

#include "gpusim/types.hpp"

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

namespace alpaka::core
{
    //! Single-worker FIFO executing tasks in enqueue order. Errors are
    //! sticky: after the first failing task subsequent tasks are skipped
    //! (except markers) and the error re-surfaces on wait().
    class TaskQueue
    {
    public:
        TaskQueue() : worker_([this](std::stop_token stop) { loop(stop); })
        {
        }

        ~TaskQueue()
        {
            {
                std::unique_lock lock(mutex_);
                cvDrained_.wait(lock, [&] { return queue_.empty() && !busy_; });
            }
            worker_.request_stop();
            cvWork_.notify_all();
        }

        TaskQueue(TaskQueue const&) = delete;
        auto operator=(TaskQueue const&) -> TaskQueue& = delete;

        //! Enqueues a task. \p always makes it run even on a broken queue
        //! (event markers must complete or waiters would hang).
        void enqueue(std::function<void()> task, bool always = false)
        {
            {
                std::scoped_lock lock(mutex_);
                queue_.push_back(Task{std::move(task), always});
                drainState_->drained.store(false, std::memory_order_release);
            }
            cvWork_.notify_one();
        }

        //! Blocks until the queue drained; rethrows the sticky error.
        void wait()
        {
            std::unique_lock lock(mutex_);
            cvDrained_.wait(lock, [&] { return queue_.empty() && !busy_; });
            if(error_ != nullptr)
                std::rethrow_exception(error_);
        }

        [[nodiscard]] auto idle() const -> bool
        {
            std::scoped_lock lock(mutex_);
            return queue_.empty() && !busy_;
        }

        [[nodiscard]] auto lastError() const -> std::exception_ptr
        {
            std::scoped_lock lock(mutex_);
            return error_;
        }

        //! Shared drained-state for non-blocking observers (see
        //! gpusim::DrainState); holding it does not hold the queue.
        [[nodiscard]] auto drainState() const -> std::shared_ptr<gpusim::DrainState const>
        {
            return drainState_;
        }

    private:
        struct Task
        {
            std::function<void()> fn;
            bool always = false;
        };

        void loop(std::stop_token stop)
        {
            for(;;)
            {
                Task task;
                bool skip = false;
                {
                    std::unique_lock lock(mutex_);
                    cvWork_.wait(lock, [&] { return stop.stop_requested() || !queue_.empty(); });
                    if(queue_.empty())
                    {
                        if(stop.stop_requested())
                            return;
                        continue;
                    }
                    task = std::move(queue_.front());
                    queue_.pop_front();
                    busy_ = true;
                    // Sticky error: skip the work — but never destroy the
                    // closure under the mutex. A closure may own the last
                    // reference to a pooled buffer whose release re-enters
                    // queue/pool locks (DESIGN.md §5.3); it is destroyed
                    // with `task` at the end of the iteration, unlocked.
                    skip = error_ != nullptr && !task.always;
                }
                if(task.fn && !skip)
                {
                    try
                    {
                        task.fn();
                    }
                    catch(...)
                    {
                        std::scoped_lock lock(mutex_);
                        if(error_ == nullptr)
                            error_ = std::current_exception();
                    }
                }
                // Batched drain notification: waiters only care about the
                // fully drained state, so skip the notify (and the
                // associated wakeups) while more tasks are queued. Like
                // enqueue's notify_one, the notify stays outside the
                // critical section so woken waiters find the mutex free.
                bool drained;
                {
                    std::scoped_lock lock(mutex_);
                    busy_ = false;
                    drained = queue_.empty();
                    if(drained)
                    {
                        drainState_->seq.fetch_add(1, std::memory_order_release);
                        drainState_->drained.store(true, std::memory_order_release);
                    }
                }
                if(drained)
                    cvDrained_.notify_all();
            }
        }

        mutable std::mutex mutex_;
        std::condition_variable cvWork_;
        std::condition_variable cvDrained_;
        std::deque<Task> queue_;
        bool busy_ = false;
        std::exception_ptr error_{};
        std::shared_ptr<gpusim::DrainState> drainState_ = std::make_shared<gpusim::DrainState>();
        std::jthread worker_;
    };
} // namespace alpaka::core
