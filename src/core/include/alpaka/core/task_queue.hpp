/// \file Generic in-order asynchronous task queue backing StreamCpuAsync.
///
/// Lock-free MPSC design (DESIGN.md §8.7): producers enqueue through a
/// Vyukov intrusive MPSC list (one exchange on the head plus one release
/// store to link — no mutex, no per-enqueue syscall while the worker is
/// busy), the single worker thread consumes nodes and recycles them
/// through a bounded MPMC ring, so the steady state allocates nothing.
///
/// The delicate part is the shared gpusim::DrainState: fences built by
/// mempool::Pool::freeDeferred poll {drained, seq} without any lock, and
/// a stale drained==true is UNSAFE (a pooled block would be reused while
/// a queued task still writes it — DESIGN.md §5.3). The publication
/// protocol below therefore guarantees that drained==true is never
/// observable by a thread whose enqueue has completed until that task
/// ran:
///
///  * enqueue counts the task in a packed {epoch, pending} state word
///    (seq_cst) BEFORE clearing the drained flag and linking the node;
///  * the worker, on pending hitting zero, publishes the drain under a
///    tiny leaf mutex: set publishing, re-read the state word, and store
///    drained=true only if no enqueue raced past the count (litmus:
///    taskqueue/{x86,arm64}_drain_flag — the seq_cst Dekker pair between
///    the producer's count/flag-check and the worker's publishing-mark/
///    state-re-read);
///  * a producer that observes publishing or drained (seq_cst, after its
///    count) joins the same leaf mutex and clears the flag — so any
///    optimistically stored true is provably valid at the instant it is
///    stored, not just eventually corrected.
///
/// The leaf mutex is uncontended and touched only on idle<->busy
/// transitions; the task path itself (enqueue, pop, run) is lock-free.
#pragma once

#include "alpaka/core/mpmc_ring.hpp"

#include "gpusim/types.hpp"

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

namespace alpaka::core
{
    //! Single-worker FIFO executing tasks in enqueue order. Errors are
    //! sticky: after the first failing task subsequent tasks are skipped
    //! (except markers) and the error re-surfaces on wait().
    class TaskQueue
    {
    public:
        TaskQueue()
        {
            head_.store(&stub_, std::memory_order_relaxed);
            tail_ = &stub_;
            worker_ = std::thread([this] { loop(); });
        }

        ~TaskQueue()
        {
            // Drain first: a stream dies only after its work ran.
            awaitDrained();
            stop_.store(true, std::memory_order_release);
            // Wake the parked worker without claiming a task: parkSeq_ is
            // the worker's private futex word, so bumping it perturbs no
            // drain-protocol state.
            parkSeq_.fetch_add(1, std::memory_order_seq_cst);
            parkSeq_.notify_all();
            worker_.join();
            // Free the spine (every closure already ran and was moved
            // out, so nodes hold no resources) and the recycle ring.
            Node* node = tail_;
            while(node != nullptr)
            {
                Node* const next = node->next.load(std::memory_order_relaxed);
                if(node != &stub_)
                    delete node;
                node = next;
            }
            Node* cached = nullptr;
            while(nodeCache_.pop(cached))
                delete cached;
        }

        TaskQueue(TaskQueue const&) = delete;
        auto operator=(TaskQueue const&) -> TaskQueue& = delete;

        //! Enqueues a task. \p always makes it run even on a broken queue
        //! (event markers must complete or waiters would hang).
        void enqueue(std::function<void()> task, bool always = false)
        {
            Node* node = nullptr;
            if(!nodeCache_.pop(node))
                node = new Node;
            node->fn = std::move(task);
            node->always = always;
            node->next.store(nullptr, std::memory_order_relaxed);

            // Count before linking (and before the flag check): from here
            // on, any validated drain publication sees pending > 0 and
            // withholds drained=true until this task ran.
            state_.fetch_add(pendingOne | epochOne, std::memory_order_seq_cst);
            // Dekker with the worker's drain publication (litmus:
            // taskqueue/*_drain_flag): read publishing_ FIRST — a cleared
            // publishing_ means any in-flight publication finished, so
            // the subsequent drained read sees its outcome.
            if(publishing_.load(std::memory_order_seq_cst)
               || drainState_->drained.load(std::memory_order_seq_cst))
            {
                std::scoped_lock lock(drainMutex_);
                drainState_->drained.store(false, std::memory_order_seq_cst);
            }

            // Link (litmus: taskqueue/*_mpsc_link): the release store of
            // prev->next publishes fn/always to the worker's acquire load.
            Node* const prev = head_.exchange(node, std::memory_order_acq_rel);
            prev->next.store(node, std::memory_order_release);

            parkSeq_.fetch_add(1, std::memory_order_seq_cst);
            parkSeq_.notify_one(); // only the worker parks here
        }

        //! Blocks until the queue drained; rethrows the sticky error.
        void wait()
        {
            awaitDrained();
            if(hasError_.load(std::memory_order_acquire))
                std::rethrow_exception(error_);
        }

        [[nodiscard]] auto idle() const -> bool
        {
            return pendingOf(state_.load(std::memory_order_acquire)) == 0;
        }

        [[nodiscard]] auto lastError() const -> std::exception_ptr
        {
            if(!hasError_.load(std::memory_order_acquire))
                return nullptr;
            return error_;
        }

        //! Shared drained-state for non-blocking observers (see
        //! gpusim::DrainState); holding it does not hold the queue.
        [[nodiscard]] auto drainState() const -> std::shared_ptr<gpusim::DrainState const>
        {
            return drainState_;
        }

    private:
        struct Node
        {
            std::function<void()> fn;
            bool always = false;
            std::atomic<Node*> next{nullptr};
        };

        // Packed state word: bits 0..31 = pending task count (enqueued,
        // not yet finished), bits 32..63 = enqueue epoch (total enqueues,
        // modular). One fetch_add bumps both, so "pending == 0" and "no
        // enqueue happened since" are a single atomic snapshot — the
        // drain publication validates against the epoch.
        static constexpr std::uint64_t pendingOne = 1;
        static constexpr std::uint64_t epochOne = std::uint64_t{1} << 32;

        [[nodiscard]] static constexpr auto pendingOf(std::uint64_t state) noexcept -> std::uint32_t
        {
            return static_cast<std::uint32_t>(state & 0xffffffffu);
        }

        [[nodiscard]] static constexpr auto epochOf(std::uint64_t state) noexcept -> std::uint32_t
        {
            return static_cast<std::uint32_t>(state >> 32);
        }

        void awaitDrained() const
        {
            for(;;)
            {
                auto const s = state_.load(std::memory_order_acquire);
                if(pendingOf(s) == 0)
                    return;
                state_.wait(s, std::memory_order_acquire);
            }
        }

        //! Pops one task (Vyukov MPSC: consume the payload of tail->next,
        //! retire the old tail into the node cache). \returns false when
        //! no linked node is available — which the caller disambiguates
        //! via the pending count (mid-link vs genuinely empty).
        [[nodiscard]] auto tryPop(std::function<void()>& fn, bool& always) -> bool
        {
            Node* tail = tail_;
            Node* const next = tail->next.load(std::memory_order_acquire);
            if(next == nullptr)
                return false;
            fn = std::move(next->fn);
            next->fn = nullptr; // moved-from state of std::function is unspecified; pin it
            always = next->always;
            tail_ = next;
            if(tail != &stub_)
            {
                if(!nodeCache_.push(tail))
                    delete tail;
            }
            return true;
        }

        //! Publication of the drained flag (worker only, pending hit 0).
        //! Under drainMutex_ so a true stored here is validated against
        //! the state word atomically w.r.t. every producer's clear.
        void publishDrained(std::uint64_t observed)
        {
            std::scoped_lock lock(drainMutex_);
            publishing_.store(true, std::memory_order_seq_cst);
            auto const s = state_.load(std::memory_order_seq_cst);
            if(pendingOf(s) == 0 && epochOf(s) == epochOf(observed))
            {
                // seq before drained: freeDeferred captures seq first, so
                // a drain landing between its two reads is never missed
                // (mempool/pool.cpp).
                drainState_->seq.fetch_add(1, std::memory_order_release);
                drainState_->drained.store(true, std::memory_order_seq_cst);
            }
            publishing_.store(false, std::memory_order_seq_cst);
        }

        void runOne(std::function<void()>& fn, bool always)
        {
            // Sticky error: skip the work. The closure is destroyed by
            // the caller's loop-local fn, outside every queue lock — a
            // closure may own the last reference to a pooled buffer whose
            // release re-enters pool locks (DESIGN.md §5.3).
            auto const skip = hasError_.load(std::memory_order_relaxed) && !always;
            if(fn && !skip)
            {
                try
                {
                    fn();
                }
                catch(...)
                {
                    if(!hasError_.load(std::memory_order_relaxed))
                    {
                        error_ = std::current_exception();
                        hasError_.store(true, std::memory_order_release);
                    }
                }
            }
            fn = nullptr; // destroy the closure BEFORE the task stops counting
            auto const s = state_.fetch_sub(pendingOne, std::memory_order_seq_cst) - pendingOne;
            if(pendingOf(s) == 0)
                publishDrained(s);
            state_.notify_all(); // wait()-ers park on the state word
        }

        void loop()
        {
            std::function<void()> fn;
            bool always = false;
            for(;;)
            {
                // Park ticket BEFORE the emptiness check: an enqueue
                // bumping parkSeq_ after this snapshot makes the park
                // return immediately (no lost wakeup).
                auto const ticket = parkSeq_.load(std::memory_order_seq_cst);
                if(tryPop(fn, always))
                {
                    runOne(fn, always);
                    continue;
                }
                auto const s = state_.load(std::memory_order_seq_cst);
                if(pendingOf(s) != 0)
                {
                    // Counted but not yet linked: the producer is one
                    // store away — yield it the core instead of parking.
                    std::this_thread::yield();
                    continue;
                }
                if(stop_.load(std::memory_order_acquire))
                    return;
                parkSeq_.wait(ticket, std::memory_order_seq_cst);
            }
        }

        alignas(64) std::atomic<std::uint64_t> state_{0};
        alignas(64) std::atomic<Node*> head_{nullptr}; //!< producers exchange
        alignas(64) std::atomic<std::uint64_t> parkSeq_{0}; //!< worker park/wake word
        Node* tail_ = nullptr; //!< worker-only
        Node stub_;
        MpmcRing<Node*> nodeCache_{256};

        std::atomic<bool> stop_{false};
        std::atomic<bool> hasError_{false};
        std::exception_ptr error_{}; //!< written once, before hasError_ releases it

        std::mutex drainMutex_; //!< leaf lock of the drained-flag protocol
        std::atomic<bool> publishing_{false};
        std::shared_ptr<gpusim::DrainState> drainState_ = std::make_shared<gpusim::DrainState>();
        std::thread worker_;
    };
} // namespace alpaka::core
