/// \file Index-space mappings (paper Listing 3: `core::mapIdx<1>(gTIdx,
/// gTExtent)`).
#pragma once

#include "alpaka/core/common.hpp"
#include "alpaka/dim.hpp"
#include "alpaka/vec.hpp"

#include <cstddef>

namespace alpaka::core
{
    //! Maps an index between dimensionalities within the same extent.
    //!
    //!  * N -> 1: row-major linearization (component 0 slowest),
    //!  * 1 -> N: inverse de-linearization,
    //!  * N -> N: identity.
    //!
    //! \tparam TDimOut the target dimensionality
    //! \param idx the index to map
    //! \param extent the extent of the index space; for N -> 1 the extent of
    //!        the source space, for 1 -> N the extent of the target space.
    template<std::size_t TDimOut, typename TDimIn, typename TSize>
    ALPAKA_FN_HOST_ACC constexpr auto mapIdx(
        Vec<TDimIn, TSize> const& idx,
        Vec<dim::DimInt<(TDimOut == 1 ? TDimIn::value : TDimOut)>, TSize> const& extent) noexcept
        -> Vec<dim::DimInt<TDimOut>, TSize>
    {
        constexpr std::size_t dimIn = TDimIn::value;
        if constexpr(TDimOut == dimIn)
        {
            return idx;
        }
        else if constexpr(TDimOut == 1)
        {
            // Linearize: idx[0] * extent[1] * ... + ... + idx[N-1]
            TSize linear = idx[0];
            for(std::size_t d = 1; d < dimIn; ++d)
                linear = linear * extent[d] + idx[d];
            return Vec<dim::DimInt<1>, TSize>(linear);
        }
        else
        {
            static_assert(dimIn == 1, "mapIdx supports N->1, 1->N and N->N mappings");
            Vec<dim::DimInt<TDimOut>, TSize> result;
            TSize rest = idx[0];
            for(std::size_t d = TDimOut; d-- > 1;)
            {
                result[d] = rest % extent[d];
                rest /= extent[d];
            }
            result[0] = rest;
            return result;
        }
    }
} // namespace alpaka::core
