/// \file Index-space mappings (paper Listing 3: `core::mapIdx<1>(gTIdx,
/// gTExtent)`).
#pragma once

#include "alpaka/core/common.hpp"
#include "alpaka/dim.hpp"
#include "alpaka/vec.hpp"

#include <cstddef>

namespace alpaka::core
{
    //! Maps an index between dimensionalities within the same extent.
    //!
    //!  * N -> 1: row-major linearization (component 0 slowest),
    //!  * 1 -> N: inverse de-linearization,
    //!  * N -> N: identity.
    //!
    //! \tparam TDimOut the target dimensionality
    //! \param idx the index to map
    //! \param extent the extent of the index space; for N -> 1 the extent of
    //!        the source space, for 1 -> N the extent of the target space.
    template<std::size_t TDimOut, typename TDimIn, typename TSize>
    ALPAKA_FN_HOST_ACC constexpr auto mapIdx(
        Vec<TDimIn, TSize> const& idx,
        Vec<dim::DimInt<(TDimOut == 1 ? TDimIn::value : TDimOut)>, TSize> const& extent) noexcept
        -> Vec<dim::DimInt<TDimOut>, TSize>
    {
        constexpr std::size_t dimIn = TDimIn::value;
        if constexpr(TDimOut == dimIn)
        {
            return idx;
        }
        else if constexpr(TDimOut == 1)
        {
            // Linearize: idx[0] * extent[1] * ... + ... + idx[N-1]
            TSize linear = idx[0];
            for(std::size_t d = 1; d < dimIn; ++d)
                linear = linear * extent[d] + idx[d];
            return Vec<dim::DimInt<1>, TSize>(linear);
        }
        else
        {
            static_assert(dimIn == 1, "mapIdx supports N->1, 1->N and N->N mappings");
            Vec<dim::DimInt<TDimOut>, TSize> result;
            TSize rest = idx[0];
            for(std::size_t d = TDimOut; d-- > 1;)
            {
                result[d] = rest % extent[d];
                rest /= extent[d];
            }
            result[0] = rest;
            return result;
        }
    }

    //! Linear -> N-d decoder with the extent products precomputed once.
    //!
    //! mapIdx<N>(Vec<1>, extent) re-derives the row-major weights with a
    //! division chain on every call; the executors decode one linear block
    //! index per block, so per launch that is gridBlockCount repetitions of
    //! identical product computations. An IdxMapper is built once per
    //! launch from the grid extent and caches the suffix products
    //! (pitches), so decoding costs one division per dimension — and for
    //! the 1-d case (the hot launch-overhead path) no division at all.
    template<typename TDim, typename TSize>
    class IdxMapper
    {
    public:
        //! All-zero pitches; only useful as a mapping target (OpenMP
        //! target regions require mappable, default-constructible types).
        constexpr IdxMapper() = default;

        ALPAKA_FN_HOST_ACC constexpr explicit IdxMapper(Vec<TDim, TSize> const& extent) noexcept
        {
            pitch_[TDim::value - 1] = static_cast<TSize>(1);
            for(std::size_t d = TDim::value - 1; d-- > 0;)
                pitch_[d] = pitch_[d + 1] * extent[d + 1];
        }

        //! Decodes \p linear (< extent.prod()) into its N-d index.
        [[nodiscard]] ALPAKA_FN_HOST_ACC constexpr auto operator()(TSize linear) const noexcept
            -> Vec<TDim, TSize>
        {
            if constexpr(TDim::value == 1)
            {
                return Vec<TDim, TSize>(linear);
            }
            else
            {
                Vec<TDim, TSize> idx;
                for(std::size_t d = 0; d < TDim::value - 1; ++d)
                {
                    auto const q = linear / pitch_[d];
                    idx[d] = q;
                    linear -= q * pitch_[d];
                }
                idx[TDim::value - 1] = linear;
                return idx;
            }
        }

        //! Re-encodes an N-d index into its linear form.
        [[nodiscard]] ALPAKA_FN_HOST_ACC constexpr auto linearize(Vec<TDim, TSize> const& idx) const noexcept
            -> TSize
        {
            TSize linear = static_cast<TSize>(0);
            for(std::size_t d = 0; d < TDim::value; ++d)
                linear += idx[d] * pitch_[d];
            return linear;
        }

    private:
        Vec<TDim, TSize> pitch_;
    };
} // namespace alpaka::core
