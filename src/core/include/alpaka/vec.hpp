/// \file N-dimensional extent/index vector (paper Listing 2: `Vec<Dim2,
/// size_t>`).
///
/// Convention: component 0 is the *slowest* varying dimension and component
/// N-1 the fastest (row-major, "z,y,x" order). core::mapIdx and all
/// linearizations follow this convention.
#pragma once

#include "alpaka/core/common.hpp"
#include "alpaka/dim.hpp"

#include <algorithm>
#include <array>
#include <concepts>
#include <cstddef>
#include <functional>
#include <ostream>
#include <type_traits>

namespace alpaka
{
    template<typename TDim, typename TSize>
    class Vec
    {
    public:
        using Dim = TDim;
        using Size = TSize;
        static constexpr std::size_t dimension = TDim::value;
        static_assert(dimension >= 1, "Vec requires dimensionality >= 1");

        //! Zero-initialized.
        constexpr Vec() = default;

        //! Component-wise construction; requires exactly one value per
        //! dimension (paper: `Vec<Dim2, size_t> extents(10, 10)`).
        template<std::convertible_to<TSize>... TArgs>
            requires(sizeof...(TArgs) == dimension && dimension > 0)
        constexpr Vec(TArgs const&... args) noexcept // NOLINT(google-explicit-constructor)
            : values_{static_cast<TSize>(args)...}
        {
        }

        //! A vector with all components equal to \p value.
        [[nodiscard]] static constexpr auto all(TSize value) noexcept -> Vec
        {
            Vec v;
            v.values_.fill(value);
            return v;
        }
        [[nodiscard]] static constexpr auto zeros() noexcept -> Vec
        {
            return all(static_cast<TSize>(0));
        }
        [[nodiscard]] static constexpr auto ones() noexcept -> Vec
        {
            return all(static_cast<TSize>(1));
        }

        [[nodiscard]] constexpr auto operator[](std::size_t i) noexcept -> TSize&
        {
            return values_[i];
        }
        [[nodiscard]] constexpr auto operator[](std::size_t i) const noexcept -> TSize const&
        {
            return values_[i];
        }

        [[nodiscard]] constexpr auto operator==(Vec const&) const noexcept -> bool = default;

        //! Product of all components (the total element count of an extent).
        [[nodiscard]] constexpr auto prod() const noexcept -> TSize
        {
            TSize p = static_cast<TSize>(1);
            for(auto const v : values_)
                p *= v;
            return p;
        }

        //! Sum of all components.
        [[nodiscard]] constexpr auto sum() const noexcept -> TSize
        {
            TSize s = static_cast<TSize>(0);
            for(auto const v : values_)
                s += v;
            return s;
        }

        //! Smallest / largest component.
        [[nodiscard]] constexpr auto min() const noexcept -> TSize
        {
            return *std::min_element(values_.begin(), values_.end());
        }
        [[nodiscard]] constexpr auto max() const noexcept -> TSize
        {
            return *std::max_element(values_.begin(), values_.end());
        }

        //! True if every component satisfies \p pred.
        template<typename TPred>
        [[nodiscard]] constexpr auto allOf(TPred&& pred) const -> bool
        {
            return std::all_of(values_.begin(), values_.end(), std::forward<TPred>(pred));
        }

        //! Casts every component to \p TSizeOther.
        template<typename TSizeOther>
        [[nodiscard]] constexpr auto cast() const noexcept -> Vec<TDim, TSizeOther>
        {
            Vec<TDim, TSizeOther> r;
            for(std::size_t i = 0; i < dimension; ++i)
                r[i] = static_cast<TSizeOther>(values_[i]);
            return r;
        }

        //! The last (fastest varying) component; for 1-d vectors this is the
        //! scalar value.
        [[nodiscard]] constexpr auto back() const noexcept -> TSize
        {
            return values_[dimension - 1];
        }

        [[nodiscard]] constexpr auto begin() noexcept
        {
            return values_.begin();
        }
        [[nodiscard]] constexpr auto end() noexcept
        {
            return values_.end();
        }
        [[nodiscard]] constexpr auto begin() const noexcept
        {
            return values_.begin();
        }
        [[nodiscard]] constexpr auto end() const noexcept
        {
            return values_.end();
        }

    private:
        std::array<TSize, dimension> values_{};
    };

    namespace detail
    {
        template<typename TDim, typename TSize, typename TOp>
        [[nodiscard]] constexpr auto zipWith(Vec<TDim, TSize> const& a, Vec<TDim, TSize> const& b, TOp op) noexcept
            -> Vec<TDim, TSize>
        {
            Vec<TDim, TSize> r;
            for(std::size_t i = 0; i < TDim::value; ++i)
                r[i] = static_cast<TSize>(op(a[i], b[i]));
            return r;
        }
    } // namespace detail

    template<typename TDim, typename TSize>
    [[nodiscard]] constexpr auto operator+(Vec<TDim, TSize> const& a, Vec<TDim, TSize> const& b) noexcept
    {
        return detail::zipWith(a, b, std::plus<>{});
    }
    template<typename TDim, typename TSize>
    [[nodiscard]] constexpr auto operator-(Vec<TDim, TSize> const& a, Vec<TDim, TSize> const& b) noexcept
    {
        return detail::zipWith(a, b, std::minus<>{});
    }
    template<typename TDim, typename TSize>
    [[nodiscard]] constexpr auto operator*(Vec<TDim, TSize> const& a, Vec<TDim, TSize> const& b) noexcept
    {
        return detail::zipWith(a, b, std::multiplies<>{});
    }
    template<typename TDim, typename TSize>
    [[nodiscard]] constexpr auto operator/(Vec<TDim, TSize> const& a, Vec<TDim, TSize> const& b) noexcept
    {
        return detail::zipWith(a, b, std::divides<>{});
    }
    template<typename TDim, typename TSize>
    [[nodiscard]] constexpr auto operator%(Vec<TDim, TSize> const& a, Vec<TDim, TSize> const& b) noexcept
    {
        return detail::zipWith(a, b, std::modulus<>{});
    }

    //! Component-wise minimum / maximum.
    template<typename TDim, typename TSize>
    [[nodiscard]] constexpr auto elementwiseMin(Vec<TDim, TSize> const& a, Vec<TDim, TSize> const& b) noexcept
    {
        return detail::zipWith(a, b, [](TSize x, TSize y) { return std::min(x, y); });
    }
    template<typename TDim, typename TSize>
    [[nodiscard]] constexpr auto elementwiseMax(Vec<TDim, TSize> const& a, Vec<TDim, TSize> const& b) noexcept
    {
        return detail::zipWith(a, b, [](TSize x, TSize y) { return std::max(x, y); });
    }

    //! Component-wise ceiling division (used to subdivide element domains
    //! into grids of blocks).
    template<typename TDim, typename TSize>
    [[nodiscard]] constexpr auto ceilDiv(Vec<TDim, TSize> const& a, Vec<TDim, TSize> const& b) noexcept
    {
        return detail::zipWith(a, b, [](TSize x, TSize y) { return static_cast<TSize>((x + y - 1) / y); });
    }

    template<typename TDim, typename TSize>
    auto operator<<(std::ostream& os, Vec<TDim, TSize> const& v) -> std::ostream&
    {
        os << '(';
        for(std::size_t i = 0; i < TDim::value; ++i)
            os << (i == 0 ? "" : ", ") << v[i];
        return os << ')';
    }

    namespace dim::trait
    {
        template<typename TDim, typename TSize>
        struct DimType<alpaka::Vec<TDim, TSize>>
        {
            using type = TDim;
        };
    } // namespace dim::trait
} // namespace alpaka
