/// \file N-dimensional iteration helper used by the CPU executors.
#pragma once

#include "alpaka/core/common.hpp"
#include "alpaka/vec.hpp"

#include <cstddef>

namespace alpaka::meta
{
    //! Invokes \p f(idx) for every index in [0, extent), iterating the last
    //! component fastest (row-major, matching core::mapIdx).
    template<typename TDim, typename TSize, typename TFn>
    constexpr void ndLoop(Vec<TDim, TSize> const& extent, TFn&& f)
    {
        constexpr std::size_t n = TDim::value;
        Vec<TDim, TSize> idx = Vec<TDim, TSize>::zeros();
        if(extent.prod() == static_cast<TSize>(0))
            return;
        for(;;)
        {
            f(static_cast<Vec<TDim, TSize> const&>(idx));
            // Odometer increment, last digit fastest.
            std::size_t d = n;
            for(;;)
            {
                if(d == 0)
                    return;
                --d;
                idx[d] += static_cast<TSize>(1);
                if(idx[d] < extent[d])
                    break;
                idx[d] = static_cast<TSize>(0);
            }
        }
    }
} // namespace alpaka::meta
