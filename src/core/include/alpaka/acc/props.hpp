/// \file Accelerator device properties and name queries.
#pragma once

#include "alpaka/dim.hpp"
#include "alpaka/vec.hpp"

#include <cstddef>
#include <string>

namespace alpaka::acc
{
    //! The execution limits of an accelerator on a concrete device. Used by
    //! work division validation and by workdiv::getValidWorkDiv.
    template<typename TDim, typename TSize>
    struct AccDevProps
    {
        TSize multiProcessorCount{};
        Vec<TDim, TSize> gridBlockExtentMax = Vec<TDim, TSize>::ones();
        TSize gridBlockCountMax{};
        Vec<TDim, TSize> blockThreadExtentMax = Vec<TDim, TSize>::ones();
        TSize blockThreadCountMax{};
        Vec<TDim, TSize> threadElemExtentMax = Vec<TDim, TSize>::ones();
        TSize threadElemCountMax{};
        std::size_t sharedMemSizeBytes{};
    };

    namespace trait
    {
        //! Customization point: the execution limits of accelerator \p TAcc
        //! on device \p TDev.
        template<typename TAcc, typename TDev, typename = void>
        struct GetAccDevProps;

        //! Customization point: human readable accelerator name.
        template<typename TAcc, typename = void>
        struct GetAccName;
    } // namespace trait

    //! The execution limits of \p TAcc on \p dev.
    template<typename TAcc, typename TDev>
    [[nodiscard]] auto getAccDevProps(TDev const& dev)
    {
        return trait::GetAccDevProps<TAcc, TDev>::get(dev);
    }

    //! Human readable accelerator name, e.g. "AccCpuSerial<1d>".
    template<typename TAcc>
    [[nodiscard]] auto getAccName() -> std::string
    {
        return trait::GetAccName<TAcc>::get();
    }
} // namespace alpaka::acc
