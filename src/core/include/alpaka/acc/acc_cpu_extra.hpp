/// \file Additional CPU accelerators implementing the paper's future-work
/// back-ends (Sec. 5: "Future work will focus on including more Alpaka
/// back-ends, e.g. for OpenACC and OpenMP 4.x target offloading"; Sec. 3.1
/// names Threading Building Blocks).
///
///  * AccCpuTaskBlocks — blocks scheduled dynamically onto a persistent
///    worker pool (the TBB-style back-end, on the from-scratch threadpool
///    substrate). One thread per block, like Omp2Blocks, but with
///    amortized thread creation and dynamic load balancing.
///  * AccCpuOmp4      — blocks distributed over OpenMP `target teams`
///    (the OpenMP 4.x offloading model, executing in host-fallback mode on
///    this machine: without a configured offload device the target region
///    runs on the host, which is exactly OpenMP's portable behaviour).
#pragma once

#include "alpaka/acc/acc_cpu.hpp"
#include "alpaka/workdiv_policy.hpp"

#include <string>

namespace alpaka::acc
{
    //! Task-pool back-end: one alpaka thread per block, blocks dynamically
    //! distributed over a persistent worker pool.
    template<typename TDim, typename TSize>
    class AccCpuTaskBlocks : public detail::AccBase<TDim, TSize>
    {
    public:
        using Dev = dev::DevCpu;
        using Pltf = dev::PltfCpu;
        using detail::AccBase<TDim, TSize>::AccBase;
    };

    //! OpenMP 4.x target-offload back-end (host fallback), one alpaka
    //! thread per block distributed over the teams league.
    template<typename TDim, typename TSize>
    class AccCpuOmp4 : public detail::AccBase<TDim, TSize>
    {
    public:
        using Dev = dev::DevCpu;
        using Pltf = dev::PltfCpu;
        using detail::AccBase<TDim, TSize>::AccBase;
    };

    namespace trait
    {
        template<typename TDim, typename TSize>
        struct GetAccDevProps<AccCpuTaskBlocks<TDim, TSize>, dev::DevCpu>
        {
            static auto get(dev::DevCpu const&)
            {
                return detail::makeCpuProps<TDim, TSize>(static_cast<TSize>(1));
            }
        };
        template<typename TDim, typename TSize>
        struct GetAccDevProps<AccCpuOmp4<TDim, TSize>, dev::DevCpu>
        {
            static auto get(dev::DevCpu const&)
            {
                return detail::makeCpuProps<TDim, TSize>(static_cast<TSize>(1));
            }
        };

        template<typename TDim, typename TSize>
        struct GetAccName<AccCpuTaskBlocks<TDim, TSize>>
        {
            static auto get() -> std::string
            {
                return "AccCpuTaskBlocks<" + std::to_string(TDim::value) + "d>";
            }
        };
        template<typename TDim, typename TSize>
        struct GetAccName<AccCpuOmp4<TDim, TSize>>
        {
            static auto get() -> std::string
            {
                return "AccCpuOmp4<" + std::to_string(TDim::value) + "d>";
            }
        };
    } // namespace trait
} // namespace alpaka::acc

namespace alpaka::workdiv::trait
{
    //! Both new back-ends collapse the thread level (Table 2 "block" rows).
    template<typename TDim, typename TSize>
    struct UsesBlockThreads<acc::AccCpuTaskBlocks<TDim, TSize>>
    {
        static constexpr bool value = false;
    };
    template<typename TDim, typename TSize>
    struct UsesBlockThreads<acc::AccCpuOmp4<TDim, TSize>>
    {
        static constexpr bool value = false;
    };
} // namespace alpaka::workdiv::trait
