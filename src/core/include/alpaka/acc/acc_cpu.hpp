/// \file CPU accelerator types (paper Table 2: Sequential, OpenMP block,
/// OpenMP thread, C++11 thread — plus the fiber back-end of Sec. 3.1).
///
/// An accelerator object is the kernel's window into the machine: it
/// provides the work division, the indices of the executing block/thread,
/// the block shared memory and the block barrier. One accelerator instance
/// exists per executing thread; instances of the same block share the
/// shared-memory arena and the barrier.
#pragma once

#include "alpaka/acc/props.hpp"
#include "alpaka/acc/shared.hpp"
#include "alpaka/dev.hpp"
#include "alpaka/dim.hpp"
#include "alpaka/vec.hpp"
#include "alpaka/workdiv.hpp"

#include "fiber/barrier.hpp"

#include <barrier>
#include <cstddef>
#include <string>

namespace alpaka::acc
{
    namespace detail
    {
        //! State common to all accelerator implementations of this library.
        //! Not part of the public API — kernels interact through
        //! idx::getIdx, workdiv::getWorkDiv, block::shared and block::sync.
        template<typename TDim, typename TSize>
        class AccBase
        {
        public:
            using Dim = TDim;
            using Size = TSize;
            using VecType = Vec<TDim, TSize>;

            AccBase(
                workdiv::WorkDivMembers<TDim, TSize> const& workDiv,
                VecType const& gridBlockIdx,
                VecType const& blockThreadIdx,
                SharedBlock const& sharedBlock) noexcept
                : workDiv_(&workDiv)
                , gridBlockIdx_(gridBlockIdx)
                , blockThreadIdx_(blockThreadIdx)
                , shared_(sharedBlock)
            {
            }

            //! \name ConceptWorkDiv
            //! @{
            [[nodiscard]] auto gridBlockExtent() const noexcept -> VecType const&
            {
                return workDiv_->gridBlockExtent();
            }
            [[nodiscard]] auto blockThreadExtent() const noexcept -> VecType const&
            {
                return workDiv_->blockThreadExtent();
            }
            [[nodiscard]] auto threadElemExtent() const noexcept -> VecType const&
            {
                return workDiv_->threadElemExtent();
            }
            //! @}

            //! \name ConceptIdxProvider
            //! @{
            [[nodiscard]] auto gridBlockIdx() const noexcept -> VecType const&
            {
                return gridBlockIdx_;
            }
            [[nodiscard]] auto blockThreadIdx() const noexcept -> VecType const&
            {
                return blockThreadIdx_;
            }
            //! @}

            //! \name Block shared memory (used by block::shared)
            //! @{
            template<typename T>
            [[nodiscard]] auto allocVar() const -> T&
            {
                return cursor_.template allocVar<T>();
            }
            template<typename T>
            [[nodiscard]] auto dynSharedMem() const noexcept -> T*
            {
                return cursor_.template dynMem<T>();
            }
            [[nodiscard]] auto dynSharedMemBytes() const noexcept -> std::size_t
            {
                return cursor_.dynBytes();
            }
            //! @}

        private:
            workdiv::WorkDivMembers<TDim, TSize> const* workDiv_;
            VecType gridBlockIdx_;
            VecType blockThreadIdx_;
            SharedBlock shared_;
            mutable SharedCursor cursor_{shared_};
        };

        //! Default CPU limits. The shared memory size models the part of
        //! the cache hierarchy a block can reasonably own (paper Fig. 3 maps
        //! block shared memory onto L1/L2 for CPUs); it is generous because
        //! CPU blocks may span big tiles (the paper's Fig. 8 uses 16k
        //! element tiles on CPUs).
        inline constexpr std::size_t cpuSharedMemBytes = 4 * 1024 * 1024;
        inline constexpr std::size_t cpuMaxThreadsPerBlock = 1024;

        template<typename TDim, typename TSize>
        [[nodiscard]] auto makeCpuProps(TSize blockThreadCountMax) -> AccDevProps<TDim, TSize>
        {
            AccDevProps<TDim, TSize> props;
            props.multiProcessorCount = static_cast<TSize>(dev::DevCpu::concurrency());
            props.gridBlockExtentMax = Vec<TDim, TSize>::all(std::numeric_limits<TSize>::max());
            props.gridBlockCountMax = std::numeric_limits<TSize>::max();
            props.blockThreadExtentMax = Vec<TDim, TSize>::all(blockThreadCountMax);
            props.blockThreadCountMax = blockThreadCountMax;
            props.threadElemExtentMax = Vec<TDim, TSize>::all(std::numeric_limits<TSize>::max());
            props.threadElemCountMax = std::numeric_limits<TSize>::max();
            props.sharedMemSizeBytes = cpuSharedMemBytes;
            return props;
        }
    } // namespace detail

    //! Sequential back-end: blocks run one after another, one thread per
    //! block (paper Table 2 "Sequential": grid N/V, block 1, element V).
    template<typename TDim, typename TSize>
    class AccCpuSerial : public detail::AccBase<TDim, TSize>
    {
    public:
        using Dev = dev::DevCpu;
        using Pltf = dev::PltfCpu;
        using detail::AccBase<TDim, TSize>::AccBase;
    };

    //! C++ thread back-end: the threads of a block are OS threads with a
    //! std::barrier for block synchronization.
    template<typename TDim, typename TSize>
    class AccCpuThreads : public detail::AccBase<TDim, TSize>
    {
    public:
        using Dev = dev::DevCpu;
        using Pltf = dev::PltfCpu;
        using BarrierType = std::barrier<>;

        AccCpuThreads(
            workdiv::WorkDivMembers<TDim, TSize> const& workDiv,
            Vec<TDim, TSize> const& gridBlockIdx,
            Vec<TDim, TSize> const& blockThreadIdx,
            detail::SharedBlock const& sharedBlock,
            BarrierType* barrier) noexcept
            : detail::AccBase<TDim, TSize>(workDiv, gridBlockIdx, blockThreadIdx, sharedBlock)
            , barrier_(barrier)
        {
        }

        void syncBlockThreads() const
        {
            barrier_->arrive_and_wait();
        }

    private:
        BarrierType* barrier_;
    };

    //! Fiber back-end: the threads of a block are cooperative user-level
    //! fibers on one OS thread (the paper's boost::fibers back-end, rebuilt
    //! on this repository's fiber substrate). Barrier divergence is
    //! *detected* instead of deadlocking.
    template<typename TDim, typename TSize>
    class AccCpuFibers : public detail::AccBase<TDim, TSize>
    {
    public:
        using Dev = dev::DevCpu;
        using Pltf = dev::PltfCpu;

        AccCpuFibers(
            workdiv::WorkDivMembers<TDim, TSize> const& workDiv,
            Vec<TDim, TSize> const& gridBlockIdx,
            Vec<TDim, TSize> const& blockThreadIdx,
            detail::SharedBlock const& sharedBlock,
            fiber::Barrier* barrier) noexcept
            : detail::AccBase<TDim, TSize>(workDiv, gridBlockIdx, blockThreadIdx, sharedBlock)
            , barrier_(barrier)
        {
        }

        void syncBlockThreads() const
        {
            barrier_->arriveAndWait();
        }

    private:
        fiber::Barrier* barrier_;
    };

    //! OpenMP 2 "blocks" back-end: blocks are distributed over the OpenMP
    //! thread team, one alpaka thread per block (paper Table 2 "OpenMP
    //! block": grid N/V, block 1, element V). Block synchronization is a
    //! no-op because a block is a single thread.
    template<typename TDim, typename TSize>
    class AccCpuOmp2Blocks : public detail::AccBase<TDim, TSize>
    {
    public:
        using Dev = dev::DevCpu;
        using Pltf = dev::PltfCpu;
        using detail::AccBase<TDim, TSize>::AccBase;
    };

    //! OpenMP 2 "threads" back-end: the threads of a block form an OpenMP
    //! team; blocks run sequentially (paper Table 2 "OpenMP thread").
    //! Block synchronization uses a shared std::barrier so that divergence
    //! failures stay recoverable (see DESIGN.md).
    template<typename TDim, typename TSize>
    class AccCpuOmp2Threads : public detail::AccBase<TDim, TSize>
    {
    public:
        using Dev = dev::DevCpu;
        using Pltf = dev::PltfCpu;
        using BarrierType = std::barrier<>;

        AccCpuOmp2Threads(
            workdiv::WorkDivMembers<TDim, TSize> const& workDiv,
            Vec<TDim, TSize> const& gridBlockIdx,
            Vec<TDim, TSize> const& blockThreadIdx,
            detail::SharedBlock const& sharedBlock,
            BarrierType* barrier) noexcept
            : detail::AccBase<TDim, TSize>(workDiv, gridBlockIdx, blockThreadIdx, sharedBlock)
            , barrier_(barrier)
        {
        }

        void syncBlockThreads() const
        {
            barrier_->arrive_and_wait();
        }

    private:
        BarrierType* barrier_;
    };

    namespace trait
    {
        template<typename TDim, typename TSize>
        struct GetAccDevProps<AccCpuSerial<TDim, TSize>, dev::DevCpu>
        {
            static auto get(dev::DevCpu const&)
            {
                return detail::makeCpuProps<TDim, TSize>(static_cast<TSize>(1));
            }
        };
        template<typename TDim, typename TSize>
        struct GetAccDevProps<AccCpuOmp2Blocks<TDim, TSize>, dev::DevCpu>
        {
            static auto get(dev::DevCpu const&)
            {
                return detail::makeCpuProps<TDim, TSize>(static_cast<TSize>(1));
            }
        };
        template<typename TDim, typename TSize>
        struct GetAccDevProps<AccCpuThreads<TDim, TSize>, dev::DevCpu>
        {
            static auto get(dev::DevCpu const&)
            {
                return detail::makeCpuProps<TDim, TSize>(static_cast<TSize>(detail::cpuMaxThreadsPerBlock));
            }
        };
        template<typename TDim, typename TSize>
        struct GetAccDevProps<AccCpuFibers<TDim, TSize>, dev::DevCpu>
        {
            static auto get(dev::DevCpu const&)
            {
                return detail::makeCpuProps<TDim, TSize>(static_cast<TSize>(detail::cpuMaxThreadsPerBlock));
            }
        };
        template<typename TDim, typename TSize>
        struct GetAccDevProps<AccCpuOmp2Threads<TDim, TSize>, dev::DevCpu>
        {
            static auto get(dev::DevCpu const&)
            {
                return detail::makeCpuProps<TDim, TSize>(static_cast<TSize>(detail::cpuMaxThreadsPerBlock));
            }
        };

        template<typename TDim, typename TSize>
        struct GetAccName<AccCpuSerial<TDim, TSize>>
        {
            static auto get() -> std::string
            {
                return "AccCpuSerial<" + std::to_string(TDim::value) + "d>";
            }
        };
        template<typename TDim, typename TSize>
        struct GetAccName<AccCpuThreads<TDim, TSize>>
        {
            static auto get() -> std::string
            {
                return "AccCpuThreads<" + std::to_string(TDim::value) + "d>";
            }
        };
        template<typename TDim, typename TSize>
        struct GetAccName<AccCpuFibers<TDim, TSize>>
        {
            static auto get() -> std::string
            {
                return "AccCpuFibers<" + std::to_string(TDim::value) + "d>";
            }
        };
        template<typename TDim, typename TSize>
        struct GetAccName<AccCpuOmp2Blocks<TDim, TSize>>
        {
            static auto get() -> std::string
            {
                return "AccCpuOmp2Blocks<" + std::to_string(TDim::value) + "d>";
            }
        };
        template<typename TDim, typename TSize>
        struct GetAccName<AccCpuOmp2Threads<TDim, TSize>>
        {
            static auto get() -> std::string
            {
                return "AccCpuOmp2Threads<" + std::to_string(TDim::value) + "d>";
            }
        };
    } // namespace trait
} // namespace alpaka::acc
