/// \file Block shared memory bookkeeping shared by all accelerators.
#pragma once

#include "alpaka/core/error.hpp"

#include <cstddef>
#include <cstdint>

namespace alpaka::acc::detail
{
    //! Describes the shared memory region of the currently executing block.
    //! The first \ref dynBytes are the dynamic ("extern") shared memory; the
    //! remainder is carved into statically allocated shared variables by
    //! SharedCursor.
    struct SharedBlock
    {
        std::byte* base = nullptr;
        std::size_t capacity = 0;
        std::size_t dynBytes = 0;
    };

    //! Per-thread allocation cursor over the static region of a
    //! SharedBlock.
    //!
    //! Every thread of a block calls the same sequence of allocVar<T>()
    //! (the calls are part of the single-source kernel), so every thread
    //! computes the same offsets deterministically and all threads of a
    //! block receive the *same* object per call site — the CUDA __shared__
    //! variable semantics without compiler support. Like CUDA shared
    //! variables, the memory is uninitialized; one thread initializes it and
    //! the block synchronizes before use.
    class SharedCursor
    {
    public:
        explicit SharedCursor(SharedBlock const& block) noexcept
            : block_(block)
            , cursor_(alignUp(block.dynBytes, alignof(std::max_align_t)))
        {
        }

        template<typename T>
        [[nodiscard]] auto allocVar() -> T&
        {
            static_assert(std::is_trivially_destructible_v<T>, "shared variables must be trivially destructible");
            auto const offset = alignUp(cursor_, alignof(T));
            auto const end = offset + sizeof(T);
            if(end > block_.capacity)
                throw SharedMemOverflowError(
                    "block shared memory exhausted: request ends at " + std::to_string(end)
                    + " B but the accelerator provides " + std::to_string(block_.capacity) + " B");
            cursor_ = end;
            return *reinterpret_cast<T*>(block_.base + offset);
        }

        template<typename T>
        [[nodiscard]] auto dynMem() const noexcept -> T*
        {
            return reinterpret_cast<T*>(block_.base);
        }

        [[nodiscard]] auto dynBytes() const noexcept -> std::size_t
        {
            return block_.dynBytes;
        }

    private:
        [[nodiscard]] static constexpr auto alignUp(std::size_t value, std::size_t align) noexcept -> std::size_t
        {
            return (value + align - 1) / align * align;
        }

        SharedBlock block_;
        std::size_t cursor_;
    };
} // namespace alpaka::acc::detail
