/// \file The simulated-GPU accelerator (the paper's CUDA back-end mapped
/// onto the gpusim substrate; see DESIGN.md for the substitution rationale).
#pragma once

#include "alpaka/acc/acc_cpu.hpp" // for detail::AccBase
#include "alpaka/acc/props.hpp"
#include "alpaka/acc/shared.hpp"
#include "alpaka/dev.hpp"
#include "alpaka/dim.hpp"
#include "alpaka/vec.hpp"
#include "alpaka/workdiv.hpp"

#include "gpusim/device.hpp"

#include <string>

namespace alpaka::acc
{
    namespace detail
    {
        //! Converts an alpaka extent/index vector (component 0 slowest) to a
        //! gpusim Dim3 (x fastest). Only defined for Dim <= 3.
        template<typename TDim, typename TSize>
        [[nodiscard]] auto vecToDim3(Vec<TDim, TSize> const& v) -> gpusim::Dim3
        {
            static_assert(TDim::value >= 1 && TDim::value <= 3, "the CudaSim back-end supports 1-3 dimensions");
            gpusim::Dim3 d{};
            constexpr std::size_t n = TDim::value;
            d.x = static_cast<unsigned>(v[n - 1]);
            if constexpr(n >= 2)
                d.y = static_cast<unsigned>(v[n - 2]);
            if constexpr(n >= 3)
                d.z = static_cast<unsigned>(v[n - 3]);
            return d;
        }

        //! Inverse of vecToDim3.
        template<typename TDim, typename TSize>
        [[nodiscard]] auto dim3ToVec(gpusim::Dim3 const& d) -> Vec<TDim, TSize>
        {
            static_assert(TDim::value >= 1 && TDim::value <= 3, "the CudaSim back-end supports 1-3 dimensions");
            constexpr std::size_t n = TDim::value;
            auto v = Vec<TDim, TSize>::zeros();
            v[n - 1] = static_cast<TSize>(d.x);
            if constexpr(n >= 2)
                v[n - 2] = static_cast<TSize>(d.y);
            if constexpr(n >= 3)
                v[n - 3] = static_cast<TSize>(d.z);
            return v;
        }
    } // namespace detail

    //! Accelerator executing on a simulated GPU: blocks are scheduled onto
    //! the device engine, the threads of a block are SIMT fibers, shared
    //! memory lives in the device's per-block arena and the block barrier is
    //! the engine barrier (with divergence detection).
    template<typename TDim, typename TSize>
    class AccGpuCudaSim : public detail::AccBase<TDim, TSize>
    {
    public:
        using Dev = dev::DevCudaSim;
        using Pltf = dev::PltfCudaSim;

        AccGpuCudaSim(
            workdiv::WorkDivMembers<TDim, TSize> const& workDiv,
            detail::SharedBlock const& sharedBlock,
            gpusim::ThreadCtx& ctx) noexcept
            : detail::AccBase<TDim, TSize>(
                  workDiv,
                  detail::dim3ToVec<TDim, TSize>(ctx.blockIdx()),
                  detail::dim3ToVec<TDim, TSize>(ctx.threadIdx()),
                  sharedBlock)
            , ctx_(&ctx)
        {
        }

        void syncBlockThreads() const
        {
            ctx_->sync();
        }

        //! The underlying simulator thread context (exposed for tests and
        //! instrumentation).
        [[nodiscard]] auto simThreadCtx() const noexcept -> gpusim::ThreadCtx&
        {
            return *ctx_;
        }

    private:
        gpusim::ThreadCtx* ctx_;
    };

    namespace trait
    {
        template<typename TDim, typename TSize>
        struct GetAccDevProps<AccGpuCudaSim<TDim, TSize>, dev::DevCudaSim>
        {
            static auto get(dev::DevCudaSim const& dev)
            {
                auto const& spec = dev.spec();
                AccDevProps<TDim, TSize> props;
                props.multiProcessorCount = static_cast<TSize>(spec.smCount);
                props.gridBlockExtentMax = detail::dim3ToVec<TDim, TSize>(spec.maxGridDim);
                props.gridBlockCountMax = std::numeric_limits<TSize>::max();
                props.blockThreadExtentMax = detail::dim3ToVec<TDim, TSize>(spec.maxBlockDim);
                props.blockThreadCountMax = static_cast<TSize>(spec.maxThreadsPerBlock);
                props.threadElemExtentMax = Vec<TDim, TSize>::all(std::numeric_limits<TSize>::max());
                props.threadElemCountMax = std::numeric_limits<TSize>::max();
                props.sharedMemSizeBytes = spec.sharedMemPerBlock;
                return props;
            }
        };

        template<typename TDim, typename TSize>
        struct GetAccName<AccGpuCudaSim<TDim, TSize>>
        {
            static auto get() -> std::string
            {
                return "AccGpuCudaSim<" + std::to_string(TDim::value) + "d>";
            }
        };
    } // namespace trait
} // namespace alpaka::acc
