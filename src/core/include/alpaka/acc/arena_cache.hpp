/// \file Persistent per-thread block-shared-memory arenas.
///
/// Every CPU back-end hands each concurrently executing block a 4 MB
/// shared-memory arena (acc_cpu.hpp: cpuSharedMemBytes). The seed allocated
/// these arenas with make_unique_for_overwrite on *every* kernel launch —
/// one malloc/free of 4 MB per launch (and one per OpenMP thread in
/// AccCpuOmp2Blocks), which alone violates the paper's zero-overhead claim
/// (Fig. 5) for small grids. This cache keeps one arena alive per OS
/// thread for the lifetime of the thread, so steady-state launches perform
/// zero shared-arena heap allocations.
///
/// Safety argument: an arena is handed out per *executing* thread —
///  * single-threaded-block back-ends (Serial, Omp2Blocks, TaskBlocks,
///    Omp4) fetch it on the thread that runs the block, and one thread
///    runs one block at a time;
///  * multi-threaded-block back-ends (Threads, Fibers, Omp2Threads) fetch
///    it once per launch on the *launching* thread and share it across the
///    block's team — concurrent launches come from distinct launcher
///    threads and therefore get distinct arenas.
/// Contents are undefined between launches, matching CUDA shared-memory
/// semantics (and the seed's make_unique_for_overwrite).
#pragma once

#include <cstddef>
#include <memory>

namespace alpaka::acc
{
    class SharedArenaCache
    {
    public:
        //! The calling thread's arena, at least \p bytes large. The arena
        //! is (re)allocated only when \p bytes grows beyond the cached
        //! capacity — with the fixed per-accelerator capacities this
        //! happens at most once per thread.
        [[nodiscard]] static auto get(std::size_t bytes) -> std::byte*
        {
            auto& slot = local();
            if(slot.capacity < bytes)
            {
                // Uninitialized: shared memory contents are undefined
                // (CUDA semantics) and touching multiple megabytes per
                // launch would itself violate the zero-overhead property.
                slot.arena = std::make_unique_for_overwrite<std::byte[]>(bytes);
                slot.capacity = bytes;
            }
            return slot.arena.get();
        }

        //! Capacity currently cached for the calling thread (test hook).
        [[nodiscard]] static auto capacity() noexcept -> std::size_t
        {
            return local().capacity;
        }

        //! Drops the calling thread's arena (test hook).
        static void reset() noexcept
        {
            auto& slot = local();
            slot.arena.reset();
            slot.capacity = 0;
        }

    private:
        struct Slot
        {
            std::unique_ptr<std::byte[]> arena;
            std::size_t capacity = 0;
        };

        [[nodiscard]] static auto local() noexcept -> Slot&
        {
            thread_local Slot slot;
            return slot;
        }
    };
} // namespace alpaka::acc
