/// \file Memory buffers, views and deep copies (paper Sec. 3.4.4,
/// Listing 4).
///
/// The paper's memory model is deliberately simple: buffers store a plain
/// pointer plus residing device, extent, pitch and dimension; copies between
/// memory levels are explicit and data layout is never hidden from the user
/// ("data structure agnostic"). Buffers are uniform across devices, so one
/// `mem::view::copy` moves data between any combination of host and
/// (simulated) accelerator buffers.
#pragma once

#include "alpaka/core/common.hpp"
#include "alpaka/core/error.hpp"
#include "alpaka/dev.hpp"
#include "alpaka/dim.hpp"
#include "alpaka/stream.hpp"
#include "alpaka/vec.hpp"

#include "mempool/lease.hpp"
#include "mempool/stream_ops.hpp"

#include <concepts>
#include <cstddef>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace alpaka::mem
{
    namespace detail
    {
        [[nodiscard]] constexpr auto roundUp(std::size_t value, std::size_t mult) noexcept -> std::size_t
        {
            return (value + mult - 1) / mult * mult;
        }

        //! Row count of an extent: the product of all but the innermost
        //! dimension.
        template<typename TDim, typename TSize>
        [[nodiscard]] constexpr auto rowCount(Vec<TDim, TSize> const& extent) noexcept -> std::size_t
        {
            std::size_t rows = 1;
            for(std::size_t d = 0; d + 1 < TDim::value; ++d)
                rows *= static_cast<std::size_t>(extent[d]);
            return rows;
        }

        //! Byte strides of a pitched buffer: strides[N-1] = sizeof(elem),
        //! strides[N-2] = rowPitch, outer strides derived from the buffer's
        //! own extent.
        template<typename TDim, typename TSize>
        [[nodiscard]] constexpr auto byteStrides(
            Vec<TDim, TSize> const& bufExtent,
            std::size_t elemBytes,
            std::size_t rowPitchBytes) noexcept -> Vec<TDim, std::size_t>
        {
            constexpr std::size_t n = TDim::value;
            Vec<TDim, std::size_t> strides = Vec<TDim, std::size_t>::zeros();
            strides[n - 1] = elemBytes;
            if constexpr(n >= 2)
            {
                strides[n - 2] = rowPitchBytes;
                for(std::size_t d = n - 2; d-- > 0;)
                    strides[d] = strides[d + 1] * static_cast<std::size_t>(bufExtent[d + 1]);
            }
            return strides;
        }

        //! Byte offset of row \p row (rows enumerated over the copy extent,
        //! innermost-but-one dimension fastest) within a buffer described by
        //! \p strides.
        template<typename TDim, typename TSize>
        [[nodiscard]] constexpr auto rowByteOffset(
            std::size_t row,
            Vec<TDim, TSize> const& copyExtent,
            Vec<TDim, std::size_t> const& strides) noexcept -> std::size_t
        {
            constexpr std::size_t n = TDim::value;
            std::size_t offset = 0;
            std::size_t rest = row;
            if constexpr(n >= 2)
            {
                for(std::size_t d = n - 1; d-- > 0;)
                {
                    auto const e = static_cast<std::size_t>(copyExtent[d]);
                    offset += (rest % e) * strides[d];
                    rest /= e;
                }
            }
            return offset;
        }
    } // namespace detail
} // namespace alpaka::mem

namespace alpaka::mem::buf
{
    //! Host (CPU) buffer with rows aligned to cache-line boundaries.
    //! Shared-ownership value type: copies refer to the same storage, the
    //! last owner frees it.
    template<typename TElem, typename TDim, typename TSize>
    class BufCpu
    {
        static_assert(std::is_trivially_copyable_v<TElem>, "buffers hold trivially copyable elements");

    public:
        using Elem = TElem;
        using Dim = TDim;
        using Size = TSize;
        using Dev = dev::DevCpu;
        static constexpr std::size_t rowAlignment = 64;

        BufCpu(dev::DevCpu const& device, Vec<TDim, TSize> const& extent)
            : impl_(std::make_shared<Impl>(device, extent))
        {
        }

        //! Adopts a stream-ordered pooled block (mem::buf::allocAsync);
        //! the lease returns the storage to its pool when the buffer is
        //! freed (explicitly or by the last owner's destructor).
        BufCpu(
            dev::DevCpu const& device,
            Vec<TDim, TSize> const& extent,
            std::size_t pitchBytes,
            std::unique_ptr<mempool::BufLease> lease)
            : impl_(std::make_shared<Impl>(device, extent, pitchBytes, std::move(lease)))
        {
        }

        [[nodiscard]] auto getDev() const noexcept -> dev::DevCpu
        {
            return impl_->dev;
        }
        [[nodiscard]] auto extent() const noexcept -> Vec<TDim, TSize> const&
        {
            return impl_->extent;
        }
        //! Plain pointer to the first element (paper: "simple buffers that
        //! store the plain pointer").
        [[nodiscard]] auto data() const noexcept -> TElem*
        {
            return impl_->ptr;
        }
        //! Stride in bytes between consecutive rows.
        [[nodiscard]] auto rowPitchBytes() const noexcept -> std::size_t
        {
            return impl_->pitchBytes;
        }
        //! The pooled-block lease, or nullptr for a malloc-backed buffer.
        [[nodiscard]] auto pooledLease() const noexcept -> mempool::BufLease*
        {
            return impl_->lease.get();
        }

    private:
        struct Impl
        {
            Impl(dev::DevCpu const& device, Vec<TDim, TSize> const& ext) : dev(device), extent(ext)
            {
                if(!ext.allOf([](TSize v) { return v > static_cast<TSize>(0); }))
                    throw UsageError("BufCpu: extents must be positive");
                auto const widthBytes = static_cast<std::size_t>(ext.back()) * sizeof(TElem);
                pitchBytes = TDim::value == 1 ? widthBytes : detail::roundUp(widthBytes, rowAlignment);
                bytes = pitchBytes * detail::rowCount(ext);
                ptr = static_cast<TElem*>(::operator new[](bytes, std::align_val_t{rowAlignment}));
            }
            Impl(
                dev::DevCpu const& device,
                Vec<TDim, TSize> const& ext,
                std::size_t pitch,
                std::unique_ptr<mempool::BufLease> pooled)
                : dev(device)
                , extent(ext)
                , pitchBytes(pitch)
                , lease(std::move(pooled))
            {
                bytes = pitchBytes * detail::rowCount(ext);
                ptr = static_cast<TElem*>(lease->data());
            }
            ~Impl()
            {
                if(lease == nullptr)
                    ::operator delete[](static_cast<void*>(ptr), std::align_val_t{rowAlignment});
            }
            Impl(Impl const&) = delete;
            auto operator=(Impl const&) -> Impl& = delete;

            dev::DevCpu dev;
            Vec<TDim, TSize> extent;
            std::size_t pitchBytes = 0;
            std::size_t bytes = 0;
            TElem* ptr = nullptr;
            std::unique_ptr<mempool::BufLease> lease;
        };

        std::shared_ptr<Impl> impl_;
    };

    //! Buffer in the global memory of a simulated GPU. Rows are pitched to
    //! the device's alignment (256 B, like cudaMallocPitch).
    template<typename TElem, typename TDim, typename TSize>
    class BufCudaSim
    {
        static_assert(std::is_trivially_copyable_v<TElem>, "buffers hold trivially copyable elements");

    public:
        using Elem = TElem;
        using Dim = TDim;
        using Size = TSize;
        using Dev = dev::DevCudaSim;

        BufCudaSim(dev::DevCudaSim const& device, Vec<TDim, TSize> const& extent)
            : impl_(std::make_shared<Impl>(device, extent))
        {
        }

        //! Adopts a stream-ordered pooled block (mem::buf::allocAsync).
        BufCudaSim(
            dev::DevCudaSim const& device,
            Vec<TDim, TSize> const& extent,
            std::size_t pitchBytes,
            std::unique_ptr<mempool::BufLease> lease)
            : impl_(std::make_shared<Impl>(device, extent, pitchBytes, std::move(lease)))
        {
        }

        [[nodiscard]] auto getDev() const noexcept -> dev::DevCudaSim
        {
            return impl_->dev;
        }
        [[nodiscard]] auto extent() const noexcept -> Vec<TDim, TSize> const&
        {
            return impl_->extent;
        }
        [[nodiscard]] auto data() const noexcept -> TElem*
        {
            return impl_->ptr;
        }
        [[nodiscard]] auto rowPitchBytes() const noexcept -> std::size_t
        {
            return impl_->pitchBytes;
        }
        //! The pooled-block lease, or nullptr for a direct allocation.
        [[nodiscard]] auto pooledLease() const noexcept -> mempool::BufLease*
        {
            return impl_->lease.get();
        }

    private:
        struct Impl
        {
            Impl(dev::DevCudaSim const& device, Vec<TDim, TSize> const& ext) : dev(device), extent(ext)
            {
                if(!ext.allOf([](TSize v) { return v > static_cast<TSize>(0); }))
                    throw UsageError("BufCudaSim: extents must be positive");
                auto const widthBytes = static_cast<std::size_t>(ext.back()) * sizeof(TElem);
                auto& memory = dev.simDevice().memory();
                if constexpr(TDim::value == 1)
                {
                    pitchBytes = widthBytes;
                    ptr = static_cast<TElem*>(memory.allocate(widthBytes));
                }
                else
                {
                    ptr = static_cast<TElem*>(
                        memory.allocatePitched(widthBytes, detail::rowCount(ext), pitchBytes));
                }
            }
            Impl(
                dev::DevCudaSim const& device,
                Vec<TDim, TSize> const& ext,
                std::size_t pitch,
                std::unique_ptr<mempool::BufLease> pooled)
                : dev(device)
                , extent(ext)
                , pitchBytes(pitch)
                , lease(std::move(pooled))
            {
                ptr = static_cast<TElem*>(lease->data());
            }
            ~Impl()
            {
                // A pooled block belongs to its pool (which holds it as a
                // live MemoryManager allocation); only direct allocations
                // free into the device here.
                if(lease == nullptr)
                    dev.simDevice().memory().free(ptr);
            }
            Impl(Impl const&) = delete;
            auto operator=(Impl const&) -> Impl& = delete;

            dev::DevCudaSim dev;
            Vec<TDim, TSize> extent;
            std::size_t pitchBytes = 0;
            TElem* ptr = nullptr;
            std::unique_ptr<mempool::BufLease> lease;
        };

        std::shared_ptr<Impl> impl_;
    };

    namespace trait
    {
        //! Customization point: the buffer type living on a device.
        template<typename TDev, typename TElem, typename TDim, typename TSize>
        struct BufType;

        template<typename TElem, typename TDim, typename TSize>
        struct BufType<dev::DevCpu, TElem, TDim, TSize>
        {
            using type = BufCpu<TElem, TDim, TSize>;
        };
        template<typename TElem, typename TDim, typename TSize>
        struct BufType<dev::DevCudaSim, TElem, TDim, TSize>
        {
            using type = BufCudaSim<TElem, TDim, TSize>;
        };
    } // namespace trait

    template<typename TDev, typename TElem, typename TDim, typename TSize>
    using Buf = typename trait::BufType<TDev, TElem, TDim, TSize>::type;

    //! Allocates a buffer of \p extent elements on \p dev (paper Listing 4:
    //! `mem::buf::alloc<Data, Size>(host, extents)`).
    template<typename TElem, typename TSize, typename TDev, typename TDim>
    [[nodiscard]] auto alloc(TDev const& device, Vec<TDim, TSize> const& extent)
        -> Buf<TDev, TElem, TDim, TSize>
    {
        return Buf<TDev, TElem, TDim, TSize>(device, extent);
    }

    //! 1-d convenience overload taking the element count as a scalar.
    template<typename TElem, typename TSize, typename TDev>
    [[nodiscard]] auto alloc(TDev const& device, TSize const extent)
        -> Buf<TDev, TElem, dim::DimInt<1>, TSize>
    {
        return alloc<TElem, TSize>(device, Vec<dim::DimInt<1>, TSize>(extent));
    }

    //! Stream-ordered allocation from the device's memory pool (the
    //! `cudaMallocAsync` analog, DESIGN.md §5): returns immediately with a
    //! buffer on \p stream's device whose storage may be a recycled pool
    //! block — reuse is ordered by \p stream's progress, so the buffer is
    //! valid for work subsequently enqueued on that stream (other streams
    //! must be ordered against it by the user, e.g. through events).
    //!
    //! On a *capturing* stream this records a graph alloc node instead:
    //! the block is reserved for the graph's lifetime, every replay of the
    //! instantiated graph::Exec sees the identical address, and the
    //! matching mem::buf::freeAsync records the free node.
    template<typename TElem, typename TSize, typename TStream, typename TDim>
    [[nodiscard]] auto allocAsync(TStream const& stream, Vec<TDim, TSize> const& extent)
        -> Buf<typename TStream::Dev, TElem, TDim, TSize>
    {
        using TDev = typename TStream::Dev;
        auto const device = stream.getDev();
        if(!extent.allOf([](TSize v) { return v > static_cast<TSize>(0); }))
            throw UsageError("mem::buf::allocAsync: extents must be positive");
        auto const widthBytes = static_cast<std::size_t>(extent.back()) * sizeof(TElem);
        std::size_t pitchBytes = widthBytes;
        if constexpr(TDim::value >= 2)
        {
            if constexpr(std::is_same_v<TDev, dev::DevCpu>)
                pitchBytes = detail::roundUp(widthBytes, BufCpu<TElem, TDim, TSize>::rowAlignment);
            else
                pitchBytes = detail::roundUp(widthBytes, device.simDevice().memory().pitchAlignment());
        }
        auto const bytes = pitchBytes * detail::rowCount(extent);

        auto& pool = mempool::Pool::forDev(device);
        std::unique_ptr<mempool::BufLease> lease;
        if(mempool::detail::isCapturing(stream))
        {
            // Graph alloc node: the activation body holds the reservation,
            // so the block lives exactly as long as graph + execs do.
            auto block = pool.allocGraph(bytes);
            mempool::detail::streamRun(stream, [block] { block->activate(); });
            void* const payload = block->data();
            lease = std::make_unique<mempool::BufLease>(
                pool,
                std::move(block),
                payload,
                mempool::detail::captureKey(stream));
        }
        else
        {
            void* const payload = pool.allocOrdered(mempool::detail::streamKey(stream), bytes);
            // The implicit (destructor) release is pool-only: it may run
            // on any thread (a stream worker destroying a task closure
            // that held the last buffer reference), so it must not touch
            // the stream — no tail marker, no capture-state read. The
            // stream key and shared drain state captured here carry the
            // ordering instead (DESIGN.md §5.3, Pool::freeDeferred); the
            // alive guard covers buffers outliving a device-owned pool.
            lease = std::make_unique<mempool::BufLease>(
                pool,
                payload,
                pool.aliveGuard(),
                mempool::detail::streamKey(stream),
                mempool::detail::drainState(stream));
        }
        return Buf<TDev, TElem, TDim, TSize>(device, extent, pitchBytes, std::move(lease));
    }

    //! 1-d convenience overload taking the element count as a scalar.
    template<typename TElem, typename TSize, typename TStream>
    [[nodiscard]] auto allocAsync(TStream const& stream, TSize const extent)
        -> Buf<typename TStream::Dev, TElem, dim::DimInt<1>, TSize>
    {
        return allocAsync<TElem, TSize>(stream, Vec<dim::DimInt<1>, TSize>(extent));
    }

    //! Stream-ordered release of an allocAsync buffer (the `cudaFreeAsync`
    //! analog): the block returns to the pool ordered after the work
    //! previously enqueued on \p stream. Remaining buffer handles become
    //! dangling by contract, exactly like a CUDA pointer after
    //! cudaFreeAsync; a second freeAsync raises DoubleFreeError. On a
    //! capturing stream this records the graph free node of a
    //! graph-allocated buffer instead.
    template<typename TStream, typename TBuf>
    void freeAsync(TStream const& stream, TBuf const& buf)
    {
        auto* const lease = buf.pooledLease();
        if(lease == nullptr)
            throw mempool::PoolError(
                "mem::buf::freeAsync: buffer was not allocated with mem::buf::allocAsync");
        if(auto const block = lease->graph(); block != nullptr)
        {
            if(!mempool::detail::isCapturing(stream))
                throw mempool::PoolError(
                    "mem::buf::freeAsync: graph-allocated buffer freed outside stream capture");
            if(mempool::detail::captureKey(stream) != lease->sessionKey())
                throw mempool::PoolError(
                    "mem::buf::freeAsync: graph-allocated buffer freed into a different capture session "
                    "than the one that allocated it");
            lease->beginRelease();
            mempool::detail::streamRun(stream, [block] { block->retire(); });
            lease->dropGraph();
            return;
        }
        if(mempool::detail::isCapturing(stream))
            throw mempool::PoolError(
                "mem::buf::freeAsync: live-allocated buffer freed on a capturing stream (allocate inside "
                "the capture to get graph alloc/free nodes)");
        lease->beginRelease(); // claims the single release (DoubleFreeError otherwise)
        lease->pool().freeOrdered(
            mempool::detail::streamKey(stream),
            lease->data(),
            mempool::detail::recordFence(stream));
    }
} // namespace alpaka::mem::buf

namespace alpaka::mem::view
{
    //! Wraps caller-owned memory (e.g. a std::vector's storage) as a
    //! contiguous alpaka view so it can take part in copies.
    template<typename TDev, typename TElem, typename TDim, typename TSize>
    class ViewPlainPtr
    {
    public:
        using Elem = TElem;
        using Dim = TDim;
        using Size = TSize;
        using Dev = TDev;

        ViewPlainPtr(TElem* ptr, TDev const& device, Vec<TDim, TSize> const& extent) noexcept
            : ptr_(ptr)
            , dev_(device)
            , extent_(extent)
        {
        }

        [[nodiscard]] auto getDev() const noexcept -> TDev
        {
            return dev_;
        }
        [[nodiscard]] auto extent() const noexcept -> Vec<TDim, TSize> const&
        {
            return extent_;
        }
        [[nodiscard]] auto data() const noexcept -> TElem*
        {
            return ptr_;
        }
        [[nodiscard]] auto rowPitchBytes() const noexcept -> std::size_t
        {
            return static_cast<std::size_t>(extent_.back()) * sizeof(TElem);
        }

    private:
        TElem* ptr_;
        TDev dev_;
        Vec<TDim, TSize> extent_;
    };

    //! Any buffer- or view-like type copies can work on.
    template<typename T>
    concept ConceptView = requires(T const& v) {
        typename T::Elem;
        typename T::Dim;
        typename T::Size;
        typename T::Dev;
        {
            v.data()
        };
        {
            v.extent()
        };
        {
            v.rowPitchBytes()
        } -> std::convertible_to<std::size_t>;
    };

    //! Plain pointer to the first element of a view.
    template<ConceptView TView>
    [[nodiscard]] auto getPtrNative(TView const& view) noexcept
    {
        return view.data();
    }

    //! A rectangular window into another view/buffer: same storage, offset
    //! origin, smaller extent, parent strides. Enables partial copies and
    //! multi-device domain decomposition without owning new memory.
    template<ConceptView TParent>
    class ViewSubView
    {
    public:
        using Elem = typename TParent::Elem;
        using Dim = typename TParent::Dim;
        using Size = typename TParent::Size;
        using Dev = typename TParent::Dev;

        ViewSubView(TParent parent, Vec<Dim, Size> const& offset, Vec<Dim, Size> const& extent)
            : parent_(std::move(parent))
            , offset_(offset)
            , extent_(extent)
        {
            for(std::size_t d = 0; d < Dim::value; ++d)
                if(offset[d] + extent[d] > parent_.extent()[d])
                    throw UsageError("ViewSubView: window exceeds the parent extent");
        }

        [[nodiscard]] auto getDev() const noexcept -> Dev
        {
            return parent_.getDev();
        }
        [[nodiscard]] auto extent() const noexcept -> Vec<Dim, Size> const&
        {
            return extent_;
        }
        [[nodiscard]] auto offset() const noexcept -> Vec<Dim, Size> const&
        {
            return offset_;
        }
        [[nodiscard]] auto rowPitchBytes() const noexcept -> std::size_t
        {
            return parent_.rowPitchBytes();
        }

        //! Strides come from the *parent* layout (the window shares it).
        [[nodiscard]] auto byteStrides() const noexcept -> Vec<Dim, std::size_t>
        {
            return mem::detail::byteStrides(parent_.extent(), sizeof(Elem), parent_.rowPitchBytes());
        }

        //! First element of the window.
        [[nodiscard]] auto data() const noexcept -> Elem*
        {
            auto const strides = byteStrides();
            std::size_t offsetBytes = 0;
            for(std::size_t d = 0; d < Dim::value; ++d)
                offsetBytes += static_cast<std::size_t>(offset_[d]) * strides[d];
            return reinterpret_cast<Elem*>(reinterpret_cast<std::byte*>(parent_.data()) + offsetBytes);
        }

    private:
        TParent parent_;
        Vec<Dim, Size> offset_;
        Vec<Dim, Size> extent_;
    };

    //! Creates a sub-view window of \p parent at \p offset with \p extent.
    template<ConceptView TParent, typename TDim, typename TSize>
    [[nodiscard]] auto subView(TParent const& parent, Vec<TDim, TSize> const& offset, Vec<TDim, TSize> const& extent)
    {
        return ViewSubView<TParent>(parent, offset, extent);
    }

    namespace detail
    {
        //! A type-erased memory operation, enqueueable into any stream.
        struct MemTask
        {
            std::function<void()> work;

            void operator()() const
            {
                work();
            }
        };

        template<typename T>
        inline constexpr bool isCudaSimDev = std::is_same_v<T, dev::DevCudaSim>;

        //! Byte strides of a view: sub-views carry their parent's strides
        //! explicitly, plain buffers derive them from extent and pitch.
        template<view::ConceptView TView>
        [[nodiscard]] auto stridesOf(TView const& view) noexcept
        {
            if constexpr(requires { view.byteStrides(); })
                return view.byteStrides();
            else
                return mem::detail::byteStrides(
                    view.extent(),
                    sizeof(typename TView::Elem),
                    view.rowPitchBytes());
        }

        //! Performs the actual (synchronous) deep copy between two views.
        template<view::ConceptView TViewDst, view::ConceptView TViewSrc, typename TDim, typename TSize>
        void copyRows(TViewDst const& dst, TViewSrc const& src, Vec<TDim, TSize> const& extent)
        {
            using Elem = typename TViewDst::Elem;
            auto const widthBytes = static_cast<std::size_t>(extent.back()) * sizeof(Elem);
            auto const rows = mem::detail::rowCount(extent);
            auto const dstStrides = stridesOf(dst);
            auto const srcStrides = stridesOf(src);

            auto* const dstBase = reinterpret_cast<std::byte*>(dst.data());
            auto const* const srcBase = reinterpret_cast<std::byte const*>(src.data());

            using DevDst = typename TViewDst::Dev;
            using DevSrc = typename TViewSrc::Dev;

            for(std::size_t r = 0; r < rows; ++r)
            {
                auto* const dstRow = dstBase + mem::detail::rowByteOffset(r, extent, dstStrides);
                auto const* const srcRow = srcBase + mem::detail::rowByteOffset(r, extent, srcStrides);

                if constexpr(isCudaSimDev<DevDst> && isCudaSimDev<DevSrc>)
                {
                    auto& dstMem = dst.getDev().simDevice().memory();
                    auto& srcMem = src.getDev().simDevice().memory();
                    if(dst.getDev() == src.getDev())
                        dstMem.copyDtoD(dstRow, srcRow, widthBytes);
                    else
                    {
                        // Peer copy between two simulated devices: validate
                        // both sides, then move the bytes.
                        srcMem.validateRange(srcRow, widthBytes, "peer copy source");
                        dstMem.validateRange(dstRow, widthBytes, "peer copy destination");
                        std::memcpy(dstRow, srcRow, widthBytes);
                    }
                }
                else if constexpr(isCudaSimDev<DevDst>)
                    dst.getDev().simDevice().memory().copyHtoD(dstRow, srcRow, widthBytes);
                else if constexpr(isCudaSimDev<DevSrc>)
                    src.getDev().simDevice().memory().copyDtoH(dstRow, srcRow, widthBytes);
                else
                    std::memcpy(dstRow, srcRow, widthBytes);
            }
        }

        template<view::ConceptView TView, typename TDim, typename TSize>
        void setRows(TView const& view, int value, Vec<TDim, TSize> const& extent)
        {
            using Elem = typename TView::Elem;
            auto const widthBytes = static_cast<std::size_t>(extent.back()) * sizeof(Elem);
            auto const rows = mem::detail::rowCount(extent);
            auto const strides = stridesOf(view);
            auto* const base = reinterpret_cast<std::byte*>(view.data());

            for(std::size_t r = 0; r < rows; ++r)
            {
                auto* const row = base + mem::detail::rowByteOffset(r, extent, strides);
                if constexpr(isCudaSimDev<typename TView::Dev>)
                    view.getDev().simDevice().memory().fill(row, value, widthBytes);
                else
                    std::memset(row, value, widthBytes);
            }
        }

        template<typename TDim, typename TSize, view::ConceptView TView>
        void checkExtentFits(Vec<TDim, TSize> const& extent, TView const& view, char const* which)
        {
            for(std::size_t d = 0; d < TDim::value; ++d)
                if(extent[d] > view.extent()[d])
                    throw UsageError(
                        std::string("mem::view: copy/set extent exceeds the ") + which + " view extent");
        }
    } // namespace detail

    //! Builds the validated, type-erased deep-copy task for \p extent
    //! elements from \p src to \p dst. Shared by copy() below and by the
    //! graph subsystem's explicit copy nodes — validation and the view
    //! captures happen once, at build time.
    template<ConceptView TViewDst, ConceptView TViewSrc, typename TDim, typename TSize>
    [[nodiscard]] auto makeCopyTask(TViewDst dst, TViewSrc src, Vec<TDim, TSize> const& extent) -> detail::MemTask
    {
        static_assert(
            std::is_same_v<typename TViewDst::Elem, typename TViewSrc::Elem>,
            "copy requires matching element types");
        static_assert(
            std::is_same_v<typename TViewDst::Dim, TDim> && std::is_same_v<typename TViewSrc::Dim, TDim>,
            "copy requires matching dimensionality");
        detail::checkExtentFits(extent, dst, "destination");
        detail::checkExtentFits(extent, src, "source");

        // Views are captured by value: buffers are shared-ownership, so the
        // storage stays alive until the (possibly much later) execution.
        return detail::MemTask{[dst, src, extent] { detail::copyRows(dst, src, extent); }};
    }

    //! Builds the validated, type-erased fill task for \p extent elements
    //! of \p view (see makeCopyTask).
    template<ConceptView TView, typename TDim, typename TSize>
    [[nodiscard]] auto makeSetTask(TView view, int value, Vec<TDim, TSize> const& extent) -> detail::MemTask
    {
        detail::checkExtentFits(extent, view, "destination");
        return detail::MemTask{[view, value, extent] { detail::setRows(view, value, extent); }};
    }

    //! Enqueues a deep copy of \p extent elements from \p src to \p dst
    //! (paper Listing 4: `mem::view::copy(stream, devBuf, hostBuf,
    //! extents)`). Works for every host/accelerator direction.
    template<typename TStream, ConceptView TViewDst, ConceptView TViewSrc, typename TDim, typename TSize>
    void copy(TStream& stream, TViewDst dst, TViewSrc src, Vec<TDim, TSize> const& extent)
    {
        stream::enqueue(stream, makeCopyTask(std::move(dst), std::move(src), extent));
    }

    //! Enqueues a byte-wise fill of \p extent elements of \p view.
    template<typename TStream, ConceptView TView, typename TDim, typename TSize>
    void set(TStream& stream, TView view, int value, Vec<TDim, TSize> const& extent)
    {
        stream::enqueue(stream, makeSetTask(std::move(view), value, extent));
    }
} // namespace alpaka::mem::view

namespace alpaka::stream::trait
{
    template<>
    struct Enqueue<StreamCpuSync, mem::view::detail::MemTask>
    {
        static void enqueue(StreamCpuSync& stream, mem::view::detail::MemTask const& task)
        {
            stream.run(task.work);
        }
    };
    template<>
    struct Enqueue<StreamCpuAsync, mem::view::detail::MemTask>
    {
        static void enqueue(StreamCpuAsync& stream, mem::view::detail::MemTask task)
        {
            stream.push(std::move(task.work));
        }
    };
    template<bool TAsync>
    struct Enqueue<detail::StreamCudaSimBase<TAsync>, mem::view::detail::MemTask>
    {
        static void enqueue(detail::StreamCudaSimBase<TAsync>& stream, mem::view::detail::MemTask task)
        {
            stream.simStream().enqueue(std::move(task.work));
        }
    };
} // namespace alpaka::stream::trait
