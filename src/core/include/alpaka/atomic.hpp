/// \file Atomic operations usable from kernels (paper Sec. 3.2.3 footnote:
/// "Alpaka allows for atomic operations that serialize thread access to
/// global memory").
#pragma once

#include "alpaka/core/common.hpp"

#include <atomic>
#include <concepts>
#include <type_traits>

namespace alpaka::atomic
{
    //! Operation tags.
    namespace op
    {
        struct Add
        {
        };
        struct Sub
        {
        };
        struct Min
        {
        };
        struct Max
        {
        };
        struct Exch
        {
        };
        struct And
        {
        };
        struct Or
        {
        };
        struct Xor
        {
        };
        struct Cas
        {
        };
        //! CUDA-style wrapping increment: old >= limit ? 0 : old + 1.
        struct Inc
        {
        };
        //! CUDA-style wrapping decrement: old == 0 || old > limit ? limit : old - 1.
        struct Dec
        {
        };
    } // namespace op

    namespace trait
    {
        //! Customization point: atomic operation \p TOp on accelerator
        //! \p TAcc. The generic implementation uses std::atomic_ref, which
        //! is correct for every back-end of this repository because all of
        //! them execute in the host process's memory (single-threaded
        //! back-ends simply pay no contention).
        template<typename TOp, typename TAcc, typename T, typename = void>
        struct AtomicOp;

        template<typename TAcc, typename T>
        struct AtomicOp<op::Add, TAcc, T>
        {
            ALPAKA_FN_ACC static auto op(TAcc const&, T* addr, T value) -> T
            {
                return std::atomic_ref<T>(*addr).fetch_add(value, std::memory_order_relaxed);
            }
        };

        template<typename TAcc, typename T>
        struct AtomicOp<op::Sub, TAcc, T>
        {
            ALPAKA_FN_ACC static auto op(TAcc const&, T* addr, T value) -> T
            {
                return std::atomic_ref<T>(*addr).fetch_sub(value, std::memory_order_relaxed);
            }
        };

        template<typename TAcc, typename T>
        struct AtomicOp<op::Exch, TAcc, T>
        {
            ALPAKA_FN_ACC static auto op(TAcc const&, T* addr, T value) -> T
            {
                return std::atomic_ref<T>(*addr).exchange(value, std::memory_order_relaxed);
            }
        };

        namespace detail
        {
            //! Compare-and-swap loop for operations without a native
            //! fetch_* (min/max, and floating point variants).
            template<typename T, typename TCombine>
            ALPAKA_FN_ACC auto casLoop(T* addr, T value, TCombine combine) -> T
            {
                std::atomic_ref<T> ref(*addr);
                T expected = ref.load(std::memory_order_relaxed);
                for(;;)
                {
                    T const desired = combine(expected, value);
                    if(desired == expected)
                        return expected; // no change needed
                    if(ref.compare_exchange_weak(
                           expected,
                           desired,
                           std::memory_order_relaxed,
                           std::memory_order_relaxed))
                        return expected;
                }
            }
        } // namespace detail

        template<typename TAcc, typename T>
        struct AtomicOp<op::Min, TAcc, T>
        {
            ALPAKA_FN_ACC static auto op(TAcc const&, T* addr, T value) -> T
            {
                return detail::casLoop(addr, value, [](T a, T b) { return a < b ? a : b; });
            }
        };

        template<typename TAcc, typename T>
        struct AtomicOp<op::Max, TAcc, T>
        {
            ALPAKA_FN_ACC static auto op(TAcc const&, T* addr, T value) -> T
            {
                return detail::casLoop(addr, value, [](T a, T b) { return a > b ? a : b; });
            }
        };

        template<typename TAcc, std::unsigned_integral T>
        struct AtomicOp<op::Inc, TAcc, T>
        {
            ALPAKA_FN_ACC static auto op(TAcc const&, T* addr, T limit) -> T
            {
                return detail::casLoop(addr, limit, [](T old, T lim) { return old >= lim ? T{0} : old + 1; });
            }
        };

        template<typename TAcc, std::unsigned_integral T>
        struct AtomicOp<op::Dec, TAcc, T>
        {
            ALPAKA_FN_ACC static auto op(TAcc const&, T* addr, T limit) -> T
            {
                return detail::casLoop(
                    addr,
                    limit,
                    [](T old, T lim) { return (old == 0 || old > lim) ? lim : old - 1; });
            }
        };

        template<typename TAcc, std::integral T>
        struct AtomicOp<op::And, TAcc, T>
        {
            ALPAKA_FN_ACC static auto op(TAcc const&, T* addr, T value) -> T
            {
                return std::atomic_ref<T>(*addr).fetch_and(value, std::memory_order_relaxed);
            }
        };
        template<typename TAcc, std::integral T>
        struct AtomicOp<op::Or, TAcc, T>
        {
            ALPAKA_FN_ACC static auto op(TAcc const&, T* addr, T value) -> T
            {
                return std::atomic_ref<T>(*addr).fetch_or(value, std::memory_order_relaxed);
            }
        };
        template<typename TAcc, std::integral T>
        struct AtomicOp<op::Xor, TAcc, T>
        {
            ALPAKA_FN_ACC static auto op(TAcc const&, T* addr, T value) -> T
            {
                return std::atomic_ref<T>(*addr).fetch_xor(value, std::memory_order_relaxed);
            }
        };
    } // namespace trait

    //! Atomically applies \p TOp to \p *addr and returns the previous value.
    template<typename TOp, typename TAcc, typename T>
    ALPAKA_FN_ACC auto atomicOp(TAcc const& acc, T* addr, T value) -> T
    {
        return trait::AtomicOp<TOp, TAcc, T>::op(acc, addr, value);
    }

    //! Atomic compare-and-swap; returns the previous value.
    template<typename TAcc, typename T>
    ALPAKA_FN_ACC auto atomicCas(TAcc const&, T* addr, T compare, T value) -> T
    {
        std::atomic_ref<T>(*addr).compare_exchange_strong(
            compare,
            value,
            std::memory_order_relaxed,
            std::memory_order_relaxed);
        return compare;
    }

    //! \name Convenience wrappers
    //! @{
    template<typename TAcc, typename T>
    ALPAKA_FN_ACC auto atomicAdd(TAcc const& acc, T* addr, T value) -> T
    {
        return atomicOp<op::Add>(acc, addr, value);
    }
    template<typename TAcc, typename T>
    ALPAKA_FN_ACC auto atomicSub(TAcc const& acc, T* addr, T value) -> T
    {
        return atomicOp<op::Sub>(acc, addr, value);
    }
    template<typename TAcc, typename T>
    ALPAKA_FN_ACC auto atomicMin(TAcc const& acc, T* addr, T value) -> T
    {
        return atomicOp<op::Min>(acc, addr, value);
    }
    template<typename TAcc, typename T>
    ALPAKA_FN_ACC auto atomicMax(TAcc const& acc, T* addr, T value) -> T
    {
        return atomicOp<op::Max>(acc, addr, value);
    }
    template<typename TAcc, typename T>
    ALPAKA_FN_ACC auto atomicExch(TAcc const& acc, T* addr, T value) -> T
    {
        return atomicOp<op::Exch>(acc, addr, value);
    }
    //! @}
} // namespace alpaka::atomic
