/// \file Kernel executors (paper Sec. 3.4.6, Listing 5):
/// `exec::create<Acc>(workDiv, kernel, args...)` builds an execution task
/// binding accelerator, work division, kernel and arguments;
/// `stream::enqueue(stream, exec)` runs it.
#pragma once

#include "alpaka/acc/acc_cpu.hpp"
#include "alpaka/acc/acc_cpu_extra.hpp"
#include "alpaka/acc/acc_cudasim.hpp"
#include "alpaka/acc/arena_cache.hpp"
#include "alpaka/block.hpp"
#include "alpaka/core/error.hpp"
#include "alpaka/core/map_idx.hpp"
#include "alpaka/dev.hpp"
#include "alpaka/kernel.hpp"
#include "alpaka/meta/nd_loop.hpp"
#include "alpaka/stream.hpp"
#include "alpaka/workdiv_policy.hpp"

#include "fiber/fiber.hpp"
#include "gpusim/device.hpp"
#include "threadpool/team_pool.hpp"
#include "threadpool/thread_pool.hpp"

#include <omp.h>

#include <barrier>
#include <exception>
#include <memory>
#include <mutex>
#include <tuple>

namespace alpaka::exec
{
    //! The execution task: accelerator type + work division + kernel
    //! function object + bound arguments. A plain value; enqueue it into a
    //! stream of a matching device to run it.
    template<typename TAcc, typename TKernel, typename... TArgs>
    class TaskKernel
    {
    public:
        using Acc = TAcc;
        using Dim = typename TAcc::Dim;
        using Size = typename TAcc::Size;

        TaskKernel(workdiv::WorkDivMembers<Dim, Size> workDiv, TKernel kernel, TArgs... args)
            : workDiv_(std::move(workDiv))
            , kernel_(std::move(kernel))
            , args_(std::move(args)...)
        {
        }

        [[nodiscard]] auto workDiv() const noexcept -> workdiv::WorkDivMembers<Dim, Size> const&
        {
            return workDiv_;
        }
        [[nodiscard]] auto kernel() const noexcept -> TKernel const&
        {
            return kernel_;
        }
        [[nodiscard]] auto args() const noexcept -> std::tuple<TArgs...> const&
        {
            return args_;
        }

        //! Dynamic shared memory requirement for this launch.
        [[nodiscard]] auto dynSharedMemBytes() const -> std::size_t
        {
            return std::apply(
                [&](TArgs const&... unpacked)
                {
                    return kernel::trait::BlockSharedMemDynSizeBytes<TKernel>::get(
                        kernel_,
                        workDiv_.blockThreadExtent(),
                        workDiv_.threadElemExtent(),
                        unpacked...);
                },
                args_);
        }

        //! Invokes the kernel with \p acc and the bound arguments.
        void invoke(TAcc const& acc) const
        {
            std::apply([&](TArgs const&... unpacked) { kernel_(acc, unpacked...); }, args_);
        }

    private:
        workdiv::WorkDivMembers<Dim, Size> workDiv_;
        TKernel kernel_;
        std::tuple<TArgs...> args_;
    };

    //! Creates an execution task (paper Listing 5:
    //! `exec::create<Acc>(workDiv, kernel, args...)`).
    template<typename TAcc, typename TWorkDiv, typename TKernel, typename... TArgs>
    [[nodiscard]] auto create(TWorkDiv const& workDiv, TKernel const& kernel, TArgs&&... args)
    {
        using Dim = typename TAcc::Dim;
        using Size = typename TAcc::Size;
        workdiv::WorkDivMembers<Dim, Size> const wd(
            workdiv::getWorkDiv<Grid, Blocks>(workDiv),
            workdiv::getWorkDiv<Block, Threads>(workDiv),
            workdiv::getWorkDiv<Thread, Elems>(workDiv));
        return TaskKernel<TAcc, TKernel, std::decay_t<TArgs>...>(wd, kernel, std::forward<TArgs>(args)...);
    }

    namespace detail
    {
        //! First-error capture shared by the multi-threaded runners.
        class ErrorSlot
        {
        public:
            void captureCurrent() noexcept
            {
                std::scoped_lock lock(mutex_);
                if(error_ == nullptr)
                    error_ = std::current_exception();
            }
            void rethrowIfSet()
            {
                if(error_ != nullptr)
                    std::rethrow_exception(error_);
            }

        private:
            std::mutex mutex_;
            std::exception_ptr error_{};
        };

        //! Per-accelerator grid execution on the host. Specializations
        //! implement the mapping of the abstract hierarchy onto the
        //! parallelism model (paper Sec. 3.3).
        template<typename TAcc>
        struct KernelRunner;

        //! Shared per-run block state for the CPU runners. The arena comes
        //! from the calling thread's SharedArenaCache — reused across
        //! launches, so a steady-state launch allocates nothing (see
        //! arena_cache.hpp for the reuse-safety argument). Its contents are
        //! undefined (CUDA semantics); zeroing multiple megabytes per
        //! launch would itself violate the zero-overhead property (Fig. 5).
        template<typename TDim, typename TSize>
        struct CpuRunContext
        {
            template<typename TTask>
            CpuRunContext(dev::DevCpu const& dev, TTask const& task, std::size_t capacityBytes)
                : shared{acc::SharedArenaCache::get(capacityBytes), capacityBytes, task.dynSharedMemBytes()}
            {
                (void) dev;
                if(shared.dynBytes > capacityBytes)
                    throw SharedMemOverflowError(
                        "dynamic shared memory request of " + std::to_string(shared.dynBytes)
                        + " B exceeds the accelerator's " + std::to_string(capacityBytes) + " B");
            }

            acc::detail::SharedBlock shared;
        };

        //! Decodes linear block index \p b into grid coordinates. Part of
        //! the back-end extension surface (out-of-tree runners use it);
        //! in-tree runners hoist a core::IdxMapper out of the block loop
        //! instead so the extent products are computed once per launch.
        template<typename TDim, typename TSize>
        [[nodiscard]] auto blockIdxFromLinear(Vec<TDim, TSize> const& gridExtent, TSize b) -> Vec<TDim, TSize>
        {
            return core::IdxMapper<TDim, TSize>(gridExtent)(b);
        }

        // ------------------------------------------------------------------
        //! Sequential back-end: a double loop over blocks (threads per block
        //! fixed to one by validation).
        template<typename TDim, typename TSize>
        struct KernelRunner<acc::AccCpuSerial<TDim, TSize>>
        {
            using Acc = acc::AccCpuSerial<TDim, TSize>;

            template<typename TKernel, typename... TArgs>
            static void run(dev::DevCpu const& dev, TaskKernel<Acc, TKernel, TArgs...> const& task)
            {
                auto const& wd = task.workDiv();
                workdiv::requireValidWorkDiv<Acc>(dev, wd);
                auto const props = acc::getAccDevProps<Acc>(dev);
                CpuRunContext<TDim, TSize> ctx(dev, task, props.sharedMemSizeBytes);

                meta::ndLoop(
                    wd.gridBlockExtent(),
                    [&](Vec<TDim, TSize> const& blockIdx)
                    {
                        Acc const acc(wd, blockIdx, Vec<TDim, TSize>::zeros(), ctx.shared);
                        task.invoke(acc);
                    });
            }
        };

        // ------------------------------------------------------------------
        //! C++ thread back-end: one OS thread per alpaka thread; every
        //! thread walks the block list; a std::barrier separates blocks and
        //! implements block synchronization. The team threads come from the
        //! persistent TeamPool instead of being spawned per launch.
        template<typename TDim, typename TSize>
        struct KernelRunner<acc::AccCpuThreads<TDim, TSize>>
        {
            using Acc = acc::AccCpuThreads<TDim, TSize>;

            template<typename TKernel, typename... TArgs>
            static void run(dev::DevCpu const& dev, TaskKernel<Acc, TKernel, TArgs...> const& task)
            {
                auto const& wd = task.workDiv();
                workdiv::requireValidWorkDiv<Acc>(dev, wd);
                auto const props = acc::getAccDevProps<Acc>(dev);
                CpuRunContext<TDim, TSize> ctx(dev, task, props.sharedMemSizeBytes);

                auto const threadCount = static_cast<std::size_t>(wd.blockThreadExtent().prod());
                auto const blockCount = wd.gridBlockExtent().prod();
                core::IdxMapper<TDim, TSize> const threadMap(wd.blockThreadExtent());
                core::IdxMapper<TDim, TSize> const blockMap(wd.gridBlockExtent());
                std::barrier barrier(static_cast<std::ptrdiff_t>(threadCount));
                ErrorSlot errors;

                threadpool::TeamPool::global().runTeam(
                    threadCount,
                    [&](std::size_t const t)
                    {
                        auto const threadIdx = threadMap(static_cast<TSize>(t));
                        try
                        {
                            for(TSize b = 0; b < blockCount; ++b)
                            {
                                Acc const acc(wd, blockMap(b), threadIdx, ctx.shared, &barrier);
                                task.invoke(acc);
                                // Block boundary: no thread enters block
                                // b+1 (and reuses the shared arena) while a
                                // sibling still works on block b.
                                barrier.arrive_and_wait();
                            }
                        }
                        catch(...)
                        {
                            errors.captureCurrent();
                            // Withdraw from all future barrier phases so
                            // the siblings do not deadlock waiting for this
                            // thread.
                            barrier.arrive_and_drop();
                        }
                    });

                errors.rethrowIfSet();
            }
        };

        // ------------------------------------------------------------------
        //! Fiber back-end: the threads of a block are cooperative fibers on
        //! the calling OS thread; divergence at barriers is detected.
        template<typename TDim, typename TSize>
        struct KernelRunner<acc::AccCpuFibers<TDim, TSize>>
        {
            using Acc = acc::AccCpuFibers<TDim, TSize>;

            template<typename TKernel, typename... TArgs>
            static void run(dev::DevCpu const& dev, TaskKernel<Acc, TKernel, TArgs...> const& task)
            {
                auto const& wd = task.workDiv();
                workdiv::requireValidWorkDiv<Acc>(dev, wd);
                auto const props = acc::getAccDevProps<Acc>(dev);
                CpuRunContext<TDim, TSize> ctx(dev, task, props.sharedMemSizeBytes);

                auto const threadCount = static_cast<std::size_t>(wd.blockThreadExtent().prod());
                auto const blockCount = wd.gridBlockExtent().prod();
                core::IdxMapper<TDim, TSize> const threadMap(wd.blockThreadExtent());
                core::IdxMapper<TDim, TSize> const blockMap(wd.gridBlockExtent());
                // One persistent scheduler per launcher thread: its fiber
                // stacks are pooled across launches, so steady-state
                // launches reuse them instead of mmap-ing fresh stacks.
                thread_local fiber::Scheduler scheduler;
                fiber::Barrier barrier(threadCount);

                try
                {
                    scheduler.run(
                        threadCount,
                        [&](std::size_t const t)
                        {
                            auto const threadIdx = threadMap(static_cast<TSize>(t));
                            for(TSize b = 0; b < blockCount; ++b)
                            {
                                Acc const acc(wd, blockMap(b), threadIdx, ctx.shared, &barrier);
                                task.invoke(acc);
                                barrier.arriveAndWait();
                            }
                        });
                }
                catch(fiber::BarrierDivergenceError const& e)
                {
                    throw KernelExecutionError(
                        std::string("AccCpuFibers: barrier divergence inside kernel: ") + e.what());
                }
            }
        };

        // ------------------------------------------------------------------
        //! OpenMP 2 blocks back-end: `#pragma omp parallel for` over blocks,
        //! one alpaka thread per block (paper Sec. 4: the "OpenMP 2
        //! back-end" of the evaluation).
        template<typename TDim, typename TSize>
        struct KernelRunner<acc::AccCpuOmp2Blocks<TDim, TSize>>
        {
            using Acc = acc::AccCpuOmp2Blocks<TDim, TSize>;

            template<typename TKernel, typename... TArgs>
            static void run(dev::DevCpu const& dev, TaskKernel<Acc, TKernel, TArgs...> const& task)
            {
                auto const& wd = task.workDiv();
                workdiv::requireValidWorkDiv<Acc>(dev, wd);
                auto const props = acc::getAccDevProps<Acc>(dev);
                auto const capacity = props.sharedMemSizeBytes;
                auto const dynBytes = task.dynSharedMemBytes();
                if(dynBytes > capacity)
                    throw SharedMemOverflowError("AccCpuOmp2Blocks: dynamic shared memory exceeds capacity");

                auto const blockCount = static_cast<long long>(wd.gridBlockExtent().prod());
                core::IdxMapper<TDim, TSize> const blockMap(wd.gridBlockExtent());
                ErrorSlot errors;

#pragma omp parallel default(shared)
                {
                    // Blocks run concurrently across the team, so each
                    // OpenMP thread uses its own cached per-thread arena
                    // (OpenMP team threads persist across parallel regions,
                    // so steady-state launches allocate nothing).
                    acc::detail::SharedBlock const shared{acc::SharedArenaCache::get(capacity), capacity, dynBytes};
#pragma omp for schedule(static)
                    for(long long b = 0; b < blockCount; ++b)
                    {
                        try
                        {
                            Acc const acc(wd, blockMap(static_cast<TSize>(b)), Vec<TDim, TSize>::zeros(), shared);
                            task.invoke(acc);
                        }
                        catch(...)
                        {
                            errors.captureCurrent();
                        }
                    }
                }

                errors.rethrowIfSet();
            }
        };

        // ------------------------------------------------------------------
        //! OpenMP 2 threads back-end: the block's threads form an OpenMP
        //! team; blocks run one after another inside the region.
        template<typename TDim, typename TSize>
        struct KernelRunner<acc::AccCpuOmp2Threads<TDim, TSize>>
        {
            using Acc = acc::AccCpuOmp2Threads<TDim, TSize>;

            template<typename TKernel, typename... TArgs>
            static void run(dev::DevCpu const& dev, TaskKernel<Acc, TKernel, TArgs...> const& task)
            {
                auto const& wd = task.workDiv();
                workdiv::requireValidWorkDiv<Acc>(dev, wd);
                auto const props = acc::getAccDevProps<Acc>(dev);
                CpuRunContext<TDim, TSize> ctx(dev, task, props.sharedMemSizeBytes);

                auto const threadCount = static_cast<int>(wd.blockThreadExtent().prod());
                auto const blockCount = wd.gridBlockExtent().prod();
                core::IdxMapper<TDim, TSize> const threadMap(wd.blockThreadExtent());
                core::IdxMapper<TDim, TSize> const blockMap(wd.gridBlockExtent());
                std::barrier barrier(threadCount);
                ErrorSlot errors;
                bool teamSizeOk = true;

#pragma omp parallel num_threads(threadCount) default(shared)
                {
                    if(omp_get_num_threads() != threadCount)
                    {
#pragma omp single
                        teamSizeOk = false;
                    }
                    else
                    {
                        auto const t = static_cast<TSize>(omp_get_thread_num());
                        auto const threadIdx = threadMap(t);
                        try
                        {
                            for(TSize b = 0; b < blockCount; ++b)
                            {
                                Acc const acc(wd, blockMap(b), threadIdx, ctx.shared, &barrier);
                                task.invoke(acc);
                                barrier.arrive_and_wait();
                            }
                        }
                        catch(...)
                        {
                            errors.captureCurrent();
                            barrier.arrive_and_drop();
                        }
                    }
                }

                if(!teamSizeOk)
                    throw KernelExecutionError(
                        "AccCpuOmp2Threads: OpenMP delivered a smaller team than requested ("
                        + std::to_string(threadCount) + " threads needed)");
                errors.rethrowIfSet();
            }
        };
        // ------------------------------------------------------------------
        //! Task-pool back-end: blocks are pool tasks, scheduled dynamically
        //! (the TBB-style future-work back-end of the paper).
        template<typename TDim, typename TSize>
        struct KernelRunner<acc::AccCpuTaskBlocks<TDim, TSize>>
        {
            using Acc = acc::AccCpuTaskBlocks<TDim, TSize>;

            template<typename TKernel, typename... TArgs>
            static void run(dev::DevCpu const& dev, TaskKernel<Acc, TKernel, TArgs...> const& task)
            {
                auto const& wd = task.workDiv();
                workdiv::requireValidWorkDiv<Acc>(dev, wd);
                auto const props = acc::getAccDevProps<Acc>(dev);
                auto const capacity = props.sharedMemSizeBytes;
                auto const dynBytes = task.dynSharedMemBytes();
                if(dynBytes > capacity)
                    throw SharedMemOverflowError("AccCpuTaskBlocks: dynamic shared memory exceeds capacity");

                auto& pool = threadpool::ThreadPool::global();
                auto const blockCount = static_cast<std::size_t>(wd.gridBlockExtent().prod());
                core::IdxMapper<TDim, TSize> const blockMap(wd.gridBlockExtent());
                // The statically-bound fast path: one trampoline call per
                // claimed chunk, no std::function, and every participant
                // (pool worker or helping submitter) draws its reusable
                // arena from its own thread's cache. Launches arriving from
                // concurrent streams (each StreamCpuAsync submits from its
                // own queue worker) publish into distinct slots of the
                // pool's job ring and overlap; workers steal across the
                // open slots (DESIGN.md §3.5), and a kernel exception stays
                // confined to the slot of its submitting stream.
                pool.parallelForTemplated(
                    blockCount,
                    [&](std::size_t const b)
                    {
                        acc::detail::SharedBlock const shared{acc::SharedArenaCache::get(capacity), capacity, dynBytes};
                        Acc const acc(wd, blockMap(static_cast<TSize>(b)), Vec<TDim, TSize>::zeros(), shared);
                        task.invoke(acc);
                    });
            }
        };

        // ------------------------------------------------------------------
        //! OpenMP 4.x target-offload back-end. Without a configured offload
        //! device the target region executes on the host (the standard's
        //! fallback), which is the mode exercised here; the mapping of the
        //! block level onto `teams distribute` is identical either way.
        template<typename TDim, typename TSize>
        struct KernelRunner<acc::AccCpuOmp4<TDim, TSize>>
        {
            using Acc = acc::AccCpuOmp4<TDim, TSize>;
            // League size cap: bounds the cached arena slab at
            // maxTeams * 4 MB per launcher thread (host-fallback teams
            // beyond the hardware concurrency add nothing anyway).
            static constexpr int maxTeams = 8;

            template<typename TKernel, typename... TArgs>
            static void run(dev::DevCpu const& dev, TaskKernel<Acc, TKernel, TArgs...> const& task)
            {
                auto const& wd = task.workDiv();
                workdiv::requireValidWorkDiv<Acc>(dev, wd);
                auto const props = acc::getAccDevProps<Acc>(dev);
                auto const capacity = props.sharedMemSizeBytes;
                auto const dynBytes = task.dynSharedMemBytes();
                if(dynBytes > capacity)
                    throw SharedMemOverflowError("AccCpuOmp4: dynamic shared memory exceeds capacity");

                auto const blockCount = static_cast<long long>(wd.gridBlockExtent().prod());
                // Target regions may not touch thread_local state, so the
                // launcher draws one slab for the whole league from its
                // cache up front and the teams slice it by team number.
                // Steady-state launches therefore still allocate nothing.
                auto* const arenaSlab = acc::SharedArenaCache::get(capacity * maxTeams);
                ErrorSlot errors;

#pragma omp target teams distribute num_teams(maxTeams)
                for(long long b = 0; b < blockCount; ++b)
                {
                    try
                    {
                        auto const team = static_cast<std::size_t>(omp_get_team_num()) % maxTeams;
                        acc::detail::SharedBlock const shared{arenaSlab + team * capacity, capacity, dynBytes};
                        // Region-private decoder: local class objects from
                        // the enclosing scope are not mappable, so the
                        // mapper is rebuilt here (a handful of multiplies;
                        // this fallback back-end is not a hot path).
                        core::IdxMapper<TDim, TSize> const blockMap(wd.gridBlockExtent());
                        Acc const acc(wd, blockMap(static_cast<TSize>(b)), Vec<TDim, TSize>::zeros(), shared);
                        task.invoke(acc);
                    }
                    catch(...)
                    {
                        errors.captureCurrent();
                    }
                }

                errors.rethrowIfSet();
            }
        };
        // ------------------------------------------------------------------
        //! Pre-resolved, type-erased replay form of a kernel launch: the
        //! work division is validated, the shared-memory demand checked,
        //! the index decoder built and the dispatch trampoline bound ONCE;
        //! the returned closures can then be run any number of times (by a
        //! graph replay, DESIGN.md §4) without redoing any of it.
        //!
        //! Two shapes:
        //!  * `whole` — runs the complete launch through the back-end's
        //!    KernelRunner; set for every accelerator.
        //!  * `range` — runs the half-open block range [begin, end) of
        //!    `chunkCount` blocks directly in the calling thread; set only
        //!    for back-ends whose blocks are independent pool tasks
        //!    (AccCpuTaskBlocks). A replay engine executing nodes on
        //!    ThreadPool workers MUST use `range` when present: the whole-
        //!    launch form would submit into the pool from a pool worker
        //!    (rejected as re-entrant), and chunked execution is what lets
        //!    one fat kernel node spread over the workers.
        struct LoweredKernel
        {
            std::size_t chunkCount = 0; //!< >0 iff range is usable
            std::function<void(std::size_t, std::size_t)> range;
            std::function<void()> whole;
        };

        //! Generic lowering: validate now, replay through the KernelRunner.
        template<typename TAcc, typename TKernel, typename... TArgs>
        [[nodiscard]] auto lowerKernel(dev::DevCpu const& dev, TaskKernel<TAcc, TKernel, TArgs...> task)
            -> LoweredKernel
        {
            workdiv::requireValidWorkDiv<TAcc>(dev, task.workDiv());
            (void) task.dynSharedMemBytes(); // resolve the trait once; overflow throws at run
            LoweredKernel lowered;
            lowered.whole = [dev, task = std::move(task)] { KernelRunner<TAcc>::run(dev, task); };
            return lowered;
        }

        //! AccCpuTaskBlocks lowering: blocks are independent, so the node
        //! exposes them as a chunkable range. Everything per-launch
        //! (validation, props lookup, shared-memory check, IdxMapper) is
        //! resolved here; a chunk costs only arena lookup + the block loop.
        template<typename TDim, typename TSize, typename TKernel, typename... TArgs>
        [[nodiscard]] auto lowerKernel(
            dev::DevCpu const& dev,
            TaskKernel<acc::AccCpuTaskBlocks<TDim, TSize>, TKernel, TArgs...> task) -> LoweredKernel
        {
            using Acc = acc::AccCpuTaskBlocks<TDim, TSize>;
            workdiv::requireValidWorkDiv<Acc>(dev, task.workDiv());
            auto const props = acc::getAccDevProps<Acc>(dev);
            auto const capacity = props.sharedMemSizeBytes;
            auto const dynBytes = task.dynSharedMemBytes();
            if(dynBytes > capacity)
                throw SharedMemOverflowError("AccCpuTaskBlocks: dynamic shared memory exceeds capacity");

            auto const shared = std::make_shared<TaskKernel<Acc, TKernel, TArgs...> const>(std::move(task));
            core::IdxMapper<TDim, TSize> const blockMap(shared->workDiv().gridBlockExtent());
            LoweredKernel lowered;
            lowered.chunkCount = static_cast<std::size_t>(shared->workDiv().gridBlockExtent().prod());
            lowered.range = [shared, blockMap, capacity, dynBytes](std::size_t begin, std::size_t end)
            {
                auto const& wd = shared->workDiv();
                for(std::size_t b = begin; b < end; ++b)
                {
                    acc::detail::SharedBlock const block{acc::SharedArenaCache::get(capacity), capacity, dynBytes};
                    Acc const acc(wd, blockMap(static_cast<TSize>(b)), Vec<TDim, TSize>::zeros(), block);
                    shared->invoke(acc);
                }
            };
            lowered.whole = [range = lowered.range, count = lowered.chunkCount] { range(0, count); };
            return lowered;
        }

        //! CudaSim lowering: the launch is translated to a simulator grid
        //! once; replay re-runs the grid on the device (one chunk — the
        //! simulator serializes grids per device anyway).
        template<typename TDim, typename TSize, typename TKernel, typename... TArgs>
        [[nodiscard]] auto lowerKernel(
            dev::DevCudaSim const& dev,
            TaskKernel<acc::AccGpuCudaSim<TDim, TSize>, TKernel, TArgs...> task) -> LoweredKernel
        {
            using Acc = acc::AccGpuCudaSim<TDim, TSize>;
            workdiv::requireValidWorkDiv<Acc>(dev, task.workDiv());
            auto const& spec = dev.spec();
            auto const dynBytes = task.dynSharedMemBytes();
            if(dynBytes > spec.sharedMemPerBlock)
                throw SharedMemOverflowError(
                    "AccGpuCudaSim: kernel requests " + std::to_string(dynBytes)
                    + " B dynamic shared memory but the device provides "
                    + std::to_string(spec.sharedMemPerBlock) + " B per block");

            gpusim::GridSpec grid;
            grid.grid = acc::detail::vecToDim3(task.workDiv().gridBlockExtent());
            grid.block = acc::detail::vecToDim3(task.workDiv().blockThreadExtent());
            grid.sharedMemBytes = spec.sharedMemPerBlock;

            auto const shared = std::make_shared<TaskKernel<Acc, TKernel, TArgs...> const>(std::move(task));
            auto const capacity = spec.sharedMemPerBlock;
            gpusim::KernelBody body = [shared, dynBytes, capacity](gpusim::ThreadCtx& ctx)
            {
                acc::detail::SharedBlock const block{ctx.sharedMem(), capacity, dynBytes};
                Acc const acc(shared->workDiv(), block, ctx);
                shared->invoke(acc);
            };
            LoweredKernel lowered;
            lowered.whole = [dev, grid, body = std::move(body)] { dev.simDevice().runGrid(grid, body); };
            return lowered;
        }

        //! Describes a kernel launch to a capture sink in its lowered form.
        template<typename TDev, typename TTask>
        void captureKernel(gpusim::CaptureSink& sink, TDev const& dev, TTask task)
        {
            auto lowered = lowerKernel(dev, std::move(task));
            if(lowered.chunkCount > 0)
                sink.kernelChunks(lowered.chunkCount, std::move(lowered.range));
            else
                sink.task(std::move(lowered.whole), /*always=*/false);
        }
    } // namespace detail
} // namespace alpaka::exec

namespace alpaka::stream::trait
{
    //! Kernel task into the synchronous CPU stream: runs inline.
    template<typename TAcc, typename TKernel, typename... TArgs>
        requires(std::is_same_v<typename TAcc::Dev, dev::DevCpu>)
    struct Enqueue<StreamCpuSync, exec::TaskKernel<TAcc, TKernel, TArgs...>>
    {
        static void enqueue(StreamCpuSync& stream, exec::TaskKernel<TAcc, TKernel, TArgs...> const& task)
        {
            if(auto const& sink = stream.captureSink())
            {
                exec::detail::captureKernel(*sink, stream.getDev(), task);
                return;
            }
            exec::detail::KernelRunner<TAcc>::run(stream.getDev(), task);
        }
    };

    //! Kernel task into the asynchronous CPU stream: runs on the worker.
    template<typename TAcc, typename TKernel, typename... TArgs>
        requires(std::is_same_v<typename TAcc::Dev, dev::DevCpu>)
    struct Enqueue<StreamCpuAsync, exec::TaskKernel<TAcc, TKernel, TArgs...>>
    {
        static void enqueue(StreamCpuAsync& stream, exec::TaskKernel<TAcc, TKernel, TArgs...> task)
        {
            auto const dev = stream.getDev();
            if(auto const& sink = stream.captureSink())
            {
                exec::detail::captureKernel(*sink, dev, std::move(task));
                return;
            }
            stream.push([dev, task = std::move(task)] { exec::detail::KernelRunner<TAcc>::run(dev, task); });
        }
    };

    //! Kernel task into a CudaSim stream: translated into a simulator grid
    //! launch. The task is stored in shared ownership so the kernel body
    //! outlives the enqueue call.
    template<bool TAsync, typename TDim, typename TSize, typename TKernel, typename... TArgs>
    struct Enqueue<
        detail::StreamCudaSimBase<TAsync>,
        exec::TaskKernel<acc::AccGpuCudaSim<TDim, TSize>, TKernel, TArgs...>>
    {
        using Acc = acc::AccGpuCudaSim<TDim, TSize>;

        static void enqueue(
            detail::StreamCudaSimBase<TAsync>& stream,
            exec::TaskKernel<Acc, TKernel, TArgs...> task)
        {
            auto const dev = stream.getDev();
            workdiv::requireValidWorkDiv<Acc>(dev, task.workDiv());

            auto const& spec = dev.spec();
            auto const dynBytes = task.dynSharedMemBytes();
            if(dynBytes > spec.sharedMemPerBlock)
                throw SharedMemOverflowError(
                    "AccGpuCudaSim: kernel requests " + std::to_string(dynBytes)
                    + " B dynamic shared memory but the device provides "
                    + std::to_string(spec.sharedMemPerBlock) + " B per block");

            gpusim::GridSpec grid;
            grid.grid = acc::detail::vecToDim3(task.workDiv().gridBlockExtent());
            grid.block = acc::detail::vecToDim3(task.workDiv().blockThreadExtent());
            // Request the full per-block shared memory: the dynamic region
            // occupies the front, statically allocated vars the rest.
            grid.sharedMemBytes = spec.sharedMemPerBlock;

            auto const sharedTask
                = std::make_shared<exec::TaskKernel<Acc, TKernel, TArgs...>>(std::move(task));
            auto const capacity = spec.sharedMemPerBlock;
            gpusim::KernelBody body = [sharedTask, dynBytes, capacity](gpusim::ThreadCtx& ctx)
            {
                acc::detail::SharedBlock const shared{ctx.sharedMem(), capacity, dynBytes};
                Acc const acc(sharedTask->workDiv(), shared, ctx);
                sharedTask->invoke(acc);
            };
            stream.simStream().launch(grid, std::move(body));
        }
    };
} // namespace alpaka::stream::trait
