/// \file Math functions usable from kernels.
///
/// Every function takes the accelerator as its first argument and dispatches
/// through a trait, so back-ends can substitute device-specific
/// implementations (on real CUDA these map to the device intrinsics; here
/// all back-ends share the host libm). Kernels that use alpaka::math are
/// therefore portable across back-ends by construction.
#pragma once

#include "alpaka/core/common.hpp"

#include <algorithm>
#include <cmath>

namespace alpaka::math
{
    namespace trait
    {
        // One trait per function keeps each independently specializable per
        // accelerator, which is the extension mechanism the paper claims
        // ("specialization of its internals for optimization").

        template<typename TAcc, typename T, typename = void>
        struct Sqrt
        {
            ALPAKA_FN_ACC static auto apply(T x)
            {
                return std::sqrt(x);
            }
        };
        template<typename TAcc, typename T, typename = void>
        struct Rsqrt
        {
            ALPAKA_FN_ACC static auto apply(T x)
            {
                return T(1) / std::sqrt(x);
            }
        };
        template<typename TAcc, typename T, typename = void>
        struct Sin
        {
            ALPAKA_FN_ACC static auto apply(T x)
            {
                return std::sin(x);
            }
        };
        template<typename TAcc, typename T, typename = void>
        struct Cos
        {
            ALPAKA_FN_ACC static auto apply(T x)
            {
                return std::cos(x);
            }
        };
        template<typename TAcc, typename T, typename = void>
        struct Tan
        {
            ALPAKA_FN_ACC static auto apply(T x)
            {
                return std::tan(x);
            }
        };
        template<typename TAcc, typename T, typename = void>
        struct Exp
        {
            ALPAKA_FN_ACC static auto apply(T x)
            {
                return std::exp(x);
            }
        };
        template<typename TAcc, typename T, typename = void>
        struct Log
        {
            ALPAKA_FN_ACC static auto apply(T x)
            {
                return std::log(x);
            }
        };
        template<typename TAcc, typename T, typename = void>
        struct Abs
        {
            ALPAKA_FN_ACC static auto apply(T x)
            {
                return std::abs(x);
            }
        };
        template<typename TAcc, typename T, typename = void>
        struct Floor
        {
            ALPAKA_FN_ACC static auto apply(T x)
            {
                return std::floor(x);
            }
        };
        template<typename TAcc, typename T, typename = void>
        struct Ceil
        {
            ALPAKA_FN_ACC static auto apply(T x)
            {
                return std::ceil(x);
            }
        };
        template<typename TAcc, typename T, typename = void>
        struct Erf
        {
            ALPAKA_FN_ACC static auto apply(T x)
            {
                return std::erf(x);
            }
        };
        template<typename TAcc, typename T, typename = void>
        struct Pow
        {
            ALPAKA_FN_ACC static auto apply(T base, T exponent)
            {
                return std::pow(base, exponent);
            }
        };
        template<typename TAcc, typename T, typename = void>
        struct Atan2
        {
            ALPAKA_FN_ACC static auto apply(T y, T x)
            {
                return std::atan2(y, x);
            }
        };
        template<typename TAcc, typename T, typename = void>
        struct Fma
        {
            ALPAKA_FN_ACC static auto apply(T a, T b, T c)
            {
                return std::fma(a, b, c);
            }
        };
        template<typename TAcc, typename T, typename = void>
        struct Min
        {
            ALPAKA_FN_ACC static auto apply(T a, T b)
            {
                return std::min(a, b);
            }
        };
        template<typename TAcc, typename T, typename = void>
        struct Max
        {
            ALPAKA_FN_ACC static auto apply(T a, T b)
            {
                return std::max(a, b);
            }
        };
    } // namespace trait

    template<typename TAcc, typename T>
    ALPAKA_FN_ACC auto sqrt(TAcc const&, T x)
    {
        return trait::Sqrt<TAcc, T>::apply(x);
    }
    template<typename TAcc, typename T>
    ALPAKA_FN_ACC auto rsqrt(TAcc const&, T x)
    {
        return trait::Rsqrt<TAcc, T>::apply(x);
    }
    template<typename TAcc, typename T>
    ALPAKA_FN_ACC auto sin(TAcc const&, T x)
    {
        return trait::Sin<TAcc, T>::apply(x);
    }
    template<typename TAcc, typename T>
    ALPAKA_FN_ACC auto cos(TAcc const&, T x)
    {
        return trait::Cos<TAcc, T>::apply(x);
    }
    template<typename TAcc, typename T>
    ALPAKA_FN_ACC auto tan(TAcc const&, T x)
    {
        return trait::Tan<TAcc, T>::apply(x);
    }
    template<typename TAcc, typename T>
    ALPAKA_FN_ACC auto exp(TAcc const&, T x)
    {
        return trait::Exp<TAcc, T>::apply(x);
    }
    template<typename TAcc, typename T>
    ALPAKA_FN_ACC auto log(TAcc const&, T x)
    {
        return trait::Log<TAcc, T>::apply(x);
    }
    template<typename TAcc, typename T>
    ALPAKA_FN_ACC auto abs(TAcc const&, T x)
    {
        return trait::Abs<TAcc, T>::apply(x);
    }
    template<typename TAcc, typename T>
    ALPAKA_FN_ACC auto floor(TAcc const&, T x)
    {
        return trait::Floor<TAcc, T>::apply(x);
    }
    template<typename TAcc, typename T>
    ALPAKA_FN_ACC auto ceil(TAcc const&, T x)
    {
        return trait::Ceil<TAcc, T>::apply(x);
    }
    template<typename TAcc, typename T>
    ALPAKA_FN_ACC auto erf(TAcc const&, T x)
    {
        return trait::Erf<TAcc, T>::apply(x);
    }
    template<typename TAcc, typename T>
    ALPAKA_FN_ACC auto pow(TAcc const&, T base, T exponent)
    {
        return trait::Pow<TAcc, T>::apply(base, exponent);
    }
    template<typename TAcc, typename T>
    ALPAKA_FN_ACC auto atan2(TAcc const&, T y, T x)
    {
        return trait::Atan2<TAcc, T>::apply(y, x);
    }
    template<typename TAcc, typename T>
    ALPAKA_FN_ACC auto fma(TAcc const&, T a, T b, T c)
    {
        return trait::Fma<TAcc, T>::apply(a, b, c);
    }
    template<typename TAcc, typename T>
    ALPAKA_FN_ACC auto min(TAcc const&, T a, T b)
    {
        return trait::Min<TAcc, T>::apply(a, b);
    }
    template<typename TAcc, typename T>
    ALPAKA_FN_ACC auto max(TAcc const&, T a, T b)
    {
        return trait::Max<TAcc, T>::apply(a, b);
    }
} // namespace alpaka::math
