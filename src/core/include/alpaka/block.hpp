/// \file Block-level kernel services: shared memory and synchronization
/// (paper Sec. 3.2.2/3.2.3).
#pragma once

#include "alpaka/core/common.hpp"

#include <cstddef>

namespace alpaka::block
{
    namespace sync
    {
        namespace trait
        {
            //! Customization point: block-wide barrier of an accelerator.
            //! The generic implementation covers accelerators exposing a
            //! syncBlockThreads() member; single-thread-per-block back-ends
            //! (Serial, Omp2Blocks) synchronize trivially.
            template<typename TAcc, typename = void>
            struct SyncBlockThreads
            {
                ALPAKA_FN_ACC static void sync(TAcc const& acc)
                {
                    if constexpr(requires { acc.syncBlockThreads(); })
                        acc.syncBlockThreads();
                    // else: one thread per block, nothing to synchronize.
                }
            };
        } // namespace trait

        //! Synchronizes all threads of the calling block (the portable
        //! __syncthreads). All threads of the block must reach the same
        //! textual barrier; fiber-based back-ends detect violations.
        template<typename TAcc>
        ALPAKA_FN_ACC void syncBlockThreads(TAcc const& acc)
        {
            trait::SyncBlockThreads<TAcc>::sync(acc);
        }
    } // namespace sync

    namespace shared
    {
        namespace st
        {
            //! Allocates a statically-sized variable in block shared memory.
            //! All threads of a block receive the same object per call
            //! site; contents are uninitialized (CUDA __shared__
            //! semantics). Call sequence must be identical for all threads
            //! of the block.
            template<typename T, typename TAcc>
            ALPAKA_FN_ACC auto allocVar(TAcc const& acc) -> T&
            {
                return acc.template allocVar<T>();
            }
        } // namespace st

        namespace dyn
        {
            //! Pointer to the dynamic shared memory of the block, sized via
            //! the kernel's getBlockSharedMemDynSizeBytes hook (see
            //! alpaka/kernel.hpp).
            template<typename T, typename TAcc>
            ALPAKA_FN_ACC auto getMem(TAcc const& acc) -> T*
            {
                return acc.template dynSharedMem<T>();
            }

            //! Size of the dynamic shared memory region in bytes.
            template<typename TAcc>
            ALPAKA_FN_ACC auto getMemBytes(TAcc const& acc) -> std::size_t
            {
                return acc.dynSharedMemBytes();
            }
        } // namespace dyn
    } // namespace shared
} // namespace alpaka::block
