/// \file Kernel-related traits.
#pragma once

#include "alpaka/core/common.hpp"
#include "alpaka/vec.hpp"

#include <concepts>
#include <cstddef>

namespace alpaka::kernel::trait
{
    //! Customization point: how many bytes of dynamic ("extern") block
    //! shared memory a kernel needs for a given launch configuration.
    //!
    //! The default picks up an optional member
    //!   `kernel.getBlockSharedMemDynSizeBytes(blockThreadExtent,
    //!    threadElemExtent, args...)`
    //! and otherwise returns zero. Kernels like the tiled DGEMM use the hook
    //! to size their tiles from the work division — this is how a single
    //! source adapts its shared memory use per architecture (paper
    //! Sec. 4.2.2: "considers the architecture cache sizes by adapting ...
    //! the size of the shared memory").
    template<typename TKernel, typename = void>
    struct BlockSharedMemDynSizeBytes
    {
        template<typename TDim, typename TSize, typename... TArgs>
        [[nodiscard]] static auto get(
            TKernel const& kernel,
            Vec<TDim, TSize> const& blockThreadExtent,
            Vec<TDim, TSize> const& threadElemExtent,
            TArgs const&... args) -> std::size_t
        {
            if constexpr(requires {
                             {
                                 kernel.getBlockSharedMemDynSizeBytes(blockThreadExtent, threadElemExtent, args...)
                             } -> std::convertible_to<std::size_t>;
                         })
            {
                return kernel.getBlockSharedMemDynSizeBytes(blockThreadExtent, threadElemExtent, args...);
            }
            else
            {
                (void) kernel;
                return 0;
            }
        }
    };
} // namespace alpaka::kernel::trait
