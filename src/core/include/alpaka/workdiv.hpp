/// \file Work division: the extents of all hierarchy levels
/// (paper Sec. 3.4.3 and Listing 2).
#pragma once

#include "alpaka/core/common.hpp"
#include "alpaka/core/error.hpp"
#include "alpaka/dim.hpp"
#include "alpaka/origin.hpp"
#include "alpaka/vec.hpp"

#include <concepts>
#include <ostream>
#include <type_traits>

namespace alpaka
{
    //! Anything that exposes the three level extents of the hierarchy.
    template<typename T>
    concept ConceptWorkDiv = requires(T const& wd) {
        typename T::Dim;
        typename T::Size;
        {
            wd.gridBlockExtent()
        } -> std::convertible_to<Vec<typename T::Dim, typename T::Size>>;
        {
            wd.blockThreadExtent()
        } -> std::convertible_to<Vec<typename T::Dim, typename T::Size>>;
        {
            wd.threadElemExtent()
        } -> std::convertible_to<Vec<typename T::Dim, typename T::Size>>;
    };
} // namespace alpaka

namespace alpaka::workdiv
{
    //! A plain value type holding the extents of the grid/block/thread/
    //! element hierarchy (paper Listing 2).
    template<typename TDim, typename TSize>
    class WorkDivMembers
    {
    public:
        using Dim = TDim;
        using Size = TSize;
        using VecType = Vec<TDim, TSize>;

        constexpr WorkDivMembers() = default;

        constexpr WorkDivMembers(
            VecType const& gridBlockExtent,
            VecType const& blockThreadExtent,
            VecType const& threadElemExtent)
            : gridBlockExtent_(gridBlockExtent)
            , blockThreadExtent_(blockThreadExtent)
            , threadElemExtent_(threadElemExtent)
        {
        }

        //! Scalar convenience for 1-d work divisions (paper Listing 5:
        //! `WorkDivMembers<Dim, Size>(256u, 16u, 1u)`).
        template<std::convertible_to<TSize> TA, std::convertible_to<TSize> TB, std::convertible_to<TSize> TC>
            requires(TDim::value == 1)
        constexpr WorkDivMembers(TA blocks, TB threadsPerBlock, TC elemsPerThread)
            : gridBlockExtent_(static_cast<TSize>(blocks))
            , blockThreadExtent_(static_cast<TSize>(threadsPerBlock))
            , threadElemExtent_(static_cast<TSize>(elemsPerThread))
        {
        }

        [[nodiscard]] constexpr auto gridBlockExtent() const noexcept -> VecType const&
        {
            return gridBlockExtent_;
        }
        [[nodiscard]] constexpr auto blockThreadExtent() const noexcept -> VecType const&
        {
            return blockThreadExtent_;
        }
        [[nodiscard]] constexpr auto threadElemExtent() const noexcept -> VecType const&
        {
            return threadElemExtent_;
        }

        [[nodiscard]] constexpr auto operator==(WorkDivMembers const&) const noexcept -> bool = default;

    private:
        VecType gridBlockExtent_ = VecType::ones();
        VecType blockThreadExtent_ = VecType::ones();
        VecType threadElemExtent_ = VecType::ones();
    };

    template<typename TDim, typename TSize>
    auto operator<<(std::ostream& os, WorkDivMembers<TDim, TSize> const& wd) -> std::ostream&
    {
        return os << "{grid: " << wd.gridBlockExtent() << ", block: " << wd.blockThreadExtent()
                  << ", elems: " << wd.threadElemExtent() << '}';
    }

    namespace trait
    {
        //! Customization point for querying level extents from anything
        //! work-division-like (a WorkDivMembers or an accelerator).
        template<typename TOrigin, typename TUnit>
        struct GetWorkDiv;

        template<>
        struct GetWorkDiv<Grid, Blocks>
        {
            template<ConceptWorkDiv TWorkDiv>
            ALPAKA_FN_HOST_ACC static constexpr auto get(TWorkDiv const& wd)
            {
                return wd.gridBlockExtent();
            }
        };
        template<>
        struct GetWorkDiv<Block, Threads>
        {
            template<ConceptWorkDiv TWorkDiv>
            ALPAKA_FN_HOST_ACC static constexpr auto get(TWorkDiv const& wd)
            {
                return wd.blockThreadExtent();
            }
        };
        template<>
        struct GetWorkDiv<Thread, Elems>
        {
            template<ConceptWorkDiv TWorkDiv>
            ALPAKA_FN_HOST_ACC static constexpr auto get(TWorkDiv const& wd)
            {
                return wd.threadElemExtent();
            }
        };
        template<>
        struct GetWorkDiv<Grid, Threads>
        {
            template<ConceptWorkDiv TWorkDiv>
            ALPAKA_FN_HOST_ACC static constexpr auto get(TWorkDiv const& wd)
            {
                return wd.gridBlockExtent() * wd.blockThreadExtent();
            }
        };
        template<>
        struct GetWorkDiv<Grid, Elems>
        {
            template<ConceptWorkDiv TWorkDiv>
            ALPAKA_FN_HOST_ACC static constexpr auto get(TWorkDiv const& wd)
            {
                return wd.gridBlockExtent() * wd.blockThreadExtent() * wd.threadElemExtent();
            }
        };
        template<>
        struct GetWorkDiv<Block, Elems>
        {
            template<ConceptWorkDiv TWorkDiv>
            ALPAKA_FN_HOST_ACC static constexpr auto get(TWorkDiv const& wd)
            {
                return wd.blockThreadExtent() * wd.threadElemExtent();
            }
        };
    } // namespace trait

    //! The extent of \p TUnit units measured from \p TOrigin
    //! (paper Listing 3: `workdiv::getWorkDiv<Grid, Threads>(acc)`).
    template<typename TOrigin, typename TUnit, ConceptWorkDiv TWorkDiv>
    ALPAKA_FN_HOST_ACC constexpr auto getWorkDiv(TWorkDiv const& workDiv)
    {
        return trait::GetWorkDiv<TOrigin, TUnit>::get(workDiv);
    }
} // namespace alpaka::workdiv
