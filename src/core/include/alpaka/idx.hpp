/// \file Index retrieval inside kernels (paper Listing 3).
#pragma once

#include "alpaka/core/common.hpp"
#include "alpaka/origin.hpp"
#include "alpaka/vec.hpp"
#include "alpaka/workdiv.hpp"

#include <concepts>

namespace alpaka
{
    //! Anything that can tell a thread where it is: an accelerator handed to
    //! a kernel. Extends ConceptWorkDiv by the two index vectors.
    template<typename T>
    concept ConceptIdxProvider = ConceptWorkDiv<T> && requires(T const& acc) {
        {
            acc.gridBlockIdx()
        } -> std::convertible_to<Vec<typename T::Dim, typename T::Size>>;
        {
            acc.blockThreadIdx()
        } -> std::convertible_to<Vec<typename T::Dim, typename T::Size>>;
    };
} // namespace alpaka

namespace alpaka::idx
{
    namespace trait
    {
        //! Customization point: the index of the calling unit. Back-ends
        //! with native index registers could specialize per accelerator;
        //! the generic implementations cover every accelerator that stores
        //! its block/thread coordinates (all back-ends of this repo).
        template<typename TOrigin, typename TUnit>
        struct GetIdx;

        //! Block index within the grid.
        template<>
        struct GetIdx<Grid, Blocks>
        {
            template<ConceptIdxProvider TAcc>
            ALPAKA_FN_ACC static constexpr auto get(TAcc const& acc)
            {
                return acc.gridBlockIdx();
            }
        };

        //! Thread index within the block.
        template<>
        struct GetIdx<Block, Threads>
        {
            template<ConceptIdxProvider TAcc>
            ALPAKA_FN_ACC static constexpr auto get(TAcc const& acc)
            {
                return acc.blockThreadIdx();
            }
        };

        //! Thread index within the grid.
        template<>
        struct GetIdx<Grid, Threads>
        {
            template<ConceptIdxProvider TAcc>
            ALPAKA_FN_ACC static constexpr auto get(TAcc const& acc)
            {
                return acc.gridBlockIdx() * acc.blockThreadExtent() + acc.blockThreadIdx();
            }
        };

        //! Index of the first element of the calling thread, in element
        //! units from the grid origin.
        template<>
        struct GetIdx<Grid, Elems>
        {
            template<ConceptIdxProvider TAcc>
            ALPAKA_FN_ACC static constexpr auto get(TAcc const& acc)
            {
                return GetIdx<Grid, Threads>::get(acc) * acc.threadElemExtent();
            }
        };
    } // namespace trait

    //! The calling unit's index (paper Listing 3:
    //! `idx::getIdx<Grid, Threads>(acc)`).
    template<typename TOrigin, typename TUnit, ConceptIdxProvider TAcc>
    ALPAKA_FN_ACC constexpr auto getIdx(TAcc const& acc)
    {
        return trait::GetIdx<TOrigin, TUnit>::get(acc);
    }
} // namespace alpaka::idx
