/// \file Devices and platforms (paper Listing 5:
/// `dev::DevMan<Acc>::getDevByIdx(0)`).
#pragma once

#include "alpaka/core/common.hpp"
#include "alpaka/core/error.hpp"

#include "gpusim/platform.hpp"

#include <cstddef>
#include <string>
#include <thread>

namespace alpaka::dev
{
    //! The host CPU as a device. All CPU back-ends execute on it. Value
    //! type; every instance denotes the same physical processor.
    class DevCpu
    {
    public:
        [[nodiscard]] auto getName() const -> std::string
        {
            return "CPU-" + std::to_string(std::thread::hardware_concurrency()) + "-threads";
        }

        //! Number of hardware threads. Cached: hardware_concurrency()
        //! performs a syscall on glibc, and this sits on the per-launch
        //! validation path (getAccDevProps) of every CPU back-end.
        [[nodiscard]] static auto concurrency() -> std::size_t
        {
            static std::size_t const cached = []
            {
                auto const n = std::thread::hardware_concurrency();
                return n == 0 ? std::size_t{1} : std::size_t{n};
            }();
            return cached;
        }

        [[nodiscard]] constexpr auto operator==(DevCpu const&) const noexcept -> bool = default;

        //! Registry key for the stream registry (one per physical device).
        [[nodiscard]] static auto registryKey() noexcept -> void const*
        {
            static int const anchor = 0;
            return &anchor;
        }
    };

    //! A simulated GPU (one gpusim device). Copyable handle.
    class DevCudaSim
    {
    public:
        explicit DevCudaSim(gpusim::Device& device) : device_(&device)
        {
        }

        [[nodiscard]] auto getName() const -> std::string
        {
            return device_->spec().name;
        }
        [[nodiscard]] auto getMemBytes() const -> std::size_t
        {
            return device_->spec().globalMemBytes;
        }
        [[nodiscard]] auto getFreeMemBytes() const -> std::size_t
        {
            return device_->spec().globalMemBytes - device_->memory().stats().liveBytes;
        }
        [[nodiscard]] auto spec() const -> gpusim::DeviceSpec const&
        {
            return device_->spec();
        }

        //! The underlying simulator device.
        [[nodiscard]] auto simDevice() const noexcept -> gpusim::Device&
        {
            return *device_;
        }

        [[nodiscard]] auto operator==(DevCudaSim const& other) const noexcept -> bool
        {
            return device_ == other.device_;
        }

        [[nodiscard]] auto registryKey() const noexcept -> void const*
        {
            return device_;
        }

    private:
        gpusim::Device* device_;
    };

    //! Platform of the host CPU: exactly one device.
    struct PltfCpu
    {
        using Dev = DevCpu;

        [[nodiscard]] static auto getDevCount() -> std::size_t
        {
            return 1;
        }
        [[nodiscard]] static auto getDevByIdx(std::size_t idx) -> DevCpu
        {
            if(idx != 0)
                throw UsageError("PltfCpu: device index out of range (the host has exactly one CPU device)");
            return DevCpu{};
        }
    };

    //! Platform of the simulated GPUs (configure via gpusim::Platform).
    struct PltfCudaSim
    {
        using Dev = DevCudaSim;

        [[nodiscard]] static auto getDevCount() -> std::size_t
        {
            return gpusim::Platform::instance().deviceCount();
        }
        [[nodiscard]] static auto getDevByIdx(std::size_t idx) -> DevCudaSim
        {
            return DevCudaSim(gpusim::Platform::instance().device(idx));
        }
    };

    namespace trait
    {
        //! Customization point: the platform an accelerator (or other
        //! entity) belongs to. Defaults to the nested `Pltf` alias.
        template<typename T, typename = void>
        struct PltfType
        {
            using type = typename T::Pltf;
        };

        //! Customization point: the device type of an entity. Defaults to
        //! the nested `Dev` alias.
        template<typename T, typename = void>
        struct DevType
        {
            using type = typename T::Dev;
        };
    } // namespace trait

    template<typename T>
    using Pltf = typename trait::PltfType<T>::type;
    template<typename T>
    using Dev = typename trait::DevType<T>::type;

    //! Device manager of an accelerator (paper Listing 5).
    template<typename TAcc>
    struct DevMan
    {
        using PltfType = Pltf<TAcc>;

        [[nodiscard]] static auto getDevCount() -> std::size_t
        {
            return PltfType::getDevCount();
        }
        [[nodiscard]] static auto getDevByIdx(std::size_t idx)
        {
            return PltfType::getDevByIdx(idx);
        }
    };
} // namespace alpaka::dev
