/// \file Compile-time dimensionality (paper Sec. 3.1: "Each level of the
/// Alpaka parallelization hierarchy is unrestricted in its dimensionality").
#pragma once

#include <cstddef>
#include <type_traits>

namespace alpaka::dim
{
    //! A compile-time dimensionality. All extents, indices and work
    //! divisions are parameterized on one of these.
    template<std::size_t N>
    struct DimInt : std::integral_constant<std::size_t, N>
    {
    };

    using Dim1 = DimInt<1>;
    using Dim2 = DimInt<2>;
    using Dim3 = DimInt<3>;

    namespace trait
    {
        //! Customization point: the dimensionality of an arbitrary type.
        template<typename T, typename = void>
        struct DimType
        {
            using type = typename T::Dim;
        };
    } // namespace trait

    //! Alias resolving the dimensionality of \p T.
    template<typename T>
    using Dim = typename trait::DimType<T>::type;
} // namespace alpaka::dim

namespace alpaka
{
    // Paper listings use the unqualified names (e.g. `Dim2` in Listing 2).
    using dim::Dim1;
    using dim::Dim2;
    using dim::Dim3;
} // namespace alpaka
