/// \file Events: completion markers recordable into streams.
#pragma once

#include "alpaka/dev.hpp"
#include "alpaka/stream.hpp"

#include "gpusim/stream.hpp"

#include <condition_variable>
#include <memory>
#include <mutex>

namespace alpaka::event
{
    //! Host-managed event for CPU streams. Like its CUDA counterpart, an
    //! event that has never been recorded counts as complete. Recording it
    //! into a stream (stream::enqueue(stream, event)) completes it when all
    //! previously enqueued work of that stream has finished.
    class EventCpu
    {
    public:
        using Dev = dev::DevCpu;

        explicit EventCpu(dev::DevCpu const& device = {}) : dev_(device), state_(std::make_shared<State>())
        {
        }

        [[nodiscard]] auto getDev() const noexcept -> dev::DevCpu
        {
            return dev_;
        }

        [[nodiscard]] auto isDone() const -> bool
        {
            std::scoped_lock lock(state_->mutex);
            return state_->done;
        }

        //! Blocks the calling host thread until complete.
        void wait() const
        {
            std::unique_lock lock(state_->mutex);
            state_->cv.wait(lock, [&] { return state_->done; });
        }

        //! \name used by Enqueue/wait traits and the graph replay engine
        //! @{
        void markPending() const
        {
            std::scoped_lock lock(state_->mutex);
            state_->done = false;
        }
        void complete() const
        {
            {
                std::scoped_lock lock(state_->mutex);
                state_->done = true;
            }
            state_->cv.notify_all();
        }
        //! @}

        //! Opaque identity of the event's shared state; capture sinks key
        //! cross-stream record/wait edges on it (copies of an event share
        //! the state, hence the key).
        [[nodiscard]] auto key() const noexcept -> void const*
        {
            return state_.get();
        }

    private:
        struct State
        {
            mutable std::mutex mutex;
            mutable std::condition_variable cv;
            bool done = true;
        };

        dev::DevCpu dev_;
        std::shared_ptr<State> state_;
    };

    //! Event of a simulated GPU; wraps gpusim::Event.
    class EventCudaSim
    {
    public:
        using Dev = dev::DevCudaSim;

        explicit EventCudaSim(dev::DevCudaSim const& device) : dev_(device)
        {
        }

        [[nodiscard]] auto getDev() const noexcept -> dev::DevCudaSim
        {
            return dev_;
        }
        [[nodiscard]] auto isDone() const -> bool
        {
            return event_.isDone();
        }
        void wait() const
        {
            event_.wait();
        }
        [[nodiscard]] auto simEvent() noexcept -> gpusim::Event&
        {
            return event_;
        }
        [[nodiscard]] auto simEvent() const noexcept -> gpusim::Event const&
        {
            return event_;
        }

    private:
        dev::DevCudaSim dev_;
        mutable gpusim::Event event_;
    };
} // namespace alpaka::event

namespace alpaka::event::detail
{
    //! Describes recording \p event to a capture sink: the live event is
    //! left untouched; replay re-arms it (markPending) at replay start and
    //! completes it when the record node is reached.
    inline void captureEventRecord(gpusim::CaptureSink& sink, event::EventCpu const& event)
    {
        sink.eventRecord(
            event.key(),
            [event] { event.markPending(); },
            [event] { event.complete(); });
    }
} // namespace alpaka::event::detail

namespace alpaka::stream::trait
{
    //! Recording an EventCpu into the synchronous CPU stream: everything
    //! already ran, so the event completes immediately.
    template<>
    struct Enqueue<StreamCpuSync, event::EventCpu>
    {
        static void enqueue(StreamCpuSync& stream, event::EventCpu& event)
        {
            if(auto const& sink = stream.captureSink())
            {
                event::detail::captureEventRecord(*sink, event);
                return;
            }
            event.markPending();
            event.complete();
        }
    };

    //! Recording an EventCpu into an asynchronous CPU stream.
    template<>
    struct Enqueue<StreamCpuAsync, event::EventCpu>
    {
        static void enqueue(StreamCpuAsync& stream, event::EventCpu& event)
        {
            if(auto const& sink = stream.captureSink())
            {
                event::detail::captureEventRecord(*sink, event);
                return;
            }
            event.markPending();
            stream.push([event] { event.complete(); }, /*always=*/true);
        }
    };

    //! Recording an EventCudaSim into a CudaSim stream.
    template<bool TAsync>
    struct Enqueue<detail::StreamCudaSimBase<TAsync>, event::EventCudaSim>
    {
        static void enqueue(detail::StreamCudaSimBase<TAsync>& stream, event::EventCudaSim& event)
        {
            stream.simStream().record(event.simEvent());
        }
    };
} // namespace alpaka::stream::trait
