/// \file Origin and unit tags of the parallelization hierarchy
/// (paper Fig. 1: grid, block, thread, element).
///
/// `idx::getIdx<Grid, Threads>(acc)` reads: "the index in *thread* units,
/// measured from the *grid* origin".
#pragma once

namespace alpaka
{
    //! \name Origins — where the index/extent is measured from.
    //! @{
    struct Grid
    {
    };
    struct Block
    {
    };
    struct Thread
    {
    };
    //! @}

    //! \name Units — what is being counted.
    //! @{
    struct Blocks
    {
    };
    struct Threads
    {
    };
    struct Elems
    {
    };
    //! @}
} // namespace alpaka
