#include "ase/ase.hpp"

#include "gpusim/stream.hpp"

#include <cstring>

namespace ase::nativeOmp
{
    auto runAse(Scene const& scene, AseParams const& params) -> AseResult
    {
        auto batch = [&](std::vector<std::uint64_t> const& ids, std::size_t rays, std::uint32_t pass)
        {
            std::vector<RaySum> sums(ids.size());
            auto const count = static_cast<long long>(ids.size());
#pragma omp parallel for schedule(dynamic)
            for(long long i = 0; i < count; ++i)
            {
                auto const idx = static_cast<std::size_t>(i);
                sums[idx] = sampleRays(scene, static_cast<std::size_t>(ids[idx]), pass, params.seed, rays);
            }
            return sums;
        };
        return detail::adaptiveLoop(scene, params, batch);
    }
} // namespace ase::nativeOmp

namespace ase::nativeSim
{
    auto runAse(gpusim::Device& dev, Scene const& scene, AseParams const& params) -> AseResult
    {
        gpusim::Stream stream(dev, /*async=*/false);

        auto batch = [&](std::vector<std::uint64_t> const& ids, std::size_t rays, std::uint32_t pass)
        {
            auto const count = ids.size();
            auto& memory = dev.memory();
            auto* const devIds = static_cast<std::uint64_t*>(memory.allocate(count * sizeof(std::uint64_t)));
            auto* const devSums = static_cast<double*>(memory.allocate(count * sizeof(double)));
            auto* const devSumSqs = static_cast<double*>(memory.allocate(count * sizeof(double)));

            stream.memcpyHtoD(devIds, ids.data(), count * sizeof(std::uint64_t));

            constexpr unsigned threadsPerBlock = 64;
            gpusim::GridSpec grid;
            grid.block = gpusim::Dim3{threadsPerBlock, 1, 1};
            grid.grid = gpusim::Dim3{
                static_cast<unsigned>((count + threadsPerBlock - 1) / threadsPerBlock),
                1,
                1};
            grid.noBarrier = true;

            auto const seed = params.seed;
            stream.launch(
                grid,
                [scene, devIds, count, rays, pass, seed, devSums, devSumSqs](gpusim::ThreadCtx& ctx)
                {
                    auto const i = ctx.globalLinearThreadIdx();
                    if(i >= count)
                        return;
                    auto const result
                        = sampleRays(scene, static_cast<std::size_t>(devIds[i]), pass, seed, rays);
                    devSums[i] = result.sum;
                    devSumSqs[i] = result.sumSq;
                });

            std::vector<double> sums(count);
            std::vector<double> sumSqs(count);
            stream.memcpyDtoH(sums.data(), devSums, count * sizeof(double));
            stream.memcpyDtoH(sumSqs.data(), devSumSqs, count * sizeof(double));
            stream.wait();

            memory.free(devIds);
            memory.free(devSums);
            memory.free(devSumSqs);

            std::vector<RaySum> result(count);
            for(std::size_t i = 0; i < count; ++i)
                result[i] = RaySum{sums[i], sumSqs[i]};
            return result;
        };

        return detail::adaptiveLoop(scene, params, batch);
    }
} // namespace ase::nativeSim
