/// \file Physics of the ASE mini-application (the HASEonGPU analogue of
/// paper Sec. 4.3; see DESIGN.md for the substitution rationale).
///
/// Model: a two-dimensional laser gain medium occupying [0,lx] x [0,ly]
/// with a spatially varying small-signal gain g(x,y) (uniform background
/// plus a Gaussian pump spot). The amplified spontaneous emission (ASE)
/// flux at a sample point is the direction-average of the amplification
/// along rays to the boundary:
///
///   Phi(p) = E_theta[ exp( integral_0^t_exit g(p + s*dir(theta)) ds ) ]
///
/// estimated by Monte-Carlo ray sampling with midpoint-rule integration —
/// the same algorithm class (adaptive massively parallel MC integration of
/// ray amplification in a gain medium) as HASEonGPU.
///
/// All functions here are plain inline host/accelerator code shared by the
/// alpaka kernel, the native OpenMP and the native simulator
/// implementations, guaranteeing bit-identical physics across back-ends.
#pragma once

#include <alpaka/core/common.hpp>
#include <alpaka/rand.hpp>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <numbers>

namespace ase
{
    //! The gain medium and its sampling mesh. Trivially copyable: passed by
    //! value into kernels.
    struct Scene
    {
        double lx = 10.0; //!< medium extent x
        double ly = 8.0; //!< medium extent y
        std::size_t samplesX = 16; //!< sample mesh extent x
        std::size_t samplesY = 12; //!< sample mesh extent y
        double uniformGain = 0.04; //!< background small-signal gain
        double pumpAmplitude = 0.30; //!< Gaussian pump spot amplitude
        double pumpSigmaSq = 4.0; //!< pump spot sigma^2
        double stepSize = 0.05; //!< ray integration step

        [[nodiscard]] constexpr auto sampleCount() const noexcept -> std::size_t
        {
            return samplesX * samplesY;
        }

        //! Position of sample \p s (cell centers of the mesh).
        auto samplePos(std::size_t s, double& x, double& y) const noexcept -> void
        {
            auto const ix = s % samplesX;
            auto const iy = s / samplesX;
            x = (static_cast<double>(ix) + 0.5) * lx / static_cast<double>(samplesX);
            y = (static_cast<double>(iy) + 0.5) * ly / static_cast<double>(samplesY);
        }
    };

    //! Local small-signal gain at (x, y).
    ALPAKA_FN_HOST_ACC auto gainAt(Scene const& scene, double x, double y) noexcept -> double
    {
        auto const dx = x - 0.5 * scene.lx;
        auto const dy = y - 0.5 * scene.ly;
        return scene.uniformGain
               + scene.pumpAmplitude * std::exp(-(dx * dx + dy * dy) / (2.0 * scene.pumpSigmaSq));
    }

    //! Amplification along the ray from (x0, y0) in direction \p theta to
    //! the medium boundary, exp of the midpoint-rule gain integral.
    ALPAKA_FN_HOST_ACC auto traceRay(Scene const& scene, double x0, double y0, double theta) noexcept
        -> double
    {
        auto const dirX = std::cos(theta);
        auto const dirY = std::sin(theta);
        auto const h = scene.stepSize;

        // Exit distance of the ray out of the rectangle.
        auto distanceTo = [](double pos, double dir, double hi) noexcept
        {
            if(dir > 1e-12)
                return (hi - pos) / dir;
            if(dir < -1e-12)
                return (0.0 - pos) / dir;
            return 1e300;
        };
        auto const tExit = std::fmin(distanceTo(x0, dirX, scene.lx), distanceTo(y0, dirY, scene.ly));

        auto const steps = static_cast<std::size_t>(tExit / h);
        double integral = 0.0;
        for(std::size_t s = 0; s < steps; ++s)
        {
            auto const t = (static_cast<double>(s) + 0.5) * h;
            integral += gainAt(scene, x0 + t * dirX, y0 + t * dirY) * h;
        }
        // Remainder segment [steps*h, tExit).
        auto const rest = tExit - static_cast<double>(steps) * h;
        if(rest > 0.0)
        {
            auto const t = static_cast<double>(steps) * h + 0.5 * rest;
            integral += gainAt(scene, x0 + t * dirX, y0 + t * dirY) * rest;
        }
        return std::exp(integral);
    }

    //! Monte-Carlo sum and sum-of-squares of \p rays ray amplifications of
    //! sample \p sampleId. The RNG stream is keyed on (seed; sample, pass)
    //! so results are independent of which back-end or thread executes
    //! them — the ground truth for the cross-back-end equality tests.
    struct RaySum
    {
        double sum = 0.0;
        double sumSq = 0.0;
    };

    ALPAKA_FN_HOST_ACC auto sampleRays(
        Scene const& scene,
        std::size_t sampleId,
        std::uint32_t pass,
        std::uint64_t seed,
        std::size_t rays) noexcept -> RaySum
    {
        double x0 = 0.0;
        double y0 = 0.0;
        scene.samplePos(sampleId, x0, y0);

        auto const subsequence = (static_cast<std::uint64_t>(sampleId) << 16) | pass;
        alpaka::rand::Philox4x32x10 engine(seed, subsequence);
        alpaka::rand::distribution::UniformReal<double> uniform;

        RaySum result;
        for(std::size_t r = 0; r < rays; ++r)
        {
            auto const theta = 2.0 * std::numbers::pi * uniform(engine);
            auto const amplification = traceRay(scene, x0, y0, theta);
            result.sum += amplification;
            result.sumSq += amplification * amplification;
        }
        return result;
    }
} // namespace ase
