/// \file The ASE mini-application: adaptive Monte-Carlo flux computation
/// (HASEonGPU analogue, paper Sec. 4.3 / Fig. 10).
///
/// Host-driven adaptive loop (identical for every implementation):
///   1. sample every mesh point with params.raysPerSample rays,
///   2. estimate the relative standard error per sample,
///   3. for each refinement round, re-sample the points above the target
///      with params.refineRayFactor x more rays (fresh RNG pass), merging
///      the estimates,
///   4. report flux, final error estimate and rays spent per sample.
///
/// Three interchangeable engines run step 1/3's batch:
///   * runAse<TAcc, TStream>  — single-source alpaka kernel (any back-end),
///   * nativeOmp::runAse      — `#pragma omp parallel for` (the paper's
///                              native CPU version),
///   * nativeSim::runAse      — raw gpusim kernel (the paper's native CUDA
///                              version).
/// All three produce bit-identical flux fields thanks to counter-based RNG.
#pragma once

#include "ase/scene.hpp"

#include <alpaka/alpaka.hpp>

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ase
{
    struct AseParams
    {
        std::size_t raysPerSample = 200;
        std::size_t refineRounds = 1;
        std::size_t refineRayFactor = 4;
        double targetRelStdErr = 0.005;
        std::uint64_t seed = 42;
    };

    struct AseResult
    {
        std::vector<double> flux; //!< mean amplification per sample
        std::vector<double> relStdErr; //!< final relative standard error
        std::vector<std::size_t> raysUsed; //!< rays spent per sample
        std::size_t totalRays = 0;
    };

    namespace detail
    {
        //! Accumulation state of the adaptive loop (host side).
        struct Accumulator
        {
            explicit Accumulator(std::size_t samples) : sum(samples, 0.0), sumSq(samples, 0.0), rays(samples, 0)
            {
            }

            void merge(std::size_t sample, RaySum const& batch, std::size_t batchRays)
            {
                sum[sample] += batch.sum;
                sumSq[sample] += batch.sumSq;
                rays[sample] += batchRays;
            }

            [[nodiscard]] auto relStdErr(std::size_t sample) const -> double
            {
                auto const n = static_cast<double>(rays[sample]);
                auto const mean = sum[sample] / n;
                auto const var = std::fmax(0.0, sumSq[sample] / n - mean * mean);
                return std::sqrt(var / n) / mean;
            }

            [[nodiscard]] auto finish() const -> AseResult
            {
                AseResult result;
                auto const samples = sum.size();
                result.flux.resize(samples);
                result.relStdErr.resize(samples);
                result.raysUsed = rays;
                for(std::size_t s = 0; s < samples; ++s)
                {
                    result.flux[s] = sum[s] / static_cast<double>(rays[s]);
                    result.relStdErr[s] = relStdErr(s);
                    result.totalRays += rays[s];
                }
                return result;
            }

            std::vector<double> sum;
            std::vector<double> sumSq;
            std::vector<std::size_t> rays;
        };

        //! Samples above the error target, i.e. the next round's work list.
        [[nodiscard]] inline auto selectRefinement(Accumulator const& acc, double target)
            -> std::vector<std::uint64_t>
        {
            std::vector<std::uint64_t> ids;
            for(std::size_t s = 0; s < acc.sum.size(); ++s)
                if(acc.relStdErr(s) > target)
                    ids.push_back(static_cast<std::uint64_t>(s));
            return ids;
        }

        //! Runs the adaptive loop with a pluggable batch engine
        //! `batch(sampleIds, rays, pass) -> vector<RaySum>`.
        template<typename TBatchFn>
        [[nodiscard]] auto adaptiveLoop(Scene const& scene, AseParams const& params, TBatchFn&& batch)
            -> AseResult
        {
            auto const samples = scene.sampleCount();
            Accumulator acc(samples);

            std::vector<std::uint64_t> ids(samples);
            for(std::size_t s = 0; s < samples; ++s)
                ids[s] = static_cast<std::uint64_t>(s);

            std::size_t rays = params.raysPerSample;
            for(std::uint32_t pass = 0;; ++pass)
            {
                auto const sums = batch(ids, rays, pass);
                for(std::size_t i = 0; i < ids.size(); ++i)
                    acc.merge(static_cast<std::size_t>(ids[i]), sums[i], rays);

                if(pass >= params.refineRounds)
                    break;
                ids = selectRefinement(acc, params.targetRelStdErr);
                if(ids.empty())
                    break;
                rays *= params.refineRayFactor;
            }
            return acc.finish();
        }
    } // namespace detail

    //! The single-source alpaka kernel: each thread processes the element
    //! count of work-list entries assigned by the work division.
    struct AseKernel
    {
        template<typename TAcc>
        ALPAKA_FN_ACC void operator()(
            TAcc const& acc,
            Scene scene,
            std::uint64_t const* sampleIds,
            std::size_t count,
            std::uint64_t rays,
            std::uint32_t pass,
            std::uint64_t seed,
            double* sums,
            double* sumSqs) const
        {
            auto const gridThreadIdx = alpaka::idx::getIdx<alpaka::Grid, alpaka::Threads>(acc)[0];
            auto const elems = alpaka::workdiv::getWorkDiv<alpaka::Thread, alpaka::Elems>(acc)[0];
            auto const begin = gridThreadIdx * elems;
            for(std::size_t e = 0; e < elems; ++e)
            {
                auto const i = begin + e;
                if(i >= count)
                    return;
                auto const sample = static_cast<std::size_t>(sampleIds[i]);
                auto const result = sampleRays(scene, sample, pass, seed, rays);
                sums[i] = result.sum;
                sumSqs[i] = result.sumSq;
            }
        }
    };

    //! Runs the full adaptive ASE computation through an alpaka back-end.
    //! Buffers live on the back-end's device; the work list and results move
    //! with explicit deep copies each round.
    template<typename TAcc, typename TStream>
    [[nodiscard]] auto runAse(
        typename TAcc::Dev const& dev,
        TStream& stream,
        Scene const& scene,
        AseParams const& params) -> AseResult
    {
        using Size = std::size_t;
        auto const host = alpaka::dev::PltfCpu::getDevByIdx(0);

        auto batch = [&](std::vector<std::uint64_t> const& ids, std::size_t rays, std::uint32_t pass)
        {
            auto const count = ids.size();
            auto idsHost = alpaka::mem::buf::alloc<std::uint64_t, Size>(host, count);
            std::copy(ids.begin(), ids.end(), idsHost.data());
            auto idsDev = alpaka::mem::buf::alloc<std::uint64_t, Size>(dev, count);
            auto sumsDev = alpaka::mem::buf::alloc<double, Size>(dev, count);
            auto sumSqsDev = alpaka::mem::buf::alloc<double, Size>(dev, count);

            alpaka::Vec<alpaka::Dim1, Size> const extent(count);
            alpaka::mem::view::copy(stream, idsDev, idsHost, extent);

            auto const workDiv = alpaka::workdiv::getValidWorkDiv<TAcc>(
                dev,
                alpaka::Vec<alpaka::Dim1, Size>(count),
                alpaka::Vec<alpaka::Dim1, Size>(Size{1}));
            auto const exec = alpaka::exec::create<TAcc>(
                workDiv,
                AseKernel{},
                scene,
                static_cast<std::uint64_t const*>(idsDev.data()),
                count,
                static_cast<std::uint64_t>(rays),
                pass,
                params.seed,
                sumsDev.data(),
                sumSqsDev.data());
            alpaka::stream::enqueue(stream, exec);

            auto sumsHost = alpaka::mem::buf::alloc<double, Size>(host, count);
            auto sumSqsHost = alpaka::mem::buf::alloc<double, Size>(host, count);
            alpaka::mem::view::copy(stream, sumsHost, sumsDev, extent);
            alpaka::mem::view::copy(stream, sumSqsHost, sumSqsDev, extent);
            alpaka::wait::wait(stream);

            std::vector<RaySum> result(count);
            for(std::size_t i = 0; i < count; ++i)
                result[i] = RaySum{sumsHost.data()[i], sumSqsHost.data()[i]};
            return result;
        };

        return detail::adaptiveLoop(scene, params, batch);
    }

    namespace nativeOmp
    {
        //! Native OpenMP implementation (no alpaka).
        [[nodiscard]] auto runAse(Scene const& scene, AseParams const& params) -> AseResult;
    }

    namespace nativeSim
    {
        //! Native simulator implementation (raw gpusim API, no alpaka).
        [[nodiscard]] auto runAse(gpusim::Device& dev, Scene const& scene, AseParams const& params) -> AseResult;
    }
} // namespace ase
