/// \file net::Router — tenant-affine sharding over serve::Service
/// (DESIGN.md §9.3).
///
/// One serve::Service already multiplexes tenants fairly, but all its
/// tenants share one admission ring, one scheduling mutex, one latency
/// histogram. The router scales that horizontally: N independent
/// Service shards behind a consistent-hash ring keyed by tenant, so
///
///  * a tenant's requests always land on the same shard (tenant
///    affinity — invariant 21): per-tenant FIFO order and fair-share
///    accounting keep meaning exactly what they meant on one service;
///  * backpressure is typed per shard (ShardBusyError carries the shard
///    index) and ISOLATED: one tenant filling its shard's queue cannot
///    reject tenants hashed elsewhere (invariant 22);
///  * the hash ring uses virtual nodes, so growing the fleet from N to
///    N+1 shards remaps only ~1/(N+1) of the tenant space (the classic
///    consistent-hashing bound) instead of reshuffling everyone;
///  * stats() MERGES the shards' raw latency bucket counts before
///    deriving fleet quantiles — quantiles of quantiles are meaningless,
///    bucket sums are exact (serve/latency.hpp).
///
/// Templates are registered through the router so every shard lowers
/// the same id; shutdown drains every shard with the same bounded-drain
/// contract as one service, reported per shard.
#pragma once

#include "serve/service.hpp"
#include "serve/types.hpp"

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace alpaka::net
{
    //! Admission rejected by ONE shard's bounded queue — the router
    //! projection of serve::AdmissionError, carrying which shard said
    //! no. Other shards may still have space: a multi-tenant client can
    //! keep submitting for tenants hashed elsewhere (invariant 22).
    class ShardBusyError : public serve::AdmissionError
    {
    public:
        ShardBusyError(std::size_t shard, std::string const& what) : serve::AdmissionError(what), shard_(shard)
        {
        }
        [[nodiscard]] auto shard() const noexcept -> std::size_t
        {
            return shard_;
        }

    private:
        std::size_t shard_;
    };

    //! FNV-1a — the ring's tenant hash. Public because the affinity
    //! tests re-derive placements offline.
    [[nodiscard]] constexpr auto fnv1a(std::string_view s, std::uint64_t h = 14695981039346656037ULL) noexcept
        -> std::uint64_t
    {
        for(char const c : s)
        {
            h ^= static_cast<std::uint8_t>(c);
            h *= 1099511628211ULL;
        }
        return h;
    }

    //! Consistent-hash ring with virtual nodes: shard i contributes
    //! `vnodes` points hash("shard/<i>/<v>"); a key is owned by the
    //! first point clockwise from its hash. Built once (sorted vector),
    //! lookups are lock-free binary searches — the submit hot path
    //! allocates nothing.
    class HashRing
    {
    public:
        HashRing(std::size_t shards, std::size_t vnodes);

        [[nodiscard]] auto shardOf(std::uint64_t keyHash) const noexcept -> std::size_t;
        [[nodiscard]] auto shardOf(std::string_view tenant) const noexcept -> std::size_t
        {
            return shardOf(fnv1a(tenant));
        }
        [[nodiscard]] auto shardCount() const noexcept -> std::size_t
        {
            return shards_;
        }

    private:
        struct Point
        {
            std::uint64_t hash;
            std::uint32_t shard;
        };
        std::vector<Point> ring_;
        std::size_t shards_;
    };

    struct RouterOptions
    {
        //! Independent serve::Service shards (>= 1).
        std::size_t shards = 2;
        //! Virtual nodes per shard on the hash ring. More vnodes =
        //! smoother tenant spread, bigger (still static) ring.
        std::size_t vnodesPerShard = 64;
        //! Applied to every shard (workers, queue bounds, supervision).
        serve::ServiceOptions shard{};
    };

    //! Fleet-wide introspection: the scalar counters summed, the latency
    //! histograms bucket-merged (then quantiled), the full per-shard
    //! snapshots kept for depth inspection.
    struct RouterStats
    {
        std::size_t queued = 0;
        std::size_t inFlight = 0;
        std::uint64_t admitted = 0;
        std::uint64_t rejected = 0;
        std::uint64_t completed = 0;
        std::uint64_t failed = 0;
        serve::LatencySnapshot latency;
        serve::LatencyCounts latencyCounts;
        serve::LatencySnapshot queueWait;
        serve::LatencyCounts queueWaitCounts;
        std::vector<serve::ServiceStats> perShard;
    };

    class Router
    {
    public:
        explicit Router(RouterOptions options = {});

        Router(Router const&) = delete;
        auto operator=(Router const&) -> Router& = delete;

        //! Registers \p desc on EVERY shard; the returned id is valid on
        //! all of them (shards lower independently, ids stay in lock
        //! step because registration only happens through here).
        auto registerTemplate(serve::TemplateDesc desc) -> serve::TemplateId;

        //! Routes \p request to its tenant's shard and submits there.
        //! \throws ShardBusyError when that shard's bounded queue is
        //! full — other shards are unaffected (invariant 22).
        auto submit(serve::Request const& request) -> serve::Future;

        //! The shard \p tenant's requests land on (stable for the
        //! router's lifetime — invariant 21).
        [[nodiscard]] auto shardOf(std::string_view tenant) const noexcept -> std::size_t
        {
            return ring_.shardOf(tenant);
        }

        [[nodiscard]] auto shardCount() const noexcept -> std::size_t
        {
            return shards_.size();
        }
        //! Direct shard access (tests, per-shard templates).
        [[nodiscard]] auto shard(std::size_t i) -> serve::Service&
        {
            return *shards_[i];
        }

        //! Blocks until every shard is idle.
        void drain();

        //! Bounded drain of the fleet, one report per shard (same
        //! contract as serve::Service::shutdown, per shard).
        auto shutdown(std::chrono::nanoseconds timeout = std::chrono::seconds(5))
            -> std::vector<serve::ShutdownReport>;

        [[nodiscard]] auto stats() const -> RouterStats;

    private:
        HashRing ring_;
        std::vector<std::unique_ptr<serve::Service>> shards_;
    };
} // namespace alpaka::net
