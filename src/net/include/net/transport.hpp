/// \file net::Transport — the byte-stream boundary of the front door
/// (DESIGN.md §9.1).
///
/// The session layer (front_door.hpp, client.hpp) speaks frames over an
/// abstract non-blocking byte stream and NEVER calls the OS: every
/// operation is a polled, partial-progress send/recv, so the whole
/// protocol stack is testable hermetically (no ports, no syscalls, no
/// timing dependence) and deployable over a real socket by swapping the
/// transport (net/socket.hpp confines the OS calls to one file — the
/// zenoh-pico platform-layer split, SNIPPETS.md §1).
///
/// The in-process PipeTransport here is the hermetic implementation: a
/// pair of fixed-capacity SPSC byte rings (one per direction), lock-free
/// (one producer, one consumer per ring), allocation-free after
/// construction, and honest about backpressure — a full ring returns
/// would-block exactly like a full socket buffer, which is what lets
/// the tests drive fragmentation and flow-control paths
/// deterministically.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

namespace alpaka::net
{
    //! Non-blocking byte stream. Both directions report progress the
    //! same way: > 0 bytes moved (possibly fewer than asked — partial
    //! progress is normal), 0 would-block (try again after the peer
    //! drains/fills), -1 closed (peer gone; for recv: gone AND drained —
    //! bytes sent before a close are still delivered first).
    class Transport
    {
    public:
        virtual ~Transport() = default;
        Transport() = default;
        Transport(Transport const&) = delete;
        auto operator=(Transport const&) -> Transport& = delete;

        [[nodiscard]] virtual auto send(std::byte const* data, std::size_t len) noexcept -> std::ptrdiff_t = 0;
        [[nodiscard]] virtual auto recv(std::byte* data, std::size_t len) noexcept -> std::ptrdiff_t = 0;
        //! Half-close of this end: the peer drains what was sent, then
        //! sees -1. Idempotent.
        virtual void close() noexcept = 0;
    };

    namespace detail
    {
        //! Fixed-capacity SPSC byte ring: monotonically-increasing
        //! 64-bit head/tail (never wrapped — indices are taken mod
        //! capacity), so full/empty are unambiguous without a spare
        //! slot. The producer owns tail_, the consumer owns head_, each
        //! publishes with release and reads the other with acquire —
        //! the classic two-counter SPSC proof obligation, same shape as
        //! the litmus-checked rings below (DESIGN.md §8.2).
        class ByteRing
        {
        public:
            explicit ByteRing(std::size_t capacity) : buf_(capacity)
            {
            }

            //! Producer side: copies up to \p len bytes in, returns how
            //! many fit (0 = full).
            auto write(std::byte const* data, std::size_t len) noexcept -> std::size_t
            {
                auto const tail = tail_.load(std::memory_order_relaxed);
                auto const head = head_.load(std::memory_order_acquire);
                auto const space = buf_.size() - static_cast<std::size_t>(tail - head);
                auto const n = len < space ? len : space;
                for(std::size_t i = 0; i < n; ++i)
                    buf_[static_cast<std::size_t>(tail + i) % buf_.size()] = data[i];
                tail_.store(tail + n, std::memory_order_release);
                return n;
            }

            //! Consumer side: copies up to \p len bytes out, returns how
            //! many were there (0 = empty).
            auto read(std::byte* data, std::size_t len) noexcept -> std::size_t
            {
                auto const head = head_.load(std::memory_order_relaxed);
                auto const tail = tail_.load(std::memory_order_acquire);
                auto const avail = static_cast<std::size_t>(tail - head);
                auto const n = len < avail ? len : avail;
                for(std::size_t i = 0; i < n; ++i)
                    data[i] = buf_[static_cast<std::size_t>(head + i) % buf_.size()];
                head_.store(head + n, std::memory_order_release);
                return n;
            }

            [[nodiscard]] auto empty() const noexcept -> bool
            {
                return head_.load(std::memory_order_acquire) == tail_.load(std::memory_order_acquire);
            }

            void close() noexcept
            {
                closed_.store(true, std::memory_order_release);
            }
            [[nodiscard]] auto closed() const noexcept -> bool
            {
                return closed_.load(std::memory_order_acquire);
            }

        private:
            std::vector<std::byte> buf_;
            std::atomic<std::uint64_t> head_{0};
            std::atomic<std::uint64_t> tail_{0};
            std::atomic<bool> closed_{false};
        };
    } // namespace detail

    //! One end of an in-process duplex pipe (see makePipePair). Sends
    //! into one shared ring, receives from the other; the peer end holds
    //! them swapped.
    class PipeTransport final : public Transport
    {
    public:
        PipeTransport(std::shared_ptr<detail::ByteRing> tx, std::shared_ptr<detail::ByteRing> rx) noexcept
            : tx_(std::move(tx))
            , rx_(std::move(rx))
        {
        }

        ~PipeTransport() override
        {
            close();
        }

        auto send(std::byte const* data, std::size_t len) noexcept -> std::ptrdiff_t override
        {
            if(tx_->closed())
                return -1;
            return static_cast<std::ptrdiff_t>(tx_->write(data, len));
        }

        auto recv(std::byte* data, std::size_t len) noexcept -> std::ptrdiff_t override
        {
            auto const n = rx_->read(data, len);
            if(n != 0)
                return static_cast<std::ptrdiff_t>(n);
            // Empty: EOF only when the peer closed AND everything it
            // sent before closing was drained (checked in that order —
            // close-then-drain must not lose the tail).
            return rx_->closed() && rx_->empty() ? -1 : 0;
        }

        void close() noexcept override
        {
            // Close BOTH rings: the peer's recv sees EOF (tx_ is its rx)
            // and our own pending recv unblocks permanently.
            tx_->close();
            rx_->close();
        }

    private:
        std::shared_ptr<detail::ByteRing> tx_;
        std::shared_ptr<detail::ByteRing> rx_;
    };

    //! The two ends of a fresh in-process duplex pipe with \p capacity
    //! bytes of buffer per direction. Each end is SPSC: one thread may
    //! drive each end (the front door's poll thread on one, a client's
    //! on the other).
    [[nodiscard]] inline auto makePipePair(std::size_t capacity = 1 << 16)
        -> std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
    {
        auto aToB = std::make_shared<detail::ByteRing>(capacity);
        auto bToA = std::make_shared<detail::ByteRing>(capacity);
        return {std::make_unique<PipeTransport>(aToB, bToA), std::make_unique<PipeTransport>(bToA, aToB)};
    }
} // namespace alpaka::net
