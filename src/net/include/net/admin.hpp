/// \file net::AdminProvider — the pluggable back end of the in-band
/// admin plane (DESIGN.md §11.1).
///
/// The front door SPEAKS the admin frame family but does not KNOW what
/// a metrics scrape or a health report contains: obs sits above net in
/// the library graph (the layers record without knowing about their
/// exporters), so the door delegates admin requests through this
/// interface and obs::AdminPlane implements it over the Registry, the
/// health model, and the trace collector. A door with no provider
/// answers every admin request with Status::BadRequest — tenant traffic
/// is unaffected either way.
#pragma once

#include "net/wire.hpp"

#include <cstdint>
#include <string>

namespace alpaka::net
{
    class AdminProvider
    {
    public:
        virtual ~AdminProvider() = default;

        //! Handles one admin request: \p type is an admin FrameType
        //! (isAdminRequest(type) holds), \p op its tmpl field (a TraceOp
        //! for TraceControl, 0 otherwise). Fills \p body with the
        //! response text — the door streams it back in bounded AdminData
        //! chunks — and returns the final chunk's wire status. Called on
        //! the door's poll thread: it may allocate (the admin plane is
        //! deliberately off the tenant hot path) but must not block.
        virtual auto handleAdmin(FrameType type, std::uint32_t op, std::string& body) -> Status = 0;
    };
} // namespace alpaka::net
