/// \file net::FrontDoor — the server side of the wire protocol
/// (DESIGN.md §9.2).
///
/// One FrontDoor is a compile-time-sized connection table driven by ONE
/// poll thread: accept() parks a transport in a vacant entry, poll(tnow)
/// advances every connection's session state machine — flush staged
/// frames, encode completed responses, reassemble and decode incoming
/// frames — and never blocks, never calls the OS (the transport does,
/// if it is a socket), and never allocates in the steady state:
///
///  * Zero-copy landing: a Request frame's payload is received DIRECTLY
///    into a per-connection slot buffer; admission hands the service a
///    PayloadView over that buffer, the template mutates it in place,
///    and the response frame is encoded from the same bytes. No payload
///    copy exists anywhere between transport and kernel (satellite a).
///  * Completion rides Future::then: the continuation (runs on a worker
///    thread) writes the slot's status and flips one atomic; the poll
///    thread picks the slot up on its next pass. The capture is one
///    pointer, so then()'s inline continuation slot keeps the path
///    allocation-free (serve/future.hpp).
///  * Flow control by NOT reading: a connection whose slots are all
///    busy is simply not drained further — backpressure propagates
///    through the transport's bounded buffer to the client's window,
///    never by dropping a frame (invariant 20).
///  * Session life cycle: AwaitHello (first frame must bind a tenant)
///    → Open → Draining (peer sent Bye; in-flight requests finish,
///    responses flush, Bye is acked) → Reaping (transport closed;
///    late continuations land harmlessly in the slot table) → Vacant.
///    A protocol violation or decode error closes the connection after
///    a best-effort typed Error frame — a byte stream that lost frame
///    sync cannot be trusted further (satellite c's fuzz target).
///  * Fault sites (satellite b): net.poll_delay stalls a poll tick,
///    net.frame_drop / net.frame_duplicate / net.frame_truncate
///    perturb response frames at the staging boundary — deterministic,
///    seeded, compiled out of production builds (DESIGN.md §7.2).
///
/// Thread contract: accept/poll/stats from the single poll thread;
/// worker threads touch only slot atomics via continuations. The
/// Router (and its shards) must outlive the FrontDoor's last in-flight
/// request — drain or shut the router down before destroying the door.
#pragma once

#include "net/admin.hpp"
#include "net/config.hpp"
#include "net/router.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"

#include "serve/types.hpp"

#include "alpaka/core/fault.hpp"
#include "alpaka/core/trace.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>

namespace alpaka::net
{
    //! Maps a completed request's outcome to its wire status — the
    //! serve-layer failure taxonomy projected onto the protocol. Called
    //! on worker threads; the rethrow inspects an exception that was
    //! already allocated at throw time, so the success path (error ==
    //! nullptr) stays allocation-free.
    [[nodiscard]] inline auto statusOf(std::exception_ptr error) noexcept -> Status
    {
        if(error == nullptr)
            return Status::Ok;
        try
        {
            std::rethrow_exception(error);
        }
        catch(serve::DeadlineError const&)
        {
            return Status::Expired;
        }
        catch(serve::CancelledError const&)
        {
            return Status::Cancelled;
        }
        catch(serve::WorkerLostError const&)
        {
            return Status::WorkerLost;
        }
        catch(serve::OverloadError const&)
        {
            return Status::Overloaded;
        }
        catch(serve::AdmissionError const&)
        {
            return Status::Busy;
        }
        catch(...)
        {
            return Status::Failed;
        }
    }

    //! Poll-thread-local introspection counters (read them from the
    //! poll thread, like everything else on a FrontDoor).
    struct FrontDoorStats
    {
        std::uint64_t connectionsAccepted = 0;
        std::uint64_t connectionsClosed = 0;
        std::uint64_t framesIn = 0;
        std::uint64_t framesOut = 0;
        std::uint64_t requestsSubmitted = 0;
        std::uint64_t responsesOk = 0;
        std::uint64_t responsesError = 0;
        std::uint64_t admissionRejected = 0;
        //! Stall episodes: rx left undrained because every slot was busy
        //! (flow control engaged).
        std::uint64_t rxStalls = 0;
        //! \name injected-fault observations (chaos builds)
        //! @{
        std::uint64_t pollsDelayed = 0;
        std::uint64_t framesDropped = 0;
        std::uint64_t framesDuplicated = 0;
        std::uint64_t framesTruncated = 0;
        //! @}
        //! \name admin plane (DESIGN.md §11.1)
        //! @{
        std::uint64_t adminRequests = 0;
        std::uint64_t adminChunks = 0;
        //! @}
        //! Indexed by DecodeError.
        std::array<std::uint64_t, 8> decodeErrors{};
    };

    template<typename Cfg = DefaultCfg>
    class FrontDoor
    {
        static_assert(Cfg::maxTenantBytes <= Cfg::maxPayload, "a Hello payload is a frame payload");

    public:
        explicit FrontDoor(Router& router) noexcept : router_(router)
        {
        }

        FrontDoor(FrontDoor const&) = delete;
        auto operator=(FrontDoor const&) -> FrontDoor& = delete;

        //! Parks \p transport in a vacant connection entry awaiting its
        //! Hello. \returns false (transport dropped, peer sees EOF) when
        //! the table is full — the front door's own admission control.
        auto accept(std::unique_ptr<Transport> transport) -> bool
        {
            for(auto& c : conns_)
            {
                if(c.state != ConnState::Vacant)
                    continue;
                c.transport = std::move(transport);
                c.state = ConnState::AwaitHello;
                c.tenantLen = 0;
                c.rxHeaderHave = 0;
                c.headerDecoded = false;
                c.prepared = false;
                c.rxPayloadHave = 0;
                c.rxSlot = nullptr;
                c.rxPayloadDst = nullptr;
                c.stalled = false;
                c.txLen = 0;
                c.txSent = 0;
                c.truncateClose = false;
                c.byeQueued = false;
                c.adminActive = false;
                c.adminBody.clear();
                c.adminSent = 0;
                ++stats_.connectionsAccepted;
                return true;
            }
            return false;
        }

        //! One non-blocking pass over every connection. \p tnow anchors
        //! relative frame deadlines to the caller's clock (the core
        //! never reads a clock itself — SNIPPETS.md §1 discipline).
        //! \returns true when any byte or state moved (callers use this
        //! to decide between spinning and backing off).
        auto poll(std::chrono::steady_clock::time_point tnow) -> bool
        {
            try
            {
                ALPAKA_FAULT_POINT("net.poll_delay");
            }
            catch(fault::InjectedFault const&)
            {
                ++stats_.pollsDelayed;
                return false;
            }
            bool progress = false;
            for(auto& c : conns_)
                progress = pollConn(c, tnow) || progress;
            return progress;
        }

        [[nodiscard]] auto openConnections() const noexcept -> std::size_t
        {
            std::size_t n = 0;
            for(auto const& c : conns_)
                n += c.state != ConnState::Vacant ? 1 : 0;
            return n;
        }

        [[nodiscard]] auto stats() const noexcept -> FrontDoorStats const&
        {
            return stats_;
        }

        //! Plugs the admin back end in (nullptr detaches). Without one,
        //! admin requests are answered with a Status::BadRequest chunk —
        //! tenant traffic never depends on a provider. Poll-thread
        //! discipline applies: set it before the first poll or from the
        //! poll thread.
        void setAdminProvider(AdminProvider* provider) noexcept
        {
            admin_ = provider;
        }

        //! Force-closes every connection (no Bye handshake); keep
        //! polling until openConnections() == 0 to let late
        //! continuations land.
        void closeAll() noexcept
        {
            for(auto& c : conns_)
            {
                if(c.state == ConnState::Vacant || c.state == ConnState::Reaping)
                    continue;
                c.transport->close();
                c.state = ConnState::Reaping;
            }
        }

    private:
        enum class ConnState : std::uint8_t
        {
            Vacant,
            AwaitHello,
            Open,
            Draining,
            Reaping,
        };

        //! Slot states: the poll thread owns Free→Busy (and reads
        //! Done); the completing worker owns Busy→Done (release, paired
        //! with the poll thread's acquire — the only cross-thread edge
        //! in the front door).
        static constexpr std::uint8_t slotFree = 0;
        static constexpr std::uint8_t slotBusy = 1;
        static constexpr std::uint8_t slotDone = 2;

        struct Slot
        {
            std::atomic<std::uint8_t> state{slotFree};
            Status status = Status::Ok;
            std::uint64_t reqId = 0;
            std::uint32_t tmpl = 0;
            std::uint32_t len = 0;
            std::array<std::byte, Cfg::maxPayload> payload{};
        };

        struct Conn
        {
            std::unique_ptr<Transport> transport;
            ConnState state = ConnState::Vacant;
            std::array<char, Cfg::maxTenantBytes> tenant{};
            std::size_t tenantLen = 0;
            //! \name rx reassembly (one frame at a time)
            //! @{
            std::array<std::byte, headerSize> rxHeader{};
            std::size_t rxHeaderHave = 0;
            FrameHeader header{};
            bool headerDecoded = false;
            bool prepared = false; //!< payload destination chosen
            Slot* rxSlot = nullptr;
            std::byte* rxPayloadDst = nullptr;
            std::size_t rxPayloadHave = 0;
            bool stalled = false;
            //! @}
            //! \name tx staging (two frames: the duplicate fault needs
            //! room for both copies)
            //! @{
            std::array<std::byte, 2 * (headerSize + Cfg::maxPayload)> tx{};
            std::size_t txLen = 0;
            std::size_t txSent = 0;
            bool truncateClose = false;
            bool byeQueued = false;
            //! @}
            //! \name admin response streaming (the one part of a
            //! connection that allocates — deliberately off the tenant
            //! hot path; the ALLOCTRACK audit measures the request slots,
            //! which admin traffic never touches)
            //! @{
            std::string adminBody;
            std::size_t adminSent = 0;
            std::uint64_t adminReqId = 0;
            std::uint32_t adminOp = 0;
            Status adminStatus = Status::Ok;
            bool adminActive = false;
            //! @}
            std::array<Slot, Cfg::slotsPerConnection> slots{};
        };

        static constexpr auto errIdx(DecodeError e) noexcept -> std::size_t
        {
            return static_cast<std::size_t>(e);
        }

        auto pollConn(Conn& c, std::chrono::steady_clock::time_point tnow) -> bool
        {
            if(c.state == ConnState::Vacant)
                return false;
            if(c.state == ConnState::Reaping)
                return reap(c);
            bool progress = flushTx(c);
            if(c.state == ConnState::Reaping)
                return true;
            progress = pumpResponses(c) || progress;
            progress = pumpAdmin(c) || progress;
            progress = flushTx(c) || progress;
            if(c.state == ConnState::Reaping)
                return true;
            if(c.state == ConnState::Draining && !c.byeQueued && allSlotsFree(c) && !c.adminActive)
            {
                FrameHeader bye;
                bye.type = FrameType::Bye;
                bye.payloadLen = 0;
                if(stageFrame(c, bye, nullptr, false))
                {
                    c.byeQueued = true;
                    progress = true;
                }
            }
            if(c.state == ConnState::Draining && c.byeQueued)
            {
                progress = flushTx(c) || progress;
                if(c.state == ConnState::Draining && c.txLen == 0)
                {
                    c.transport->close();
                    c.state = ConnState::Reaping;
                }
                return progress; // drained peers send nothing further
            }
            progress = pumpRx(c, tnow) || progress;
            return progress;
        }

        auto reap(Conn& c) -> bool
        {
            bool progress = false;
            bool allFree = true;
            for(auto& s : c.slots)
            {
                auto const st = s.state.load(std::memory_order_acquire);
                if(st == slotDone)
                {
                    s.state.store(slotFree, std::memory_order_relaxed);
                    progress = true;
                }
                else if(st == slotBusy)
                    allFree = false;
            }
            if(allFree)
            {
                c.transport.reset();
                c.state = ConnState::Vacant;
                ++stats_.connectionsClosed;
                progress = true;
            }
            return progress;
        }

        [[nodiscard]] auto allSlotsFree(Conn& c) const noexcept -> bool
        {
            for(auto& s : c.slots)
                if(s.state.load(std::memory_order_acquire) != slotFree)
                    return false;
            return true;
        }

        auto flushTx(Conn& c) -> bool
        {
            if(c.txLen == 0)
                return false;
            auto const n = c.transport->send(c.tx.data() + c.txSent, c.txLen - c.txSent);
            if(n < 0)
            {
                closeConn(c);
                return true;
            }
            if(n == 0)
                return false;
            c.txSent += static_cast<std::size_t>(n);
            if(c.txSent == c.txLen)
            {
                c.txLen = 0;
                c.txSent = 0;
                if(c.truncateClose)
                    closeConn(c);
            }
            return true;
        }

        //! Encodes one frame into the staging buffer; \p faults opts the
        //! frame into the chaos sites. \returns false (retry next poll)
        //! when the staging has no room.
        auto stageFrame(Conn& c, FrameHeader h, std::byte const* payload, bool faults) -> bool
        {
            bool drop = false;
            bool duplicate = false;
            bool truncate = false;
            if(faults)
            {
                try
                {
                    ALPAKA_FAULT_POINT("net.frame_drop");
                }
                catch(fault::InjectedFault const&)
                {
                    drop = true;
                }
                try
                {
                    ALPAKA_FAULT_POINT("net.frame_duplicate");
                }
                catch(fault::InjectedFault const&)
                {
                    duplicate = true;
                }
                try
                {
                    ALPAKA_FAULT_POINT("net.frame_truncate");
                }
                catch(fault::InjectedFault const&)
                {
                    truncate = true;
                }
            }
            if(drop)
            {
                ++stats_.framesDropped;
                return true; // consumed, never sent
            }
            auto const frameBytes = headerSize + h.payloadLen;
            auto const copies = duplicate ? std::size_t{2} : std::size_t{1};
            if(c.tx.size() - c.txLen < copies * frameBytes)
                return false;
            for(std::size_t i = 0; i < copies; ++i)
            {
                encodeHeader(h, c.tx.data() + c.txLen, payload, h.payloadLen);
                if(h.payloadLen != 0)
                    std::memcpy(c.tx.data() + c.txLen + headerSize, payload, h.payloadLen);
                c.txLen += frameBytes;
                ++stats_.framesOut;
            }
            if(duplicate)
                ++stats_.framesDuplicated;
            if(truncate)
            {
                // Drop the back half of the (last) staged frame and cut
                // the connection once the front half left: the peer sees
                // a frame truncated by a mid-frame EOF.
                c.txLen -= frameBytes - frameBytes / 2;
                c.truncateClose = true;
                ++stats_.framesTruncated;
            }
            return true;
        }

        auto pumpResponses(Conn& c) -> bool
        {
            bool progress = false;
            for(auto& slot : c.slots)
            {
                if(slot.state.load(std::memory_order_acquire) != slotDone)
                    continue;
                FrameHeader h;
                h.type = slot.status == Status::Ok ? FrameType::Response : FrameType::Error;
                h.status = slot.status;
                h.tmpl = slot.tmpl;
                h.reqId = slot.reqId;
                h.payloadLen = slot.status == Status::Ok ? slot.len : 0;
                if(!stageFrame(c, h, slot.payload.data(), true))
                    break; // staging full; retry next poll
                ALPAKA_TRACE_ASYNC_END("net.request", slot.reqId);
                slot.status == Status::Ok ? ++stats_.responsesOk : ++stats_.responsesError;
                slot.state.store(slotFree, std::memory_order_relaxed);
                progress = true;
            }
            return progress;
        }

        //! Chooses the landing area of the decoded header's payload (and
        //! validates the frame type against the session state). \returns
        //! false when the connection must wait (no free slot — flow
        //! control) or was closed (protocol violation).
        auto prepare(Conn& c) -> bool
        {
            switch(c.header.type)
            {
            case FrameType::Hello:
                if(c.state != ConnState::AwaitHello || c.header.payloadLen > Cfg::maxTenantBytes)
                {
                    closeWithError(c);
                    return false;
                }
                c.rxPayloadDst = reinterpret_cast<std::byte*>(c.tenant.data());
                c.prepared = true;
                return true;
            case FrameType::Request:
            {
                if(c.state == ConnState::AwaitHello)
                {
                    closeWithError(c);
                    return false;
                }
                for(auto& s : c.slots)
                {
                    if(s.state.load(std::memory_order_acquire) == slotFree)
                    {
                        c.rxSlot = &s;
                        c.rxPayloadDst = s.payload.data();
                        c.prepared = true;
                        c.stalled = false;
                        return true;
                    }
                }
                if(!c.stalled)
                {
                    c.stalled = true;
                    ++stats_.rxStalls;
                }
                return false; // backpressure: leave bytes in the transport
            }
            case FrameType::Bye:
                if(c.header.payloadLen != 0)
                {
                    closeWithError(c);
                    return false;
                }
                c.prepared = true;
                return true;
            case FrameType::MetricsScrape:
            case FrameType::HealthCheck:
            case FrameType::StatsSnapshot:
            case FrameType::TraceControl:
            {
                if(c.state == ConnState::AwaitHello)
                {
                    closeWithError(c);
                    return false;
                }
                if(auto const err = validateAdmin(c.header); err != DecodeError::None)
                {
                    ++stats_.decodeErrors[errIdx(err)];
                    closeWithError(c);
                    return false;
                }
                // One admin stream per connection at a time: leave the
                // frame in the transport until the active response has
                // fully streamed — the same backpressure-by-not-reading
                // discipline as a slot-full request (invariant 20).
                if(c.adminActive)
                    return false;
                c.prepared = true;
                return true;
            }
            default:
                // HelloAck/Response/Error/AdminData are server-to-client
                // only.
                closeWithError(c);
                return false;
            }
        }

        void handleFrame(Conn& c, std::chrono::steady_clock::time_point tnow)
        {
            ++stats_.framesIn;
            switch(c.header.type)
            {
            case FrameType::Hello:
            {
                c.tenantLen = c.header.payloadLen;
                FrameHeader ack;
                ack.type = FrameType::HelloAck;
                ack.payloadLen = 0;
                stageFrame(c, ack, nullptr, false); // staging is empty pre-Open
                c.state = ConnState::Open;
                return;
            }
            case FrameType::Request:
                ALPAKA_TRACE_INSTANT("net.frame_decode", c.header.reqId);
                submitSlot(c, *c.rxSlot, tnow);
                return;
            case FrameType::Bye:
                c.state = ConnState::Draining;
                return;
            case FrameType::MetricsScrape:
            case FrameType::HealthCheck:
            case FrameType::StatsSnapshot:
            case FrameType::TraceControl:
                handleAdmin(c);
                return;
            default:
                return; // unreachable: prepare() closed on these
            }
        }

        //! Materializes one admin response via the provider and arms the
        //! chunked stream. Runs on the poll thread; the provider may
        //! allocate (off the tenant hot path), but a provider that throws
        //! still yields a well-formed (Failed) final chunk — the admin
        //! plane never kills a session that spoke the protocol correctly.
        void handleAdmin(Conn& c)
        {
            ++stats_.adminRequests;
            c.adminBody.clear();
            c.adminReqId = c.header.reqId;
            c.adminOp = c.header.tmpl;
            c.adminSent = 0;
            if(admin_ == nullptr)
                c.adminStatus = Status::BadRequest;
            else
            {
                try
                {
                    c.adminStatus = admin_->handleAdmin(c.header.type, c.header.tmpl, c.adminBody);
                }
                catch(...)
                {
                    c.adminBody.clear();
                    c.adminStatus = Status::Failed;
                }
            }
            c.adminActive = true;
            pumpAdmin(c);
        }

        //! Streams the active admin response as bounded AdminData chunks:
        //! at most Cfg::maxPayload bytes per frame, Status::Partial on
        //! every chunk but the last (which carries the provider's final
        //! status). Stops the moment staging or the transport is full and
        //! resumes next poll — the admin plane obeys the same never-block
        //! discipline as everything else on the door.
        auto pumpAdmin(Conn& c) -> bool
        {
            if(!c.adminActive)
                return false;
            bool progress = false;
            while(true)
            {
                auto const remaining = c.adminBody.size() - c.adminSent;
                auto const chunk = remaining < Cfg::maxPayload ? remaining : Cfg::maxPayload;
                FrameHeader h;
                h.type = FrameType::AdminData;
                h.status = chunk == remaining ? c.adminStatus : Status::Partial;
                h.tmpl = c.adminOp;
                h.reqId = c.adminReqId;
                h.payloadLen = static_cast<std::uint32_t>(chunk);
                if(!stageFrame(c, h, reinterpret_cast<std::byte const*>(c.adminBody.data()) + c.adminSent, false))
                    return progress; // staging full; resume next poll
                ++stats_.adminChunks;
                c.adminSent += chunk;
                progress = true;
                if(c.adminSent == c.adminBody.size())
                {
                    c.adminActive = false;
                    c.adminBody.clear();
                    c.adminSent = 0;
                    return progress;
                }
                flushTx(c); // hand staged chunks to the transport mid-stream
                if(c.state == ConnState::Reaping)
                    return true;
            }
        }

        void submitSlot(Conn& c, Slot& slot, std::chrono::steady_clock::time_point tnow)
        {
            slot.reqId = c.header.reqId;
            slot.tmpl = c.header.tmpl;
            slot.len = c.header.payloadLen;
            // The wire reqId is the request's trace correlation id: every
            // layer below (router, serve, graph) tags its spans with the
            // same value, so one Perfetto async track spans decode →
            // route → queue → execute → response staging.
            ALPAKA_TRACE_ASYNC_BEGIN("net.request", slot.reqId);
            if(c.state == ConnState::Draining)
            {
                slot.status = Status::Draining;
                slot.state.store(slotDone, std::memory_order_relaxed);
                return;
            }
            serve::Request req;
            req.tmpl = c.header.tmpl;
            req.tenant = std::string_view(c.tenant.data(), c.tenantLen);
            req.payload = serve::PayloadView(slot.payload.data(), slot.len);
            req.traceId = slot.reqId;
            if(c.header.deadlineUs != 0)
                req.deadline = tnow + std::chrono::microseconds(c.header.deadlineUs);
            slot.state.store(slotBusy, std::memory_order_relaxed);
            try
            {
                // One-pointer capture: rides then()'s inline slot, no
                // allocation (serve/future.hpp).
                router_.submit(req).then(
                    [slotPtr = &slot](std::exception_ptr e) noexcept
                    {
                        slotPtr->status = statusOf(e);
                        ALPAKA_TRACE_INSTANT("net.completion", slotPtr->reqId);
                        slotPtr->state.store(slotDone, std::memory_order_release);
                    });
                ++stats_.requestsSubmitted;
            }
            catch(serve::AdmissionError const&) // ShardBusyError included
            {
                slot.status = Status::Busy;
                slot.state.store(slotDone, std::memory_order_relaxed);
                ++stats_.admissionRejected;
            }
            catch(UsageError const&)
            {
                slot.status = Status::BadRequest;
                slot.state.store(slotDone, std::memory_order_relaxed);
            }
        }

        auto pumpRx(Conn& c, std::chrono::steady_clock::time_point tnow) -> bool
        {
            bool progress = false;
            // Bounded frames per connection per poll: keeps one chatty
            // connection from starving the table.
            for(int frame = 0; frame < 16; ++frame)
            {
                if(!c.headerDecoded)
                {
                    auto const n = c.transport->recv(c.rxHeader.data() + c.rxHeaderHave, headerSize - c.rxHeaderHave);
                    if(n < 0)
                    {
                        closeConn(c);
                        return true;
                    }
                    if(n == 0)
                        return progress;
                    c.rxHeaderHave += static_cast<std::size_t>(n);
                    progress = true;
                    if(c.rxHeaderHave < headerSize)
                        return progress;
                    auto const err = decodeHeader(c.rxHeader.data(), headerSize, Cfg::maxPayload, c.header);
                    if(err != DecodeError::None)
                    {
                        ++stats_.decodeErrors[errIdx(err)];
                        closeWithError(c);
                        return true;
                    }
                    c.headerDecoded = true;
                    c.prepared = false;
                    c.rxPayloadHave = 0;
                    c.rxSlot = nullptr;
                    c.rxPayloadDst = nullptr;
                }
                if(!c.prepared)
                {
                    if(!prepare(c))
                        return progress;
                }
                if(c.header.payloadLen != 0 && c.rxPayloadHave < c.header.payloadLen)
                {
                    auto const n
                        = c.transport->recv(c.rxPayloadDst + c.rxPayloadHave, c.header.payloadLen - c.rxPayloadHave);
                    if(n < 0)
                    {
                        closeConn(c);
                        return true;
                    }
                    if(n == 0)
                        return progress;
                    c.rxPayloadHave += static_cast<std::size_t>(n);
                    progress = true;
                    if(c.rxPayloadHave < c.header.payloadLen)
                        return progress;
                }
                if(verifyCrc(c.rxHeader.data(), c.rxPayloadDst, c.header.payloadLen) != DecodeError::None)
                {
                    ++stats_.decodeErrors[errIdx(DecodeError::BadCrc)];
                    closeWithError(c);
                    return true;
                }
                handleFrame(c, tnow);
                progress = true;
                c.headerDecoded = false;
                c.prepared = false;
                c.rxHeaderHave = 0;
                if(c.state == ConnState::Reaping || c.state == ConnState::Draining)
                    return progress;
            }
            return progress;
        }

        //! Best-effort typed rejection, then cut: one Error frame (echoes
        //! the offending reqId when a header got far enough to carry
        //! one), one flush attempt, close. A stream that lost frame sync
        //! cannot be re-synchronized — closing IS the error recovery.
        void closeWithError(Conn& c)
        {
            if(c.txLen == 0 && c.transport != nullptr)
            {
                FrameHeader err;
                err.type = FrameType::Error;
                err.status = Status::BadRequest;
                err.reqId = c.headerDecoded || c.rxHeaderHave == headerSize ? c.header.reqId : 0;
                err.payloadLen = 0;
                if(stageFrame(c, err, nullptr, false))
                {
                    ++stats_.responsesError;
                    flushTx(c);
                }
            }
            closeConn(c);
        }

        void closeConn(Conn& c)
        {
            if(c.transport != nullptr)
                c.transport->close();
            c.state = ConnState::Reaping;
        }

        Router& router_;
        AdminProvider* admin_ = nullptr;
        FrontDoorStats stats_{};
        std::array<Conn, Cfg::maxConnections> conns_{};
    };
} // namespace alpaka::net
