/// \file net::Client — the client side of the wire protocol
/// (DESIGN.md §9.2).
///
/// A windowed, polled, compile-time-sized peer of the FrontDoor: hello()
/// binds the connection to a tenant (the name travels once — request
/// frames carry no strings), trySubmit() encodes request frames into a
/// fixed staging buffer under an in-flight window, poll() flushes
/// staging and dispatches response frames to a caller-supplied handler
/// (static polymorphism — no std::function, no allocation), bye()
/// starts the drain handshake. Strict on protocol errors: any decode
/// failure records its typed code and closes the connection —
/// rethrowError() raises the matching net::ProtocolError subclass for
/// callers who want the exception surface (satellite c).
///
/// Single-threaded like the front door: one thread drives one client.
#pragma once

#include "net/config.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"

#include "alpaka/core/error.hpp"

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <utility>

namespace alpaka::net
{
    template<typename Cfg = DefaultCfg>
    class Client
    {
        static_assert(Cfg::window >= 1 && Cfg::txFrames >= 1);

    public:
        //! One completed request, as the poll() handler sees it. The
        //! payload points into the client's receive buffer — valid only
        //! during the handler call.
        struct Response
        {
            std::uint64_t reqId = 0;
            Status status = Status::Ok;
            std::uint32_t tmpl = 0;
            std::byte const* payload = nullptr;
            std::size_t payloadLen = 0;
        };

        explicit Client(std::unique_ptr<Transport> transport) noexcept : transport_(std::move(transport))
        {
        }

        Client(Client const&) = delete;
        auto operator=(Client const&) -> Client& = delete;

        //! Stages the Hello binding this connection to \p tenant; poll
        //! until ready(). \throws UsageError when already helloed or the
        //! name exceeds Cfg::maxTenantBytes.
        void hello(std::string_view tenant)
        {
            if(state_ != State::Fresh)
                throw UsageError("net::Client::hello: connection already bound");
            if(tenant.size() > Cfg::maxTenantBytes)
                throw UsageError("net::Client::hello: tenant name exceeds Cfg::maxTenantBytes");
            FrameHeader h;
            h.type = FrameType::Hello;
            h.payloadLen = static_cast<std::uint32_t>(tenant.size());
            stage(h, reinterpret_cast<std::byte const*>(tenant.data()));
            state_ = State::HelloSent;
        }

        //! HelloAck received; requests may flow.
        [[nodiscard]] auto ready() const noexcept -> bool
        {
            return state_ == State::Ready;
        }
        //! Bye handshake finished or connection lost.
        [[nodiscard]] auto closed() const noexcept -> bool
        {
            return state_ == State::Closed;
        }
        [[nodiscard]] auto inFlight() const noexcept -> std::size_t
        {
            return inFlight_;
        }
        //! First protocol error observed (None when the stream has been
        //! clean); the connection closes on the first one.
        [[nodiscard]] auto lastError() const noexcept -> DecodeError
        {
            return error_;
        }
        //! Raises the typed ProtocolError subclass of lastError().
        void rethrowError() const
        {
            if(error_ != DecodeError::None)
                raise(error_);
        }

        //! Encodes one request frame if the window and staging allow.
        //! \p deadlineUs is the relative deadline budget (0 = none), \p
        //! shardHint is advisory (see FrameHeader). \returns the
        //! assigned reqId, or 0 when blocked (window full, staging
        //! full, or not ready) — poll and retry.
        auto trySubmit(
            std::uint32_t tmpl,
            std::byte const* payload,
            std::size_t len,
            std::uint32_t deadlineUs = 0,
            std::uint16_t shardHint = 0) -> std::uint64_t
        {
            if(state_ != State::Ready || inFlight_ >= Cfg::window || len > Cfg::maxPayload
               || tx_.size() - txLen_ < headerSize + len)
                return 0;
            FrameHeader h;
            h.type = FrameType::Request;
            h.tmpl = tmpl;
            h.reqId = nextId_++;
            h.payloadLen = static_cast<std::uint32_t>(len);
            h.deadlineUs = deadlineUs;
            h.shardHint = shardHint;
            stage(h, payload);
            ++inFlight_;
            return h.reqId;
        }

        //! Stages one admin request (MetricsScrape/HealthCheck/
        //! StatsSnapshot/TraceControl; \p op is TraceControl's TraceOp,
        //! ignored otherwise). The response arrives through poll()'s
        //! handler as one or more AdminData frames sharing the returned
        //! reqId: Status::Partial marks a non-final chunk, any other
        //! status finishes the stream (concatenate the payloads for the
        //! full text). Counts against the same in-flight window as
        //! requests. \returns the reqId, or 0 when blocked — poll and
        //! retry. \throws UsageError for a non-admin frame type.
        auto tryAdmin(FrameType type, std::uint32_t op = 0) -> std::uint64_t
        {
            if(!isAdminRequest(type))
                throw UsageError("net::Client::tryAdmin: not an admin frame type");
            if(state_ != State::Ready || inFlight_ >= Cfg::window || tx_.size() - txLen_ < headerSize)
                return 0;
            FrameHeader h;
            h.type = type;
            h.tmpl = op;
            h.reqId = nextId_++;
            h.payloadLen = 0;
            stage(h, nullptr);
            ++inFlight_;
            return h.reqId;
        }

        //! Starts the drain: no further submits; the server finishes
        //! in-flight work, responses keep arriving, then Bye is acked
        //! and closed() turns true. Callable in any live state.
        void bye()
        {
            if(state_ == State::Draining || state_ == State::Closed)
                return;
            state_ = State::Draining;
            byePending_ = true;
        }

        //! One non-blocking pass: flush staged frames, receive and
        //! dispatch responses. \p onResponse is invoked once per
        //! Response/Error frame. \returns true on any progress.
        template<typename F>
        auto poll(F&& onResponse) -> bool
        {
            bool progress = flushTx();
            if(byePending_ && tx_.size() - txLen_ >= headerSize)
            {
                FrameHeader h;
                h.type = FrameType::Bye;
                h.payloadLen = 0;
                stage(h, nullptr);
                byePending_ = false;
                progress = flushTx() || progress;
            }
            if(state_ == State::Closed)
                return progress;
            // Bounded frames per poll, mirroring the front door.
            for(int frame = 0; frame < 16; ++frame)
            {
                if(rxHeaderHave_ < headerSize)
                {
                    auto const n = transport_->recv(rxHeader_.data() + rxHeaderHave_, headerSize - rxHeaderHave_);
                    if(n < 0)
                    {
                        // EOF mid-frame is a truncated frame; between
                        // frames it is the peer's close.
                        if(rxHeaderHave_ != 0)
                            fail(DecodeError::Truncated);
                        else
                            shut();
                        return true;
                    }
                    if(n == 0)
                        return progress;
                    rxHeaderHave_ += static_cast<std::size_t>(n);
                    progress = true;
                    if(rxHeaderHave_ < headerSize)
                        return progress;
                    auto const err = decodeHeader(rxHeader_.data(), headerSize, Cfg::maxPayload, header_);
                    if(err != DecodeError::None)
                    {
                        fail(err);
                        return true;
                    }
                    rxPayloadHave_ = 0;
                }
                if(header_.payloadLen != 0 && rxPayloadHave_ < header_.payloadLen)
                {
                    auto const n
                        = transport_->recv(rxPayload_.data() + rxPayloadHave_, header_.payloadLen - rxPayloadHave_);
                    if(n < 0)
                    {
                        fail(DecodeError::Truncated);
                        return true;
                    }
                    if(n == 0)
                        return progress;
                    rxPayloadHave_ += static_cast<std::size_t>(n);
                    progress = true;
                    if(rxPayloadHave_ < header_.payloadLen)
                        return progress;
                }
                if(verifyCrc(rxHeader_.data(), rxPayload_.data(), header_.payloadLen) != DecodeError::None)
                {
                    fail(DecodeError::BadCrc);
                    return true;
                }
                rxHeaderHave_ = 0;
                progress = true;
                if(!dispatch(onResponse))
                    return true;
                if(state_ == State::Closed)
                    return true;
            }
            return progress;
        }

    private:
        enum class State : std::uint8_t
        {
            Fresh,
            HelloSent,
            Ready,
            Draining,
            Closed,
        };

        //! Routes one received frame. \returns false when the
        //! connection died on it.
        template<typename F>
        auto dispatch(F&& onResponse) -> bool
        {
            switch(header_.type)
            {
            case FrameType::HelloAck:
                if(state_ != State::HelloSent)
                {
                    fail(DecodeError::BadType);
                    return false;
                }
                state_ = State::Ready;
                return true;
            case FrameType::Response:
            case FrameType::Error:
                if(state_ != State::Ready && state_ != State::Draining)
                {
                    fail(DecodeError::BadType);
                    return false;
                }
                if(inFlight_ != 0)
                    --inFlight_;
                onResponse(Response{
                    header_.reqId,
                    header_.status,
                    header_.tmpl,
                    rxPayload_.data(),
                    header_.payloadLen});
                return true;
            case FrameType::AdminData:
                if(state_ != State::Ready && state_ != State::Draining)
                {
                    fail(DecodeError::BadType);
                    return false;
                }
                // A chunk of an admin response stream: only the FINAL
                // chunk (status != Partial) retires the window slot its
                // request took.
                if(header_.status != Status::Partial && inFlight_ != 0)
                    --inFlight_;
                onResponse(Response{
                    header_.reqId,
                    header_.status,
                    header_.tmpl,
                    rxPayload_.data(),
                    header_.payloadLen});
                return true;
            case FrameType::Bye:
                // The server's drain ack (or its own shutdown notice).
                shut();
                return true;
            default:
                // Hello/Request and the admin requests are
                // client-to-server only; receiving one means the stream
                // is not talking our protocol.
                fail(DecodeError::BadType);
                return false;
            }
        }

        auto flushTx() -> bool
        {
            if(txLen_ == 0)
                return false;
            auto const n = transport_->send(tx_.data() + txSent_, txLen_ - txSent_);
            if(n < 0)
            {
                shut();
                return true;
            }
            if(n == 0)
                return false;
            txSent_ += static_cast<std::size_t>(n);
            if(txSent_ == txLen_)
            {
                txLen_ = 0;
                txSent_ = 0;
            }
            return true;
        }

        //! Appends one frame to staging (caller checked the room).
        void stage(FrameHeader const& h, std::byte const* payload)
        {
            encodeHeader(h, tx_.data() + txLen_, payload, h.payloadLen);
            if(h.payloadLen != 0)
                std::memcpy(tx_.data() + txLen_ + headerSize, payload, h.payloadLen);
            txLen_ += headerSize + h.payloadLen;
        }

        void fail(DecodeError err) noexcept
        {
            if(error_ == DecodeError::None)
                error_ = err;
            shut();
        }

        void shut() noexcept
        {
            transport_->close();
            state_ = State::Closed;
        }

        std::unique_ptr<Transport> transport_;
        State state_ = State::Fresh;
        DecodeError error_ = DecodeError::None;
        std::uint64_t nextId_ = 1;
        std::size_t inFlight_ = 0;
        bool byePending_ = false;
        std::array<std::byte, headerSize> rxHeader_{};
        std::size_t rxHeaderHave_ = 0;
        FrameHeader header_{};
        std::size_t rxPayloadHave_ = 0;
        std::array<std::byte, Cfg::maxPayload> rxPayload_{};
        std::array<std::byte, Cfg::txFrames*(headerSize + Cfg::maxPayload)> tx_{};
        std::size_t txLen_ = 0;
        std::size_t txSent_ = 0;
    };
} // namespace alpaka::net
