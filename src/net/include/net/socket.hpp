/// \file Loopback-socket transport — the ONLY place the net subsystem
/// touches the OS (DESIGN.md §9.1).
///
/// The zenoh-pico platform-layer split: the protocol core (wire codec,
/// session state machines, router) is pure polled C++ over the abstract
/// net::Transport; this header is the swap-in implementation over a
/// non-blocking TCP socket, used by the load-generator example to show
/// the stack runs over a real kernel byte stream unchanged. Everything
/// POSIX lives in socket.cpp.
#pragma once

#include "net/transport.hpp"

#include <cstdint>
#include <memory>

namespace alpaka::net
{
    //! A connected non-blocking TCP socket as a Transport: send/recv
    //! map to the socket calls with EAGAIN reported as would-block (0)
    //! and EOF/reset as closed (-1) — the exact Transport contract.
    class SocketTransport final : public Transport
    {
    public:
        //! Takes ownership of connected descriptor \p fd (made
        //! non-blocking here).
        explicit SocketTransport(int fd);
        ~SocketTransport() override;

        auto send(std::byte const* data, std::size_t len) noexcept -> std::ptrdiff_t override;
        auto recv(std::byte* data, std::size_t len) noexcept -> std::ptrdiff_t override;
        void close() noexcept override;

    private:
        int fd_;
    };

    //! Listening socket on 127.0.0.1 (ephemeral port when \p port == 0);
    //! accept() is polled like everything else in this subsystem.
    class SocketListener
    {
    public:
        //! \throws Error when bind/listen fails.
        explicit SocketListener(std::uint16_t port = 0);
        ~SocketListener();

        SocketListener(SocketListener const&) = delete;
        auto operator=(SocketListener const&) -> SocketListener& = delete;

        //! The bound port (useful after an ephemeral bind).
        [[nodiscard]] auto port() const noexcept -> std::uint16_t
        {
            return port_;
        }

        //! Non-blocking accept: nullptr when no connection is pending.
        [[nodiscard]] auto accept() -> std::unique_ptr<Transport>;

    private:
        int fd_;
        std::uint16_t port_ = 0;
    };

    //! Connects to 127.0.0.1:\p port. \throws Error on failure (the
    //! connect itself blocks briefly — loopback; the returned transport
    //! is non-blocking).
    [[nodiscard]] auto connectLoopback(std::uint16_t port) -> std::unique_ptr<Transport>;
} // namespace alpaka::net
