/// \file Compile-time sizing of the net session layer (DESIGN.md §9.2).
///
/// Everything the front door and the client allocate is sized HERE, at
/// compile time — connection table, per-connection request slots,
/// payload capacity, client window — so a session's entire footprint is
/// one fixed-size object and the steady state has nothing left to
/// allocate (the zenoh-pico discipline, SNIPPETS.md §1). Both endpoints
/// of a connection must agree on maxPayload (it bounds what the decoder
/// accepts); instantiating FrontDoor and Client from the same Cfg makes
/// that agreement structural.
#pragma once

#include <cstddef>

namespace alpaka::net
{
    struct DefaultCfg
    {
        //! Connection-table capacity of a FrontDoor.
        static constexpr std::size_t maxConnections = 8;
        //! In-flight request slots per connection: the flow-control
        //! bound — the front door stops READING a connection whose slots
        //! are all busy (backpressure by not draining the transport,
        //! never by dropping).
        static constexpr std::size_t slotsPerConnection = 16;
        //! Payload capacity per frame; a frame announcing more is
        //! rejected as Oversized before any payload byte is read.
        static constexpr std::size_t maxPayload = 256;
        //! Tenant-name capacity (the Hello payload).
        static constexpr std::size_t maxTenantBytes = 48;
        //! Client-side in-flight window (requests submitted, response
        //! not yet received).
        static constexpr std::size_t window = 16;
        //! Client tx staging, in frames: how many encoded frames may sit
        //! waiting for the transport to accept them.
        static constexpr std::size_t txFrames = 4;
    };
} // namespace alpaka::net
