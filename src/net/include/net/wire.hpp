/// \file Statically-sized wire protocol of the network front door
/// (DESIGN.md §9.1).
///
/// The design debt this layer pays off is the zenoh-pico discipline the
/// serving stack already lives by (SNIPPETS.md §1): everything sized at
/// compile time, nothing blocking, nothing allocating on the hot path.
/// A frame is a fixed 32-byte little-endian header plus at most
/// `maxPayload` payload bytes; the header is encoded and decoded field
/// by explicit field (no struct memcpy — the wire format is defined by
/// THIS file, not by the host ABI), and its CRC32 covers the header
/// (with the crc field zeroed) plus the payload, so a flipped bit
/// anywhere in the frame is caught before any byte reaches admission.
///
/// Error discipline: the decoder is called per received frame on the
/// poll path, so it must not throw and must not allocate — it returns a
/// DecodeError code. The typed exception surface (`ProtocolError` and
/// its per-code subclasses, `raise()`) exists for API boundaries: the
/// session layer counts codes on the hot path and raises typed only
/// when the caller asked for strict mode or a test inspects the
/// taxonomy (satellite c: corrupted input must yield TYPED errors,
/// never a crash, a hang, or an allocation).
#pragma once

#include "alpaka/core/error.hpp"

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace alpaka::net
{
    //! First two wire bytes of every frame (little-endian 0xA1FA).
    inline constexpr std::uint16_t wireMagic = 0xA1FA;
    //! Protocol revision; a mismatch rejects the connection at Hello.
    //! 2: admin frame family (MetricsScrape..AdminData, Status::Partial).
    inline constexpr std::uint8_t wireVersion = 2;

    //! Frame taxonomy. Hello/HelloAck bind a connection to a tenant
    //! (the tenant name travels ONCE, in the Hello payload — request
    //! frames carry no strings, sessions are tenant-affine); Request/
    //! Response carry work; Error is a response that failed before or
    //! during execution; Bye starts a client-initiated drain.
    //!
    //! The admin family (DESIGN.md §11.1) is the live ops plane:
    //! MetricsScrape / HealthCheck / StatsSnapshot / TraceControl are
    //! payload-less client→server requests (TraceControl's op travels
    //! in the tmpl field — see TraceOp); the server answers every one
    //! of them with a stream of AdminData frames whose payloads
    //! concatenate to the response text (Status::Partial on every chunk
    //! but the last, which carries the final status). Admin frames ride
    //! the same 32-byte header, the same CRC, and the same session —
    //! they share the connection with tenant traffic but never touch
    //! the zero-copy request slots.
    enum class FrameType : std::uint8_t
    {
        Hello = 0,
        HelloAck = 1,
        Request = 2,
        Response = 3,
        Error = 4,
        Bye = 5,
        MetricsScrape = 6, //!< → registry text exposition
        HealthCheck = 7, //!< → component health report
        StatsSnapshot = 8, //!< → timestamped snapshot + window rates
        TraceControl = 9, //!< tmpl = TraceOp (enable/disable/capture)
        AdminData = 10, //!< server→client response chunk
    };

    //! TraceControl operations, carried in the frame's tmpl field.
    enum class TraceOp : std::uint32_t
    {
        Disable = 0, //!< trace::setEnabled(false)
        Enable = 1, //!< trace::setEnabled(true)
        Capture = 2, //!< drain the collector, reply with trace JSON
    };

    //! Response/Error status — the wire projection of the serve-layer
    //! failure taxonomy (DESIGN.md §7.1), so a remote client can react
    //! (retry, back off, give up) exactly like an in-process one.
    enum class Status : std::uint16_t
    {
        Ok = 0,
        Busy = 1, //!< admission rejected (AdmissionError / shard busy)
        Expired = 2, //!< DeadlineError
        Cancelled = 3, //!< CancelledError
        WorkerLost = 4, //!< WorkerLostError
        Overloaded = 5, //!< OverloadError
        Failed = 6, //!< the template body itself threw
        BadRequest = 7, //!< protocol violation (unknown template, ...)
        Draining = 8, //!< service shutting down
        Partial = 9, //!< non-final AdminData chunk; more follow
    };

    //! Admin requests travel client→server, AdminData server→client.
    [[nodiscard]] constexpr auto isAdminRequest(FrameType t) noexcept -> bool
    {
        return t == FrameType::MetricsScrape || t == FrameType::HealthCheck || t == FrameType::StatsSnapshot
               || t == FrameType::TraceControl;
    }

    //! The fixed-layout frame header, as host-side fields. Wire layout
    //! (32 bytes, little-endian, offsets in brackets):
    //!
    //!   [0]  u16 magic        [2]  u8 version    [3]  u8 type
    //!   [4]  u16 status       [6]  u16 shardHint
    //!   [8]  u32 tmpl         [12] u32 payloadLen
    //!   [16] u64 reqId
    //!   [24] u32 deadlineUs   [28] u32 crc
    //!
    //! reqId correlates a Response/Error to its Request (client-chosen,
    //! echoed verbatim). deadlineUs is a RELATIVE budget (0 = none) —
    //! absolute time points do not survive a wire hop between clocks.
    //! shardHint is advisory: the router's tenant-affine hash decides,
    //! the hint lets tests pin a shard. crc is CRC32 (reflected
    //! 0xEDB88320) over the 32 header bytes with crc itself zeroed,
    //! then the payload bytes.
    struct FrameHeader
    {
        std::uint16_t magic = wireMagic;
        std::uint8_t version = wireVersion;
        FrameType type = FrameType::Request;
        Status status = Status::Ok;
        std::uint16_t shardHint = 0;
        std::uint32_t tmpl = 0;
        std::uint32_t payloadLen = 0;
        std::uint64_t reqId = 0;
        std::uint32_t deadlineUs = 0;
        std::uint32_t crc = 0;
    };

    inline constexpr std::size_t headerSize = 32;

    //! Non-throwing decode outcome (None == success). The order is the
    //! check order: a frame failing an earlier check never reports a
    //! later code, so tests can assert WHICH guard caught a corruption.
    enum class DecodeError : std::uint8_t
    {
        None = 0,
        Truncated, //!< fewer than headerSize bytes presented
        BadMagic,
        BadVersion,
        BadType, //!< type byte outside the FrameType range
        Oversized, //!< payloadLen exceeds the receiver's slot capacity
        BadCrc,
        BadAdmin, //!< well-formed header, malformed admin request
    };

    [[nodiscard]] constexpr auto toString(DecodeError e) noexcept -> std::string_view
    {
        switch(e)
        {
        case DecodeError::None:
            return "none";
        case DecodeError::Truncated:
            return "truncated frame";
        case DecodeError::BadMagic:
            return "bad magic";
        case DecodeError::BadVersion:
            return "bad version";
        case DecodeError::BadType:
            return "bad frame type";
        case DecodeError::Oversized:
            return "oversized payload";
        case DecodeError::BadCrc:
            return "bad crc";
        case DecodeError::BadAdmin:
            return "bad admin frame";
        }
        return "unknown";
    }

    //! \name typed protocol-error taxonomy (API surface, never hot path)
    //! @{
    class ProtocolError : public Error
    {
    public:
        ProtocolError(DecodeError code, std::string const& what) : Error(what), code_(code)
        {
        }
        [[nodiscard]] auto code() const noexcept -> DecodeError
        {
            return code_;
        }

    private:
        DecodeError code_;
    };

    class TruncatedFrameError : public ProtocolError
    {
    public:
        using ProtocolError::ProtocolError;
    };
    class BadMagicError : public ProtocolError
    {
    public:
        using ProtocolError::ProtocolError;
    };
    class BadVersionError : public ProtocolError
    {
    public:
        using ProtocolError::ProtocolError;
    };
    class BadFrameTypeError : public ProtocolError
    {
    public:
        using ProtocolError::ProtocolError;
    };
    class OversizedFrameError : public ProtocolError
    {
    public:
        using ProtocolError::ProtocolError;
    };
    class BadCrcError : public ProtocolError
    {
    public:
        using ProtocolError::ProtocolError;
    };
    class BadAdminError : public ProtocolError
    {
    public:
        using ProtocolError::ProtocolError;
    };
    //! @}

    //! Throws the typed subclass matching \p code (UsageError for None —
    //! raising success is caller misuse). Allocates; API boundaries only.
    [[noreturn]] void raise(DecodeError code);

    namespace detail
    {
        //! Reflected CRC32 table (polynomial 0xEDB88320), built at
        //! compile time so the codec has no runtime init order to get
        //! wrong.
        inline constexpr auto crcTable = []
        {
            std::array<std::uint32_t, 256> table{};
            for(std::uint32_t i = 0; i < 256; ++i)
            {
                std::uint32_t c = i;
                for(int k = 0; k < 8; ++k)
                    c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1U) : c >> 1U;
                table[i] = c;
            }
            return table;
        }();

        [[nodiscard]] constexpr auto crc32Update(std::uint32_t crc, std::byte const* data, std::size_t len) noexcept
            -> std::uint32_t
        {
            for(std::size_t i = 0; i < len; ++i)
                crc = crcTable[(crc ^ static_cast<std::uint32_t>(data[i])) & 0xFFU] ^ (crc >> 8U);
            return crc;
        }

        //! \name little-endian field stores/loads (the wire byte order,
        //! independent of host endianness)
        //! @{
        constexpr void store16(std::byte* p, std::uint16_t v) noexcept
        {
            p[0] = static_cast<std::byte>(v & 0xFFU);
            p[1] = static_cast<std::byte>(v >> 8U);
        }
        constexpr void store32(std::byte* p, std::uint32_t v) noexcept
        {
            for(int i = 0; i < 4; ++i)
                p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFFU);
        }
        constexpr void store64(std::byte* p, std::uint64_t v) noexcept
        {
            for(int i = 0; i < 8; ++i)
                p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFFU);
        }
        [[nodiscard]] constexpr auto load16(std::byte const* p) noexcept -> std::uint16_t
        {
            return static_cast<std::uint16_t>(
                static_cast<std::uint16_t>(p[0]) | (static_cast<std::uint16_t>(p[1]) << 8U));
        }
        [[nodiscard]] constexpr auto load32(std::byte const* p) noexcept -> std::uint32_t
        {
            std::uint32_t v = 0;
            for(int i = 3; i >= 0; --i)
                v = (v << 8U) | static_cast<std::uint32_t>(p[i]);
            return v;
        }
        [[nodiscard]] constexpr auto load64(std::byte const* p) noexcept -> std::uint64_t
        {
            std::uint64_t v = 0;
            for(int i = 7; i >= 0; --i)
                v = (v << 8U) | static_cast<std::uint64_t>(p[i]);
            return v;
        }
        //! @}
    } // namespace detail

    //! CRC32 of one frame: the 32 encoded header bytes with the crc
    //! field (offset 28) treated as zero, then the payload.
    [[nodiscard]] constexpr auto frameCrc(
        std::byte const* headerBytes,
        std::byte const* payload,
        std::size_t payloadLen) noexcept -> std::uint32_t
    {
        constexpr std::byte zeroCrc[4]{};
        auto crc = detail::crc32Update(0xFFFFFFFFU, headerBytes, 28);
        crc = detail::crc32Update(crc, zeroCrc, 4);
        if(payloadLen != 0)
            crc = detail::crc32Update(crc, payload, payloadLen);
        return crc ^ 0xFFFFFFFFU;
    }

    //! Encodes \p h into \p out (headerSize bytes), computing and
    //! embedding the crc over the header and \p payload. Never
    //! allocates, never throws — hot-path safe.
    inline void encodeHeader(
        FrameHeader const& h,
        std::byte* out,
        std::byte const* payload = nullptr,
        std::size_t payloadLen = 0) noexcept
    {
        detail::store16(out + 0, h.magic);
        out[2] = static_cast<std::byte>(h.version);
        out[3] = static_cast<std::byte>(h.type);
        detail::store16(out + 4, static_cast<std::uint16_t>(h.status));
        detail::store16(out + 6, h.shardHint);
        detail::store32(out + 8, h.tmpl);
        detail::store32(out + 12, h.payloadLen);
        detail::store64(out + 16, h.reqId);
        detail::store32(out + 24, h.deadlineUs);
        detail::store32(out + 28, 0);
        detail::store32(out + 28, frameCrc(out, payload, payloadLen));
    }

    //! Decodes and validates the HEADER checks (magic, version, type,
    //! payloadLen against \p maxPayload) from \p in (\p len available
    //! bytes) into \p out. The crc cannot be checked yet — the payload
    //! may not have arrived; call verifyCrc() once it has. Never
    //! allocates, never throws.
    [[nodiscard]] inline auto decodeHeader(std::byte const* in, std::size_t len, std::size_t maxPayload, FrameHeader& out) noexcept
        -> DecodeError
    {
        if(len < headerSize)
            return DecodeError::Truncated;
        out.magic = detail::load16(in + 0);
        if(out.magic != wireMagic)
            return DecodeError::BadMagic;
        out.version = static_cast<std::uint8_t>(in[2]);
        if(out.version != wireVersion)
            return DecodeError::BadVersion;
        auto const type = static_cast<std::uint8_t>(in[3]);
        if(type > static_cast<std::uint8_t>(FrameType::AdminData))
            return DecodeError::BadType;
        out.type = static_cast<FrameType>(type);
        out.status = static_cast<Status>(detail::load16(in + 4));
        out.shardHint = detail::load16(in + 6);
        out.tmpl = detail::load32(in + 8);
        out.payloadLen = detail::load32(in + 12);
        if(out.payloadLen > maxPayload)
            return DecodeError::Oversized;
        out.reqId = detail::load64(in + 16);
        out.deadlineUs = detail::load32(in + 24);
        out.crc = detail::load32(in + 28);
        return DecodeError::None;
    }

    //! Admin-request validity beyond the header checks: admin requests
    //! carry no payload (a scrape is a question, not a data push), and
    //! a TraceControl op must be one the server knows. Non-admin frames
    //! pass untouched. Never allocates, never throws — the session
    //! layers count the returned code like any other DecodeError.
    [[nodiscard]] constexpr auto validateAdmin(FrameHeader const& h) noexcept -> DecodeError
    {
        if(!isAdminRequest(h.type))
            return DecodeError::None;
        if(h.payloadLen != 0)
            return DecodeError::BadAdmin;
        if(h.type == FrameType::TraceControl && h.tmpl > static_cast<std::uint32_t>(TraceOp::Capture))
            return DecodeError::BadAdmin;
        return DecodeError::None;
    }

    //! The deferred half of decodeHeader: checks the embedded crc
    //! against header + fully-received payload. Never allocates.
    [[nodiscard]] inline auto verifyCrc(std::byte const* headerBytes, std::byte const* payload, std::size_t payloadLen) noexcept
        -> DecodeError
    {
        auto const embedded = detail::load32(headerBytes + 28);
        return embedded == frameCrc(headerBytes, payload, payloadLen) ? DecodeError::None : DecodeError::BadCrc;
    }
} // namespace alpaka::net
