/// \file POSIX half of the socket transport (see net/socket.hpp). The
/// single file of the net subsystem that includes OS headers.

#include "net/socket.hpp"

#include "alpaka/core/error.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace alpaka::net
{
    namespace
    {
        void setNonBlocking(int fd)
        {
            auto const flags = ::fcntl(fd, F_GETFL, 0);
            if(flags >= 0)
                ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
        }

        //! Frames are tiny and latency-bound; Nagle would serialize the
        //! request/response ping-pong on the ACK clock.
        void setNoDelay(int fd)
        {
            int const one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        }
    } // namespace

    SocketTransport::SocketTransport(int fd) : fd_(fd)
    {
        setNonBlocking(fd_);
        setNoDelay(fd_);
    }

    SocketTransport::~SocketTransport()
    {
        close();
    }

    auto SocketTransport::send(std::byte const* data, std::size_t len) noexcept -> std::ptrdiff_t
    {
        if(fd_ < 0)
            return -1;
        auto const n = ::send(fd_, data, len, MSG_NOSIGNAL);
        if(n >= 0)
            return n;
        return errno == EAGAIN || errno == EWOULDBLOCK ? 0 : -1;
    }

    auto SocketTransport::recv(std::byte* data, std::size_t len) noexcept -> std::ptrdiff_t
    {
        if(fd_ < 0)
            return -1;
        auto const n = ::recv(fd_, data, len, 0);
        if(n > 0)
            return n;
        if(n == 0)
            return -1; // orderly EOF
        return errno == EAGAIN || errno == EWOULDBLOCK ? 0 : -1;
    }

    void SocketTransport::close() noexcept
    {
        if(fd_ >= 0)
        {
            ::close(fd_);
            fd_ = -1;
        }
    }

    SocketListener::SocketListener(std::uint16_t port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if(fd_ < 0)
            throw Error("net::SocketListener: socket() failed");
        int const one = 1;
        ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(port);
        if(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0
           || ::listen(fd_, SOMAXCONN) != 0)
        {
            ::close(fd_);
            throw Error("net::SocketListener: bind/listen on loopback failed");
        }
        socklen_t len = sizeof(addr);
        ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
        port_ = ntohs(addr.sin_port);
        setNonBlocking(fd_);
    }

    SocketListener::~SocketListener()
    {
        if(fd_ >= 0)
            ::close(fd_);
    }

    auto SocketListener::accept() -> std::unique_ptr<Transport>
    {
        auto const fd = ::accept(fd_, nullptr, nullptr);
        if(fd < 0)
            return nullptr;
        return std::make_unique<SocketTransport>(fd);
    }

    auto connectLoopback(std::uint16_t port) -> std::unique_ptr<Transport>
    {
        auto const fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if(fd < 0)
            throw Error("net::connectLoopback: socket() failed");
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(port);
        if(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
        {
            ::close(fd);
            throw Error("net::connectLoopback: connect to loopback failed");
        }
        return std::make_unique<SocketTransport>(fd);
    }
} // namespace alpaka::net
