/// \file Out-of-line throwing surface of the wire protocol. Only
/// raise() lives here: the codec itself is inline and allocation-free,
/// and keeping the throw (which allocates its message) out of line
/// keeps the decoder's codegen free of EH bloat on the poll path.

#include "net/wire.hpp"

#include <string>

namespace alpaka::net
{
    void raise(DecodeError code)
    {
        auto const what = std::string("net: protocol error: ") + std::string(toString(code));
        switch(code)
        {
        case DecodeError::Truncated:
            throw TruncatedFrameError(code, what);
        case DecodeError::BadMagic:
            throw BadMagicError(code, what);
        case DecodeError::BadVersion:
            throw BadVersionError(code, what);
        case DecodeError::BadType:
            throw BadFrameTypeError(code, what);
        case DecodeError::Oversized:
            throw OversizedFrameError(code, what);
        case DecodeError::BadCrc:
            throw BadCrcError(code, what);
        case DecodeError::BadAdmin:
            throw BadAdminError(code, what);
        case DecodeError::None:
            break;
        }
        throw UsageError("net::raise(DecodeError::None): raising success is caller misuse");
    }
} // namespace alpaka::net
