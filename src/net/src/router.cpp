/// \file net::Router implementation (see net/router.hpp).

#include "net/router.hpp"

#include "alpaka/core/error.hpp"
#include "alpaka/core/trace.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <string_view>

namespace alpaka::net
{
    HashRing::HashRing(std::size_t shards, std::size_t vnodes) : shards_(shards)
    {
        if(shards == 0 || vnodes == 0)
            throw UsageError("net::HashRing: shards and vnodes must be >= 1");
        ring_.reserve(shards * vnodes);
        for(std::size_t s = 0; s < shards; ++s)
        {
            for(std::size_t v = 0; v < vnodes; ++v)
            {
                // hash("shard/<s>/<v>") without allocating: feed the
                // pieces through FNV's running state.
                std::array<char, 24> num{};
                auto h = fnv1a("shard/");
                auto* end = std::to_chars(num.data(), num.data() + num.size(), s).ptr;
                h = fnv1a({num.data(), static_cast<std::size_t>(end - num.data())}, h);
                h = fnv1a("/", h);
                end = std::to_chars(num.data(), num.data() + num.size(), v).ptr;
                h = fnv1a({num.data(), static_cast<std::size_t>(end - num.data())}, h);
                ring_.push_back(Point{h, static_cast<std::uint32_t>(s)});
            }
        }
        std::sort(
            ring_.begin(),
            ring_.end(),
            [](Point const& a, Point const& b)
            { return a.hash < b.hash || (a.hash == b.hash && a.shard < b.shard); });
    }

    auto HashRing::shardOf(std::uint64_t keyHash) const noexcept -> std::size_t
    {
        // First point clockwise from the key; wrap to the first point.
        auto const it = std::lower_bound(
            ring_.begin(),
            ring_.end(),
            keyHash,
            [](Point const& p, std::uint64_t h) { return p.hash < h; });
        return it != ring_.end() ? it->shard : ring_.front().shard;
    }

    Router::Router(RouterOptions options) : ring_(options.shards, options.vnodesPerShard)
    {
        shards_.reserve(options.shards);
        for(std::size_t s = 0; s < options.shards; ++s)
            shards_.push_back(std::make_unique<serve::Service>(options.shard));
    }

    auto Router::registerTemplate(serve::TemplateDesc desc) -> serve::TemplateId
    {
        auto const id = shards_.front()->registerTemplate(desc);
        for(std::size_t s = 1; s < shards_.size(); ++s)
        {
            if(shards_[s]->registerTemplate(desc) != id)
                throw UsageError("net::Router: shard template ids diverged (register only through the router)");
        }
        return id;
    }

    auto Router::submit(serve::Request const& request) -> serve::Future
    {
        auto const s = ring_.shardOf(request.tenant);
        if(request.traceId != 0)
            ALPAKA_TRACE_INSTANT("net.shard_route", request.traceId);
        try
        {
            return shards_[s]->submit(request);
        }
        catch(serve::AdmissionError const& e)
        {
            throw ShardBusyError(s, e.what());
        }
    }

    void Router::drain()
    {
        for(auto& shard : shards_)
            shard->drain();
    }

    auto Router::shutdown(std::chrono::nanoseconds timeout) -> std::vector<serve::ShutdownReport>
    {
        std::vector<serve::ShutdownReport> reports;
        reports.reserve(shards_.size());
        for(auto& shard : shards_)
            reports.push_back(shard->shutdown(timeout));
        return reports;
    }

    auto Router::stats() const -> RouterStats
    {
        RouterStats out;
        out.perShard.reserve(shards_.size());
        for(auto const& shard : shards_)
        {
            auto s = shard->stats();
            out.queued += s.queued;
            out.inFlight += s.inFlight;
            out.admitted += s.admitted;
            out.rejected += s.rejected;
            out.completed += s.completed;
            out.failed += s.failed;
            out.latencyCounts.merge(s.latencyCounts);
            out.queueWaitCounts.merge(s.queueWaitCounts);
            out.perShard.push_back(std::move(s));
        }
        out.latency = out.latencyCounts.snapshot();
        out.queueWait = out.queueWaitCounts.snapshot();
        return out;
    }
} // namespace alpaka::net
