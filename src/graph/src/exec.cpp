#include "graph/exec.hpp"

#include "alpaka/core/trace.hpp"

#include <algorithm>

namespace alpaka::graph
{
    void Exec::PopBody::operator()(std::size_t /*index*/) const
    {
        self->runTicket(*scratch);
    }

    Exec::Exec(Graph const& graph, threadpool::ThreadPool& pool) : pool_(&pool)
    {
        auto const& src = graph.nodes();
        auto const nodeCount = src.size();
        nodes_.resize(nodeCount);
        firstSub_.resize(nodeCount);

        // Chunk grain of range (kernel) nodes: about two subtasks per
        // worker for fat kernels, but never below minChunkGrain blocks per
        // subtask — submission-bound graphs (tiny grids) must not pay a
        // ring push/pop per block, and spreading an 8-block kernel over 16
        // workers buys nothing.
        auto const workers = std::max<std::size_t>(1, pool.workerCount());
        constexpr std::size_t minChunkGrain = 8;

        std::vector<std::vector<NodeId>> successors(nodeCount);
        for(std::size_t i = 0; i < nodeCount; ++i)
        {
            auto const& from = src[i];
            auto& node = nodes_[i];
            node.body = from.body;
            node.range = from.range;
            node.always = from.always;
            if(from.prologue != nullptr)
                prologues_.push_back(from.prologue);
            // Event records (prologue-re-armed shared events) and graph
            // memory nodes (one reserved address for every replay,
            // invariant 12) are shared replay infrastructure: replays of
            // a graph carrying them must not overlap.
            if(from.prologue != nullptr || from.kind == NodeKind::Alloc || from.kind == NodeKind::Free)
                serializeReplays_ = true;

            // Dedupe dependencies: a duplicate edge must not count twice
            // against the indegree.
            auto deps = from.deps;
            std::sort(deps.begin(), deps.end());
            deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
            node.initialIndeg = static_cast<std::uint32_t>(deps.size());
            for(auto const dep : deps)
                successors[dep].push_back(static_cast<NodeId>(i));
            if(deps.empty())
                initialReady_.push_back(static_cast<NodeId>(i));

            // Subtask expansion: range nodes split into chunks, everything
            // else is one subtask.
            firstSub_[i] = static_cast<std::uint32_t>(subtasks_.size());
            if(from.range != nullptr && from.rangeCount > 0)
            {
                auto const grain = std::max(minChunkGrain, from.rangeCount / (workers * 2));
                std::uint32_t count = 0;
                for(std::size_t begin = 0; begin < from.rangeCount; begin += grain)
                {
                    subtasks_.push_back(
                        SubTask{static_cast<NodeId>(i), begin, std::min(begin + grain, from.rangeCount)});
                    ++count;
                }
                node.subCount = count;
            }
            else
            {
                subtasks_.push_back(SubTask{static_cast<NodeId>(i), 0, 0});
                node.subCount = 1;
            }
        }

        // Successor CSR.
        std::size_t edgeCount = 0;
        for(auto const& list : successors)
            edgeCount += list.size();
        succ_.reserve(edgeCount);
        for(std::size_t i = 0; i < nodeCount; ++i)
        {
            nodes_[i].succBegin = static_cast<std::uint32_t>(succ_.size());
            succ_.insert(succ_.end(), successors[i].begin(), successors[i].end());
            nodes_[i].succEnd = static_cast<std::uint32_t>(succ_.size());
        }
    }

    auto Exec::acquireScratch() -> std::unique_ptr<ReplayScratch>
    {
        {
            std::scoped_lock lock(scratchMutex_);
            if(!scratchPool_.empty())
            {
                auto scratch = std::move(scratchPool_.back());
                scratchPool_.pop_back();
                return scratch;
            }
        }
        // First use (or one more concurrent replay than ever before):
        // allocate a fresh working set. The pop body must hold a stable
        // pointer to its scratch, so wire it after construction.
        auto scratch = std::make_unique<ReplayScratch>();
        scratch->indeg = std::make_unique<Counter[]>(nodes_.size());
        scratch->pending = std::make_unique<Counter[]>(nodes_.size());
        scratch->ring = std::make_unique<std::atomic<std::uint32_t>[]>(subtasks_.size());
        scratch->popBody = PopBody{this, scratch.get()};
        scratch->job = pool_->prebuild(subtasks_.size(), scratch->popBody);
        return scratch;
    }

    void Exec::releaseScratch(std::unique_ptr<ReplayScratch> scratch)
    {
        std::scoped_lock lock(scratchMutex_);
        scratchPool_.push_back(std::move(scratch));
    }

    void Exec::run()
    {
        if(subtasks_.empty())
            return;
        // Concurrent replays each work on their own scratch; the frozen
        // DAG is shared read-only (invariant 10 applies per replay).
        // Graphs with shared replay infrastructure serialize instead —
        // see the header comment.
        std::unique_lock serial(serialMutex_, std::defer_lock);
        if(serializeReplays_)
            serial.lock();
        ALPAKA_TRACE_SCOPE("graph.replay", subtasks_.size());
        auto scratch = acquireScratch();

        for(auto const& prologue : prologues_)
            prologue();
        scratch->poisoned.store(false, std::memory_order_relaxed);
        for(std::size_t i = 0; i < nodes_.size(); ++i)
        {
            scratch->indeg[i].value.store(nodes_[i].initialIndeg, std::memory_order_relaxed);
            scratch->pending[i].value.store(nodes_[i].subCount, std::memory_order_relaxed);
        }
        for(std::size_t t = 0; t < subtasks_.size(); ++t)
            scratch->ring[t].store(0, std::memory_order_relaxed);
        scratch->popTicket.store(0, std::memory_order_relaxed);
        // No participant is in flight on THIS scratch yet (the pool hands
        // a scratch to one replay at a time), so the relaxed resets above
        // cannot race; the job publication below releases them.
        scratch->pushCursor.store(0, std::memory_order_relaxed);
        for(auto const node : initialReady_)
            pushNode(*scratch, node);

        pool_->runPrebuilt(scratch->job);
        try
        {
            scratch->errors.rethrowIfSetAndClear();
        }
        catch(...)
        {
            releaseScratch(std::move(scratch));
            throw;
        }
        releaseScratch(std::move(scratch));
    }

    void Exec::pushNode(ReplayScratch& scratch, NodeId node)
    {
        auto const first = firstSub_[node];
        auto const count = nodes_[node].subCount;
        for(std::uint32_t k = 0; k < count; ++k)
        {
            // Relaxed claim is sound (litmus: graph/*_ready_ring): RMW
            // atomicity alone makes every pos unique, and the consumer
            // never reads the cursor — the slot's release store below is
            // the only publication edge it synchronizes on.
            auto const pos = scratch.pushCursor.fetch_add(1, std::memory_order_relaxed);
            scratch.ring[pos].store(first + k + 1, std::memory_order_release);
        }
        // Advertise once per node — the shared Dekker-paired,
        // notify-eliding protocol (threadpool::detail::PublishWord) covers
        // the release-stores above.
        scratch.readyWord.publish();
    }

    void Exec::runTicket(ReplayScratch& scratch)
    {
        // Relaxed ticket claim, same argument as pushNode's cursor: RMW
        // atomicity gives each participant a distinct slot; the acquire
        // load of the slot below carries all the ordering (litmus:
        // graph/*_ready_ring — the ISA2 chain push→publish→consume).
        auto const ticket = scratch.popTicket.fetch_add(1, std::memory_order_relaxed);
        auto& slot = scratch.ring[ticket];
        std::uint32_t id = 0;
        int spins = spinBudget_;
        for(;;)
        {
            auto const seq = scratch.readyWord.snapshot();
            id = slot.load(std::memory_order_acquire);
            if(id != 0)
                break;
            // Not pushed yet: some predecessor subtask is still in flight
            // on another participant (the DAG guarantees a filled slot
            // otherwise — see DESIGN.md §4.3), so spin briefly, then park
            // on the ring's publish word.
            if(spins-- > 0)
                threadpool::detail::cpuRelax();
            else
            {
                scratch.readyWord.park(seq);
                spins = spinBudget_;
            }
        }

        auto const& sub = subtasks_[id - 1];
        auto const& node = nodes_[sub.node];
        if(!scratch.poisoned.load(std::memory_order_acquire) || node.always)
        {
            try
            {
                if(node.range != nullptr)
                    node.range(sub.begin, sub.end);
                else if(node.body != nullptr)
                    node.body();
            }
            catch(...)
            {
                scratch.errors.captureCurrent();
                scratch.poisoned.store(true, std::memory_order_release);
            }
        }
        // Bookkeeping runs even on a poisoned replay: every ticket must be
        // served or the pops would starve.
        if(scratch.pending[sub.node].value.fetch_sub(1, std::memory_order_acq_rel) == 1)
            completeNode(scratch, sub.node);
    }

    void Exec::completeNode(ReplayScratch& scratch, NodeId node)
    {
        if(traceNodes_.load(std::memory_order_relaxed))
            ALPAKA_TRACE_INSTANT("graph.node_complete", node);
        auto const& done = nodes_[node];
        for(auto s = done.succBegin; s < done.succEnd; ++s)
        {
            auto const succ = succ_[s];
            if(scratch.indeg[succ].value.fetch_sub(1, std::memory_order_acq_rel) == 1)
                pushNode(scratch, succ);
        }
    }
} // namespace alpaka::graph
