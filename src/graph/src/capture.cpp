#include "graph/capture.hpp"

#include <atomic>

namespace alpaka::graph
{
    //! Per-stream sink: forwards every captured operation to the session,
    //! tracking this stream's last node (the in-order chain) and the
    //! cross-stream dependencies its pending event waits accumulated.
    //! Deactivated (not destroyed) when the session ends; the attached
    //! stream drops it on next use.
    class Capture::Sink final : public gpusim::CaptureSink
    {
    public:
        explicit Sink(Capture& owner) : owner_(&owner)
        {
        }

        [[nodiscard]] auto active() const noexcept -> bool override
        {
            return active_.load(std::memory_order_acquire);
        }

        //! All sinks of one Capture share the session identity.
        [[nodiscard]] auto sessionKey() const noexcept -> void const* override
        {
            return owner_;
        }

        void deactivate() noexcept
        {
            active_.store(false, std::memory_order_release);
        }

        void task(std::function<void()> body, bool always) override
        {
            detail::Node node;
            node.kind = NodeKind::Host;
            node.always = always;
            node.body = std::move(body);
            owner_->record(*this, std::move(node));
        }

        void kernelChunks(std::size_t count, std::function<void(std::size_t, std::size_t)> range) override
        {
            detail::Node node;
            node.kind = NodeKind::Kernel;
            node.range = std::move(range);
            node.rangeCount = count;
            owner_->record(*this, std::move(node));
        }

        void eventRecord(
            void const* key,
            std::function<void()> markPending,
            std::function<void()> complete) override
        {
            detail::Node node;
            node.kind = NodeKind::EventRecord;
            node.always = true;
            node.body = std::move(complete);
            node.prologue = std::move(markPending);
            auto const id = owner_->record(*this, std::move(node));
            std::scoped_lock lock(owner_->mutex_);
            owner_->records_[key] = id;
        }

        void eventWait(void const* key) override
        {
            std::scoped_lock lock(owner_->mutex_);
            auto const it = owner_->records_.find(key);
            if(it == owner_->records_.end())
                throw UsageError(
                    "graph::Capture: wait for an event that was not recorded in this capture session "
                    "(nothing to order against)");
            pendingDeps_.push_back(it->second);
        }

    private:
        friend class Capture;

        Capture* owner_;
        std::atomic<bool> active_{true};
        //! Last node captured from this stream (the in-order chain tail).
        NodeId last_ = noNode;
        //! Record nodes the next captured node must additionally depend on
        //! (accumulated event waits).
        std::vector<NodeId> pendingDeps_;
    };

    auto Capture::makeSink() -> std::shared_ptr<gpusim::CaptureSink>
    {
        auto sink = std::make_shared<Sink>(*this);
        {
            std::scoped_lock lock(mutex_);
            sinks_.push_back(sink);
        }
        return sink;
    }

    void Capture::end() noexcept
    {
        std::vector<std::shared_ptr<Sink>> sinks;
        {
            std::scoped_lock lock(mutex_);
            sinks.swap(sinks_);
        }
        for(auto const& sink : sinks)
            sink->deactivate();
    }

    auto Capture::record(Sink& sink, detail::Node node) -> NodeId
    {
        std::scoped_lock lock(mutex_);
        if(sink.last_ != noNode)
            node.deps.push_back(sink.last_);
        for(auto const dep : sink.pendingDeps_)
            node.deps.push_back(dep);
        sink.pendingDeps_.clear();
        auto const id = graph_->addNode(std::move(node));
        sink.last_ = id;
        return id;
    }
} // namespace alpaka::graph
