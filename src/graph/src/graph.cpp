#include "graph/graph.hpp"

#include <string>

namespace alpaka::graph
{
    auto Graph::addHost(std::initializer_list<NodeId> deps, std::function<void()> fn) -> NodeId
    {
        if(fn == nullptr)
            throw UsageError("graph::Graph::addHost: null callback");
        detail::Node node;
        node.kind = NodeKind::Host;
        node.body = std::move(fn);
        node.deps = deps;
        return addNode(std::move(node));
    }

    auto Graph::addEventRecord(std::initializer_list<NodeId> deps, event::EventCpu const& event) -> NodeId
    {
        detail::Node node;
        node.kind = NodeKind::EventRecord;
        node.always = true;
        node.body = [event] { event.complete(); };
        node.prologue = [event] { event.markPending(); };
        node.deps = deps;
        return addNode(std::move(node));
    }

    auto Graph::addEventRecord(std::initializer_list<NodeId> deps, event::EventCudaSim const& event) -> NodeId
    {
        // Copies of the simulator event share its state, so the captured
        // copy completes the caller's event.
        gpusim::Event const sim = event.simEvent();
        detail::Node node;
        node.kind = NodeKind::EventRecord;
        node.always = true;
        node.body = [sim] { sim.complete(); };
        node.prologue = [sim] { sim.markPending(); };
        node.deps = deps;
        return addNode(std::move(node));
    }

    auto Graph::addAlloc(std::initializer_list<NodeId> deps, mempool::Pool& pool, std::size_t bytes)
        -> std::pair<NodeId, void*>
    {
        auto block = pool.allocGraph(bytes);
        void* const ptr = block->data();
        detail::Node node;
        node.kind = NodeKind::Alloc;
        node.body = [block] { block->activate(); };
        node.deps = deps;
        // addNode first: if the deps are invalid, the local block reference
        // dies with this frame and the reservation lapses — a failed
        // addAlloc must not leak a reservation or leave an allocs_ entry
        // a later addFree could match.
        auto const id = addNode(std::move(node));
        allocs_.emplace(ptr, std::move(block));
        return {id, ptr};
    }

    auto Graph::addFree(std::initializer_list<NodeId> deps, void* ptr) -> NodeId
    {
        auto const it = allocs_.find(ptr);
        if(it == allocs_.end())
            throw mempool::PoolError(
                "graph::Graph::addFree: pointer does not name an unfreed addAlloc block of this graph");
        detail::Node node;
        node.kind = NodeKind::Free;
        node.body = [block = it->second] { block->retire(); };
        node.deps = deps;
        // Validate (addNode) before consuming the mapping: a failed
        // addFree must leave the block freeable by a corrected retry.
        auto const id = addNode(std::move(node));
        allocs_.erase(it); // a second addFree of the same block throws
        return id;
    }

    auto Graph::addEmpty(std::initializer_list<NodeId> deps) -> NodeId
    {
        detail::Node node;
        node.kind = NodeKind::Empty;
        node.deps = deps;
        return addNode(std::move(node));
    }

    auto Graph::addNode(detail::Node node) -> NodeId
    {
        for(auto const dep : node.deps)
            if(dep >= nodes_.size())
                throw UsageError(
                    "graph::Graph: dependency #" + std::to_string(dep) + " names a node not yet in the graph ("
                    + std::to_string(nodes_.size()) + " nodes so far)");
        nodes_.push_back(std::move(node));
        return static_cast<NodeId>(nodes_.size() - 1);
    }

    auto Graph::kind(NodeId node) const -> NodeKind
    {
        if(node >= nodes_.size())
            throw UsageError("graph::Graph::kind: no such node");
        return nodes_[node].kind;
    }

    auto Graph::deps(NodeId node) const -> std::vector<NodeId> const&
    {
        if(node >= nodes_.size())
            throw UsageError("graph::Graph::deps: no such node");
        return nodes_[node].deps;
    }

    auto Graph::dependsOn(NodeId node, NodeId dep) const -> bool
    {
        if(node >= nodes_.size() || dep >= nodes_.size())
            throw UsageError("graph::Graph::dependsOn: no such node");
        // Depth-first over the (small) ancestor set; ids decrease along
        // dependency edges, so termination is immediate.
        std::vector<NodeId> frontier{node};
        std::vector<bool> seen(nodes_.size(), false);
        while(!frontier.empty())
        {
            auto const current = frontier.back();
            frontier.pop_back();
            for(auto const d : nodes_[current].deps)
            {
                if(d == dep)
                    return true;
                if(!seen[d])
                {
                    seen[d] = true;
                    frontier.push_back(d);
                }
            }
        }
        return false;
    }
} // namespace alpaka::graph
