/// \file Task graphs: record a multi-kernel, multi-copy pipeline once,
/// replay it many times (DESIGN.md §4).
///
/// The paper's streams model (Sec. 3.4.5) prices every operation at one
/// enqueue; PR 1–2 made that enqueue nearly free, but a pipeline of K
/// operations resubmitted N times still pays K·N submissions — type
/// erasure, work-division validation, slot ticketing, event wiring — for
/// work whose *structure* never changes. A graph::Graph captures that
/// structure once as an immutable dependency DAG; graph::Exec (exec.hpp)
/// pre-resolves everything per-submission about it and replays it at the
/// cost of one pool job.
///
/// Nodes are added either explicitly (addKernel/addCopy/addSet/addHost/
/// addEventRecord/addEmpty, each naming its dependencies) or by capturing
/// live streams (capture.hpp). A node's dependencies must already be in
/// the graph, so a Graph is acyclic by construction — there is no "edge
/// later" API, which is what makes instantiation-time pre-resolution safe.
#pragma once

#include "alpaka/core/error.hpp"
#include "alpaka/event.hpp"
#include "alpaka/exec.hpp"
#include "alpaka/mem.hpp"

#include "mempool/pool.hpp"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <map>
#include <memory>
#include <utility>
#include <vector>

namespace alpaka::graph
{
    //! Nodes are named by their insertion index.
    using NodeId = std::uint32_t;
    inline constexpr NodeId noNode = static_cast<NodeId>(-1);

    //! Informational classification of a node (captured simulator work
    //! arrives type-erased and is classified Host).
    enum class NodeKind : std::uint8_t
    {
        Kernel,
        Copy,
        Set,
        Host,
        EventRecord,
        Alloc,
        Free,
        Empty
    };

    namespace detail
    {
        //! One recorded operation. Exactly one of {body, range} is set for
        //! executable nodes; Empty nodes have neither.
        struct Node
        {
            NodeKind kind = NodeKind::Empty;
            //! Runs even on a poisoned (errored) replay — event completion
            //! markers must fire or host-side waiters would hang, the same
            //! rule the streams apply to their marker tasks.
            bool always = false;
            std::function<void()> body;
            //! Chunked kernel body: replay may run disjoint [begin, end)
            //! sub-ranges of [0, rangeCount) concurrently.
            std::function<void(std::size_t, std::size_t)> range;
            std::size_t rangeCount = 0;
            //! Re-run at the start of every replay (event re-arming).
            std::function<void()> prologue;
            std::vector<NodeId> deps;
        };
    } // namespace detail

    //! The recorded DAG. A plain value: build it, hand it to graph::Exec,
    //! throw it away (Exec copies what it needs).
    class Graph
    {
    public:
        Graph() = default;

        //! Adds a kernel launch node. The work division is validated and
        //! the launch lowered to its replay form here, once — an invalid
        //! launch fails at graph-build time, not at replay time.
        template<typename TAcc, typename TKernel, typename... TArgs>
        auto addKernel(
            std::initializer_list<NodeId> deps,
            typename TAcc::Dev const& dev,
            exec::TaskKernel<TAcc, TKernel, TArgs...> task) -> NodeId
        {
            auto lowered = exec::detail::lowerKernel(dev, std::move(task));
            detail::Node node;
            node.kind = NodeKind::Kernel;
            if(lowered.chunkCount > 0)
            {
                node.range = std::move(lowered.range);
                node.rangeCount = lowered.chunkCount;
            }
            else
                node.body = std::move(lowered.whole);
            node.deps = deps;
            return addNode(std::move(node));
        }

        //! Adds a deep-copy node (validated now, like mem::view::copy).
        template<mem::view::ConceptView TViewDst, mem::view::ConceptView TViewSrc, typename TDim, typename TSize>
        auto addCopy(
            std::initializer_list<NodeId> deps,
            TViewDst dst,
            TViewSrc src,
            Vec<TDim, TSize> const& extent) -> NodeId
        {
            detail::Node node;
            node.kind = NodeKind::Copy;
            node.body = mem::view::makeCopyTask(std::move(dst), std::move(src), extent).work;
            node.deps = deps;
            return addNode(std::move(node));
        }

        //! Adds a byte-wise fill node (validated now, like mem::view::set).
        template<mem::view::ConceptView TView, typename TDim, typename TSize>
        auto addSet(std::initializer_list<NodeId> deps, TView view, int value, Vec<TDim, TSize> const& extent)
            -> NodeId
        {
            detail::Node node;
            node.kind = NodeKind::Set;
            node.body = mem::view::makeSetTask(std::move(view), value, extent).work;
            node.deps = deps;
            return addNode(std::move(node));
        }

        //! Adds an arbitrary host callback node.
        auto addHost(std::initializer_list<NodeId> deps, std::function<void()> fn) -> NodeId;

        //! Adds an event-record node: every replay re-arms \p event at
        //! replay start and completes it when the node is reached (even on
        //! a poisoned replay, so host waiters never hang).
        auto addEventRecord(std::initializer_list<NodeId> deps, event::EventCpu const& event) -> NodeId;
        auto addEventRecord(std::initializer_list<NodeId> deps, event::EventCudaSim const& event) -> NodeId;

        //! Adds a no-op node — a join/fork point for dependency fan-in.
        auto addEmpty(std::initializer_list<NodeId> deps) -> NodeId;

        //! Adds a memory-pool alloc node (the CUDA graph mem-alloc-node
        //! analog, DESIGN.md §5.4): a block of \p bytes is reserved from
        //! \p pool for the lifetime of this graph and every Exec
        //! instantiated from it — all replays see the identical address,
        //! returned here so downstream nodes can bind it. The block goes
        //! back to the pool's bins when the last owner dies.
        auto addAlloc(std::initializer_list<NodeId> deps, mempool::Pool& pool, std::size_t bytes)
            -> std::pair<NodeId, void*>;

        //! Adds the free node matching an addAlloc of this graph; work
        //! depending on the block must be a dependency of this node.
        //! \throws mempool::PoolError when \p ptr does not name an
        //! addAlloc block of this graph (or was already freed).
        auto addFree(std::initializer_list<NodeId> deps, void* ptr) -> NodeId;

        //! Inserts a fully described node; deps must name existing nodes
        //! (\throws UsageError otherwise) — the invariant that keeps every
        //! Graph acyclic by construction.
        auto addNode(detail::Node node) -> NodeId;

        //! \name introspection (tests, instantiation)
        //! @{
        [[nodiscard]] auto nodeCount() const noexcept -> std::size_t
        {
            return nodes_.size();
        }
        [[nodiscard]] auto kind(NodeId node) const -> NodeKind;
        [[nodiscard]] auto deps(NodeId node) const -> std::vector<NodeId> const&;
        //! True when \p node transitively depends on \p dep.
        [[nodiscard]] auto dependsOn(NodeId node, NodeId dep) const -> bool;
        [[nodiscard]] auto nodes() const noexcept -> std::vector<detail::Node> const&
        {
            return nodes_;
        }
        //! @}

    private:
        std::vector<detail::Node> nodes_;
        //! addAlloc blocks not yet matched by addFree (the node bodies
        //! hold their own references, so blocks survive the graph when an
        //! Exec copied them).
        std::map<void*, std::shared_ptr<mempool::GraphBlock>> allocs_;
    };
} // namespace alpaka::graph
