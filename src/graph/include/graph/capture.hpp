/// \file Stream capture: build a Graph by running existing enqueue code
/// against capturing streams (DESIGN.md §4.2).
///
/// A Capture session attaches a per-stream sink (gpusim/capture.hpp) to
/// any number of streams. While attached, everything enqueued into those
/// streams — kernels, copies, fills, host tasks, event records and event
/// waits — is recorded as graph nodes instead of executing:
///
///  * same-stream order becomes a chain of dependency edges (streams are
///    in-order queues, invariant 7);
///  * a cross-stream `wait::wait(streamB, event)` after a
///    `stream::enqueue(streamA, event)` becomes an edge from A's record
///    node to everything B captures afterwards — the same fork/join
///    discovery CUDA's stream capture performs.
///
/// Rules (UsageError otherwise): waiting for an event that was not
/// recorded earlier in the same session has nothing to order against and
/// is rejected; synchronizing a capturing stream (stream.wait()) is
/// rejected by the stream itself; a stream can be in at most one capture
/// at a time. Lifetime is decoupled on purpose: end() (or the Capture
/// destructor) only *deactivates* the session's sinks — the session never
/// references the streams back — and each stream drops its deactivated
/// sink on next use, so streams and the Capture may die in any order.
#pragma once

#include "graph/graph.hpp"

#include "gpusim/capture.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace alpaka::graph
{
    class Capture
    {
    public:
        //! \p graph receives the captured nodes; it may already hold
        //! explicitly added nodes (captured work is appended).
        explicit Capture(Graph& graph) : graph_(&graph)
        {
        }

        //! Deactivates the session's sinks; nodes recorded so far stay in
        //! the graph. Streams drop the dead sinks on their next use.
        ~Capture()
        {
            end();
        }

        Capture(Capture const&) = delete;
        auto operator=(Capture const&) -> Capture& = delete;

        //! Switches \p stream into capture mode for this session. Works
        //! for every stream type exposing beginCapture/endCapture
        //! (StreamCpuSync, StreamCpuAsync, the CudaSim streams).
        template<typename TStream>
        void add(TStream& stream)
        {
            stream.beginCapture(makeSink()); // throws when already capturing
        }

        //! Ends the session: deactivates every sink handed out by add();
        //! the graph is complete.
        void end() noexcept;

    private:
        class Sink;

        //! Creates a registered, active sink for one stream.
        [[nodiscard]] auto makeSink() -> std::shared_ptr<gpusim::CaptureSink>;

        //! Appends a node on behalf of a sink: same-stream chaining plus
        //! any event-wait edges the sink accumulated.
        auto record(Sink& sink, detail::Node node) -> NodeId;

        Graph* graph_;
        std::mutex mutex_; //!< one lock for graph growth + event table
        //! Last record node per event key — the source of cross-stream
        //! edges.
        std::map<void const*, NodeId> records_;
        //! Sinks handed out by add(); shared ownership with the streams.
        std::vector<std::shared_ptr<Sink>> sinks_;
    };
} // namespace alpaka::graph
