/// \file Graph instantiation and near-zero-overhead replay
/// (DESIGN.md §4.3).
///
/// graph::Exec freezes a Graph into its executable form once:
/// dependencies become a successor CSR + per-node initial indegrees,
/// chunkable kernel nodes are split into block-range subtasks, and the
/// pool job descriptor (count, grain, trampoline) is pre-built.
/// replay(stream) then costs: one task pushed into the target stream +
/// one pre-built pool job — independent of how many operations the
/// pipeline contains.
///
/// Replays of one Exec may run CONCURRENTLY (the kernel-service runtime
/// keeps several in-flight replays of one request template): all mutable
/// per-replay state — the atomic indegree/pending counters, the ready
/// ring, the pop/push cursors, poisoning and the first-error slot — lives
/// in a ReplayScratch acquired from a small replay-owned pool at the
/// start of run() and returned when the replay drained. The frozen DAG
/// (nodes, CSR, subtasks) is shared read-only, so concurrent replays
/// never touch common mutable bookkeeping; whether the node BODIES
/// tolerate overlapped execution is the graph author's contract, exactly
/// as it is for the same kernels enqueued into two live streams.
///
/// Exception: an Exec whose graph carries *shared replay infrastructure*
/// the author cannot make overlap-safe — event-record nodes (the shared
/// event is re-armed by a per-replay prologue and completed mid-replay)
/// or graph memory nodes (every replay addresses the SAME reserved
/// block, invariant 12) — serializes its replays on an internal mutex,
/// preserving the pre-PR 5 semantics for exactly the graphs that need
/// them. Introspectable via replaysSerialize().
///
/// Replay protocol (run()/runTicket() in exec.cpp): the driver — the
/// task enqueued into the target stream, so a replay is ordered like any
/// other operation of that stream — re-arms captured events, resets the
/// counters, seeds the ready ring with the indegree-zero nodes and
/// submits the pre-built job to the ThreadPool. Every job index is a
/// *pop ticket*: the participant (pool worker or helping driver) takes
/// the next ring position, waits until a push filled it (spin-then-park,
/// the pool's own discipline), runs the subtask, and on a node's last
/// subtask decrements the successors' indegree counters — pushing every
/// node that reaches zero. Independent branches are therefore in the
/// ring simultaneously and spread over the workers through the ordinary
/// chunk claiming, exactly like any other job in the slot ring (stealing
/// included, since the graph occupies one slot among eight).
///
/// Error semantics mirror the streams' sticky errors (invariant 4/10):
/// the first throwing node poisons the replay — downstream bodies are
/// skipped (except always-run event records, which must complete or
/// host waiters would hang), the DAG bookkeeping still runs to
/// completion, and the error resurfaces through the target stream's
/// usual channel (stream::wait).
#pragma once

#include "graph/graph.hpp"

#include "alpaka/stream.hpp"

#include "threadpool/spin.hpp"
#include "threadpool/thread_pool.hpp"

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

namespace alpaka::graph
{
    class Exec
    {
    public:
        //! Instantiates \p graph for replay through \p pool. The Graph may
        //! be discarded afterwards; the Exec is self-contained.
        explicit Exec(Graph const& graph, threadpool::ThreadPool& pool = threadpool::ThreadPool::global());

        Exec(Exec const&) = delete;
        auto operator=(Exec const&) -> Exec& = delete;

        //! Enqueues one full DAG execution into \p stream (any stream
        //! type; the graph's nodes carry their own devices, so the target
        //! stream only hosts the driver). Replays of one Exec may overlap
        //! — each gets its own scratch, errors stay confined per replay;
        //! the Exec must outlive every replay (wait on the streams before
        //! destroying it). \throws UsageError when \p stream is capturing.
        template<typename TStream>
        void replay(TStream& stream)
        {
            requireNotCapturing(stream);
            if constexpr(std::is_same_v<TStream, stream::StreamCpuSync>)
                stream.run([this] { run(); });
            else if constexpr(std::is_same_v<TStream, stream::StreamCpuAsync>)
                stream.push([this] { run(); });
            else
                stream.simStream().enqueue([this] { run(); });
        }

        //! \name introspection (tests, bench)
        //! @{
        [[nodiscard]] auto nodeCount() const noexcept -> std::size_t
        {
            return nodes_.size();
        }
        [[nodiscard]] auto edgeCount() const noexcept -> std::size_t
        {
            return succ_.size();
        }
        [[nodiscard]] auto subtaskCount() const noexcept -> std::size_t
        {
            return subtasks_.size();
        }
        //! True when replays of this Exec serialize (the graph carries
        //! event-record or graph-memory nodes — shared state a concurrent
        //! replay would corrupt); false when replays may overlap.
        [[nodiscard]] auto replaysSerialize() const noexcept -> bool
        {
            return serializeReplays_;
        }
        //! @}

        //! Per-node trace events for THIS Exec's replays: every node
        //! completion emits a "graph.node_complete" instant (node id as
        //! arg). Off by default — a wide graph emits one event per node
        //! per replay, which can dominate the span rings; the replay-level
        //! "graph.replay" span is always recorded. No-op in
        //! ALPAKA_REPRO_TRACE=OFF builds.
        void traceNodes(bool on) noexcept
        {
            traceNodes_.store(on, std::memory_order_relaxed);
        }

    private:
        template<typename TStream>
        static void requireNotCapturing(TStream const& stream)
        {
            bool capturing = false;
            if constexpr(requires { stream.captureSink(); })
                capturing = stream.captureSink() != nullptr;
            else
                capturing = stream.capturing();
            if(capturing)
                throw UsageError("graph::Exec::replay into a capturing stream");
        }

        struct SubTask
        {
            NodeId node = 0;
            std::size_t begin = 0;
            std::size_t end = 0;
        };

        //! Frozen per-node execution state (immutable after instantiate).
        struct NodeExec
        {
            std::function<void()> body;
            std::function<void(std::size_t, std::size_t)> range;
            bool always = false;
            std::uint32_t initialIndeg = 0;
            std::uint32_t subCount = 1;
            std::uint32_t succBegin = 0;
            std::uint32_t succEnd = 0;
        };

        //! Cache-line padded atomic, one per node (indegree / pending).
        struct alignas(64) Counter
        {
            std::atomic<std::uint32_t> value{0};
        };

        struct ReplayScratch;

        //! The per-index body of the pre-built pool job; one per scratch,
        //! so a pop ticket always lands in its own replay's ring.
        struct PopBody
        {
            Exec* self = nullptr;
            ReplayScratch* scratch = nullptr;
            void operator()(std::size_t /*index*/) const;
        };

        //! One replay's complete working set. Acquired from scratchPool_
        //! per run(); successive users are synchronized by the pool mutex,
        //! so the relaxed counter resets in run() stay safe exactly as
        //! under the old serialize-everything replay mutex.
        struct ReplayScratch
        {
            std::unique_ptr<Counter[]> indeg;
            std::unique_ptr<Counter[]> pending;
            //! Ready ring: position i holds subtask-id + 1 once pushed.
            //! Exactly subtaskCount() pushes and pops happen per replay,
            //! so positions are handed out by plain fetch_adds and never
            //! wrap.
            std::unique_ptr<std::atomic<std::uint32_t>[]> ring;
            alignas(64) std::atomic<std::size_t> popTicket{0};
            alignas(64) std::atomic<std::size_t> pushCursor{0};
            //! Publish word of the ring — the pool's own spin-then-park,
            //! notify-eliding discipline (threadpool::detail::PublishWord).
            threadpool::detail::PublishWord readyWord;
            std::atomic<bool> poisoned{false};
            threadpool::detail::FirstError errors;
            PopBody popBody;
            threadpool::ThreadPool::PrebuiltJob job;
        };

        void run();
        void runTicket(ReplayScratch& scratch);
        void pushNode(ReplayScratch& scratch, NodeId node);
        void completeNode(ReplayScratch& scratch, NodeId node);
        [[nodiscard]] auto acquireScratch() -> std::unique_ptr<ReplayScratch>;
        void releaseScratch(std::unique_ptr<ReplayScratch> scratch);

        threadpool::ThreadPool* pool_;
        std::vector<NodeExec> nodes_;
        std::vector<NodeId> succ_; //!< successor CSR, indexed by succBegin/End
        std::vector<SubTask> subtasks_; //!< grouped by node, node-contiguous
        std::vector<std::uint32_t> firstSub_; //!< per node: its first subtask
        std::vector<NodeId> initialReady_;
        std::vector<std::function<void()>> prologues_;

        //! Replay-owned scratch pool: LIFO of drained working sets, popped
        //! per run(), grown on demand (steady state: one per concurrently
        //! in-flight replay, typically 1).
        std::mutex scratchMutex_;
        std::vector<std::unique_ptr<ReplayScratch>> scratchPool_;
        //! Whole-replay serialization for graphs with shared replay
        //! infrastructure (see the header comment); held by run() only
        //! when serializeReplays_ is set.
        std::mutex serialMutex_;
        bool serializeReplays_ = false;
        int spinBudget_ = threadpool::detail::machineSpinBudget();
        std::atomic<bool> traceNodes_{false}; //!< per-node completion instants (traceNodes())
    };
} // namespace alpaka::graph
