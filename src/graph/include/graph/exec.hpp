/// \file Graph instantiation and near-zero-overhead replay
/// (DESIGN.md §4.3).
///
/// graph::Exec freezes a Graph into its executable form once:
/// dependencies become a successor CSR + per-node initial indegrees,
/// chunkable kernel nodes are split into block-range subtasks, the pool
/// job descriptor (count, grain, trampoline) is pre-built, and per-replay
/// scratch (atomic indegree/pending counters, the ready ring) is
/// allocated. replay(stream) then costs: one task pushed into the target
/// stream + one pre-built pool job — independent of how many operations
/// the pipeline contains.
///
/// Replay protocol (run()/runTicket() in exec.cpp): the driver — the
/// task enqueued into the target stream, so a replay is ordered like any
/// other operation of that stream — re-arms captured events, resets the
/// counters, seeds the ready ring with the indegree-zero nodes and
/// submits the pre-built job to the ThreadPool. Every job index is a
/// *pop ticket*: the participant (pool worker or helping driver) takes
/// the next ring position, waits until a push filled it (spin-then-park,
/// the pool's own discipline), runs the subtask, and on a node's last
/// subtask decrements the successors' indegree counters — pushing every
/// node that reaches zero. Independent branches are therefore in the
/// ring simultaneously and spread over the workers through the ordinary
/// chunk claiming, exactly like any other job in the slot ring (stealing
/// included, since the graph occupies one slot among eight).
///
/// Error semantics mirror the streams' sticky errors (invariant 4/10):
/// the first throwing node poisons the replay — downstream bodies are
/// skipped (except always-run event records, which must complete or
/// host waiters would hang), the DAG bookkeeping still runs to
/// completion, and the error resurfaces through the target stream's
/// usual channel (stream::wait).
#pragma once

#include "graph/graph.hpp"

#include "alpaka/stream.hpp"

#include "threadpool/spin.hpp"
#include "threadpool/thread_pool.hpp"

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

namespace alpaka::graph
{
    class Exec
    {
    public:
        //! Instantiates \p graph for replay through \p pool. The Graph may
        //! be discarded afterwards; the Exec is self-contained.
        explicit Exec(Graph const& graph, threadpool::ThreadPool& pool = threadpool::ThreadPool::global());

        Exec(Exec const&) = delete;
        auto operator=(Exec const&) -> Exec& = delete;

        //! Enqueues one full DAG execution into \p stream (any stream
        //! type; the graph's nodes carry their own devices, so the target
        //! stream only hosts the driver). Replays of one Exec serialize;
        //! the Exec must outlive the replay (wait on the stream before
        //! destroying it). \throws UsageError when \p stream is capturing.
        template<typename TStream>
        void replay(TStream& stream)
        {
            requireNotCapturing(stream);
            if constexpr(std::is_same_v<TStream, stream::StreamCpuSync>)
                stream.run([this] { run(); });
            else if constexpr(std::is_same_v<TStream, stream::StreamCpuAsync>)
                stream.push([this] { run(); });
            else
                stream.simStream().enqueue([this] { run(); });
        }

        //! \name introspection (tests, bench)
        //! @{
        [[nodiscard]] auto nodeCount() const noexcept -> std::size_t
        {
            return nodes_.size();
        }
        [[nodiscard]] auto edgeCount() const noexcept -> std::size_t
        {
            return succ_.size();
        }
        [[nodiscard]] auto subtaskCount() const noexcept -> std::size_t
        {
            return subtasks_.size();
        }
        //! @}

    private:
        template<typename TStream>
        static void requireNotCapturing(TStream const& stream)
        {
            bool capturing = false;
            if constexpr(requires { stream.captureSink(); })
                capturing = stream.captureSink() != nullptr;
            else
                capturing = stream.capturing();
            if(capturing)
                throw UsageError("graph::Exec::replay into a capturing stream");
        }

        struct SubTask
        {
            NodeId node = 0;
            std::size_t begin = 0;
            std::size_t end = 0;
        };

        //! Frozen per-node execution state (immutable after instantiate).
        struct NodeExec
        {
            std::function<void()> body;
            std::function<void(std::size_t, std::size_t)> range;
            bool always = false;
            std::uint32_t initialIndeg = 0;
            std::uint32_t subCount = 1;
            std::uint32_t succBegin = 0;
            std::uint32_t succEnd = 0;
        };

        //! Cache-line padded atomic, one per node (indegree / pending).
        struct alignas(64) Counter
        {
            std::atomic<std::uint32_t> value{0};
        };

        //! The per-index body of the pre-built pool job.
        struct PopBody
        {
            Exec* self = nullptr;
            void operator()(std::size_t /*index*/) const;
        };

        void run();
        void runTicket();
        void pushNode(NodeId node);
        void completeNode(NodeId node);

        threadpool::ThreadPool* pool_;
        std::vector<NodeExec> nodes_;
        std::vector<NodeId> succ_; //!< successor CSR, indexed by succBegin/End
        std::vector<SubTask> subtasks_; //!< grouped by node, node-contiguous
        std::vector<std::uint32_t> firstSub_; //!< per node: its first subtask
        std::vector<NodeId> initialReady_;
        std::vector<std::function<void()>> prologues_;

        //! \name per-replay scratch (reset by run(), guarded by replayMutex_)
        //! @{
        std::unique_ptr<Counter[]> indeg_;
        std::unique_ptr<Counter[]> pending_;
        //! Ready ring: position i holds subtask-id + 1 once pushed. Exactly
        //! subtaskCount() pushes and pops happen per replay, so positions
        //! are handed out by plain fetch_adds and never wrap.
        std::unique_ptr<std::atomic<std::uint32_t>[]> ring_;
        alignas(64) std::atomic<std::size_t> popTicket_{0};
        alignas(64) std::atomic<std::size_t> pushCursor_{0};
        //! Publish word of the ring — the pool's own spin-then-park,
        //! notify-eliding discipline (threadpool::detail::PublishWord).
        threadpool::detail::PublishWord readyWord_;
        std::atomic<bool> poisoned_{false};
        threadpool::detail::FirstError errors_;
        //! @}

        std::mutex replayMutex_; //!< replays of one Exec serialize
        PopBody popBody_{this};
        threadpool::ThreadPool::PrebuiltJob job_;
        int spinBudget_ = threadpool::detail::machineSpinBudget();
    };
} // namespace alpaka::graph
