/// \file Process-wide registry of simulated devices.
#pragma once

#include "gpusim/device.hpp"
#include "gpusim/device_spec.hpp"

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

namespace gpusim
{
    //! Enumerates the simulated GPUs of this process, analogous to the CUDA
    //! runtime's device list. The default configuration models the paper's
    //! evaluation node: one K20-like and one K80-like device.
    //!
    //! configure() must be called before any device has been materialized
    //! (typically first thing in main()); reconfiguring afterwards would
    //! invalidate live Device references and is rejected.
    class Platform
    {
    public:
        [[nodiscard]] static auto instance() -> Platform&;

        //! Replaces the device specs. \throws Error after materialization.
        void configure(std::vector<DeviceSpec> specs);

        [[nodiscard]] auto deviceCount() const -> std::size_t;

        //! Lazily materializes and returns device \p idx.
        [[nodiscard]] auto device(std::size_t idx) -> Device&;

        //! Testing hook: drops all devices and restores the default specs.
        //! Callers must guarantee no live references into the old devices.
        void resetForTesting();

    private:
        Platform();

        mutable std::mutex mutex_;
        std::vector<DeviceSpec> specs_;
        std::vector<std::unique_ptr<Device>> devices_;
        bool materialized_ = false;
    };
} // namespace gpusim
