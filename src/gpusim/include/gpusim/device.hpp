/// \file Simulated GPU device and its SIMT execution engine.
#pragma once

#include "fiber/barrier.hpp"
#include "fiber/scheduler.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/memory.hpp"
#include "gpusim/types.hpp"

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace gpusim
{
    class Device;

    //! Execution statistics of one device (monotonic counters).
    struct ExecStats
    {
        std::uint64_t kernelsLaunched = 0;
        std::uint64_t blocksExecuted = 0;
        std::uint64_t warpsExecuted = 0;
        std::uint64_t barrierWaits = 0;
        std::uint64_t fiberSwitches = 0;
    };

    //! Everything a simulated thread can see and do from inside a kernel:
    //! its coordinates, the launch geometry, the block's shared memory and
    //! the block barrier. This is the moral equivalent of the CUDA built-ins
    //! (threadIdx, blockIdx, __shared__, __syncthreads) — except nothing is
    //! implicit; the kernel body receives the context as a parameter, which
    //! is exactly the discipline the Alpaka paper builds on.
    class ThreadCtx
    {
    public:
        ThreadCtx(
            Dim3 blockIdx,
            Dim3 threadIdx,
            GridSpec const& grid,
            std::byte* sharedMem,
            fiber::Barrier* barrier,
            Device& device) noexcept
            : blockIdx_(blockIdx)
            , threadIdx_(threadIdx)
            , grid_(&grid)
            , sharedMem_(sharedMem)
            , barrier_(barrier)
            , device_(&device)
        {
        }

        [[nodiscard]] auto blockIdx() const noexcept -> Dim3
        {
            return blockIdx_;
        }
        [[nodiscard]] auto threadIdx() const noexcept -> Dim3
        {
            return threadIdx_;
        }
        [[nodiscard]] auto gridDim() const noexcept -> Dim3
        {
            return grid_->grid;
        }
        [[nodiscard]] auto blockDim() const noexcept -> Dim3
        {
            return grid_->block;
        }

        //! Row-major linear thread index inside the block (x fastest).
        [[nodiscard]] auto linearThreadIdx() const noexcept -> std::size_t
        {
            return (static_cast<std::size_t>(threadIdx_.z) * grid_->block.y + threadIdx_.y) * grid_->block.x
                   + threadIdx_.x;
        }
        //! Row-major linear block index inside the grid (x fastest).
        [[nodiscard]] auto linearBlockIdx() const noexcept -> std::size_t
        {
            return (static_cast<std::size_t>(blockIdx_.z) * grid_->grid.y + blockIdx_.y) * grid_->grid.x
                   + blockIdx_.x;
        }
        //! Global linear thread index across the whole grid.
        [[nodiscard]] auto globalLinearThreadIdx() const noexcept -> std::size_t
        {
            return linearBlockIdx() * grid_->block.prod() + linearThreadIdx();
        }

        [[nodiscard]] auto warpId() const noexcept -> unsigned;
        [[nodiscard]] auto laneId() const noexcept -> unsigned;

        //! Dynamic shared memory of this block.
        [[nodiscard]] auto sharedMem() const noexcept -> std::byte*
        {
            return sharedMem_;
        }
        [[nodiscard]] auto sharedMemBytes() const noexcept -> std::size_t
        {
            return grid_->sharedMemBytes;
        }

        //! Block-wide barrier (__syncthreads).
        //! \throws LaunchError when the kernel was launched with the
        //!         noBarrier hint.
        void sync();

        [[nodiscard]] auto device() const noexcept -> Device&
        {
            return *device_;
        }

    private:
        Dim3 blockIdx_;
        Dim3 threadIdx_;
        GridSpec const* grid_;
        std::byte* sharedMem_;
        fiber::Barrier* barrier_; // nullptr under the noBarrier hint
        Device* device_;
    };

    //! Kernel body type: invoked once per simulated thread.
    using KernelBody = std::function<void(ThreadCtx&)>;

    //! One simulated GPU. Owns its global memory and its execution engine.
    //!
    //! Execution model: one kernel executes at a time per device (kernel
    //! launches from multiple streams serialize on the device, like a GPU
    //! without concurrent-kernel support). Blocks run in deterministic
    //! ascending linear order; the threads of a block run as cooperative
    //! fibers scheduled round-robin in warp-major order. This makes every
    //! simulation replayable bit-for-bit.
    class Device
    {
    public:
        explicit Device(DeviceSpec spec, int ordinal = 0);

        Device(Device const&) = delete;
        auto operator=(Device const&) -> Device& = delete;

        [[nodiscard]] auto spec() const noexcept -> DeviceSpec const&
        {
            return spec_;
        }
        [[nodiscard]] auto ordinal() const noexcept -> int
        {
            return ordinal_;
        }
        [[nodiscard]] auto memory() noexcept -> MemoryManager&
        {
            return memory_;
        }
        [[nodiscard]] auto memory() const noexcept -> MemoryManager const&
        {
            return memory_;
        }

        //! Validates a launch configuration against the device limits.
        //! \throws LaunchError on violation.
        void validate(GridSpec const& grid) const;

        //! Runs a kernel synchronously (the calling thread is the engine).
        void runGrid(GridSpec const& grid, KernelBody const& body);

        [[nodiscard]] auto execStats() const -> ExecStats;

        //! Opaque per-device extension slot (currently: the stream-ordered
        //! memory pool of this device, attached lazily by
        //! mempool::Pool::forDev). Owning it here ties the extension's
        //! lifetime to the device — a pool keyed on a device address can
        //! never outlive its device and leak onto a recycled address.
        //! Declared after memory_ so a dying pool can still return its
        //! cached blocks to the MemoryManager. External synchronization:
        //! attach under the caller's own lock (Pool::forDev does).
        [[nodiscard]] auto extensionAnchor() noexcept -> std::shared_ptr<void>&
        {
            return extensionAnchor_;
        }

        //! Lock-free companion of the anchor: the raw extension pointer,
        //! published once the anchor is set, so the per-allocation lookup
        //! (Pool::forDev on every allocAsync) does not serialize on a
        //! creation mutex.
        [[nodiscard]] auto extensionPtr() noexcept -> std::atomic<void*>&
        {
            return extensionPtr_;
        }

    private:
        friend class ThreadCtx;

        void runBlockFibers(GridSpec const& grid, KernelBody const& body, Dim3 blockIdx, std::byte* sharedMem);
        void runBlockLoop(GridSpec const& grid, KernelBody const& body, Dim3 blockIdx, std::byte* sharedMem);

        DeviceSpec spec_;
        int ordinal_;
        MemoryManager memory_;
        std::mutex execMutex_; //!< serializes kernels (one engine per device)
        fiber::Scheduler scheduler_;
        std::vector<std::byte> sharedArena_;
        mutable std::mutex statsMutex_;
        ExecStats stats_{};
        std::atomic<void*> extensionPtr_{nullptr};
        std::shared_ptr<void> extensionAnchor_; //!< last member: destroyed first
    };
} // namespace gpusim
