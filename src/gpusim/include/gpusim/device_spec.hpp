/// \file Simulated device descriptions.
#pragma once

#include "gpusim/types.hpp"

#include <cstddef>
#include <string>

namespace gpusim
{
    //! Static description of a simulated GPU. The presets model the paper's
    //! evaluation hardware (Table 3) so that device enumeration, theoretical
    //! peak computation and occupancy-style statistics mirror the original
    //! setup.
    struct DeviceSpec
    {
        std::string name = "SimGeneric";
        unsigned smCount = 8;
        unsigned warpSize = 32;
        unsigned maxThreadsPerBlock = 1024;
        Dim3 maxBlockDim{1024, 1024, 64};
        Dim3 maxGridDim{2147483647u, 65535u, 65535u};
        std::size_t sharedMemPerBlock = 48 * 1024;
        std::size_t globalMemBytes = std::size_t{1} << 30; // 1 GiB
        double clockGHz = 1.0;
        //! Double precision FMA units per SM (each does 2 flop/cycle).
        unsigned fp64UnitsPerSM = 32;
        //! Threads resident per SM at full occupancy (Kepler: 2048).
        unsigned maxResidentThreadsPerSM = 2048;
        //! Global memory bandwidth in GB/s (Kepler K20: ~208, K80: ~240).
        double memBandwidthGBs = 200.0;
        //! Usable stack bytes per simulated thread (fiber).
        std::size_t fiberStackBytes = 64 * 1024;

        //! Theoretical double precision peak in GFLOPS.
        [[nodiscard]] auto peakGflopsFp64() const noexcept -> double
        {
            return static_cast<double>(smCount) * fp64UnitsPerSM * 2.0 * clockGHz;
        }

        //! Threads the whole device keeps resident at full occupancy.
        [[nodiscard]] auto residentThreadCapacity() const noexcept -> double
        {
            return static_cast<double>(smCount) * maxResidentThreadsPerSM;
        }
    };

    //! \name Occupancy performance model
    //!
    //! The simulator executes kernels *functionally* on the host; its wall
    //! clock therefore reflects host throughput, not device throughput. For
    //! experiments whose effect lives in the device's parallelism (the
    //! paper's Fig. 6: a work division with too few, too heavy threads
    //! starves the GPU), this first-order model estimates device time as
    //!
    //!   t = flops / (peak * occupancy),
    //!   occupancy = min(1, totalThreads / residentThreadCapacity)
    //!
    //! i.e. perfect latency hiding up to the resident-thread capacity and
    //! proportional slowdown below it. Memory coalescing is deliberately
    //! not modeled (DESIGN.md). All quantities are observable launch
    //! parameters, so the model is exactly reproducible.
    //! @{

    //! Fraction of the device's resident-thread capacity used by a launch.
    [[nodiscard]] auto occupancyFraction(DeviceSpec const& spec, GridSpec const& grid) noexcept -> double;

    //! Modeled kernel duration for \p flops floating point operations.
    [[nodiscard]] auto modeledKernelSeconds(DeviceSpec const& spec, GridSpec const& grid, double flops) noexcept
        -> double;

    //! Roofline extension: the kernel additionally moves \p bytes through
    //! global memory; the modeled time is the slower of the compute leg
    //! (occupancy-scaled) and the bandwidth leg.
    [[nodiscard]] auto modeledKernelSecondsRoofline(
        DeviceSpec const& spec,
        GridSpec const& grid,
        double flops,
        double bytes) noexcept -> double;
    //! @}

    //! NVIDIA Tesla K20 (GK110) lookalike: 13 SMs, 64 fp64 units/SM,
    //! 0.706 GHz boost -> ~1.17 TFLOPS fp64 as reported in the paper.
    [[nodiscard]] auto teslaK20Spec() -> DeviceSpec;

    //! One GK210 half of an NVIDIA Tesla K80: 13 SMs, 64 fp64 units/SM,
    //! 0.875 GHz boost -> ~1.45 TFLOPS fp64 as reported in the paper.
    [[nodiscard]] auto teslaK80Spec() -> DeviceSpec;

    //! Small generic device used by tests: quick to simulate and with
    //! deliberately tight limits so that limit violations are testable.
    [[nodiscard]] auto genericSpec() -> DeviceSpec;
} // namespace gpusim
