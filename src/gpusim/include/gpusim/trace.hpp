/// \file Operation tracing used by the Fig. 4 code-generation experiment.
///
/// The paper compares the PTX emitted for an Alpaka kernel with the PTX of
/// the native CUDA kernel and finds them identical up to two unused
/// parameters. Portably we cannot diff PTX, but we can observe the dynamic
/// operation stream: TracedPtr records every load and store (with the
/// element offset relative to the base pointer) into an OpTrace. Running the
/// Alpaka DAXPY and the native DAXPY over traced pointers and diffing the
/// two streams demonstrates the same zero-overhead property at the level of
/// executed memory operations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gpusim
{
    //! One recorded memory operation.
    struct TraceOp
    {
        enum class Kind : std::uint8_t
        {
            Load,
            Store
        };

        Kind kind{};
        //! Which logical array the access hit (user-chosen id, e.g. 0 = X).
        std::uint16_t array = 0;
        //! Element offset relative to the array base.
        std::uint64_t offset = 0;

        [[nodiscard]] auto operator==(TraceOp const&) const noexcept -> bool = default;
    };

    //! Append-only trace of memory operations.
    class OpTrace
    {
    public:
        void clear()
        {
            ops_.clear();
        }
        void record(TraceOp op)
        {
            ops_.push_back(op);
        }
        [[nodiscard]] auto ops() const noexcept -> std::vector<TraceOp> const&
        {
            return ops_;
        }
        [[nodiscard]] auto size() const noexcept -> std::size_t
        {
            return ops_.size();
        }

        //! Index of the first differing operation, or npos if identical.
        [[nodiscard]] static auto firstDifference(OpTrace const& a, OpTrace const& b) -> std::size_t
        {
            auto const n = std::min(a.size(), b.size());
            for(std::size_t i = 0; i < n; ++i)
                if(!(a.ops_[i] == b.ops_[i]))
                    return i;
            if(a.size() != b.size())
                return n;
            return npos;
        }

        static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    private:
        std::vector<TraceOp> ops_;
    };

    template<typename T>
    class TracedRef;

    //! Pointer-like wrapper that records element loads/stores into an
    //! OpTrace. Layout-compatible use: arithmetic and indexing mirror T*.
    template<typename T>
    class TracedPtr
    {
    public:
        TracedPtr(T* base, T* current, std::uint16_t arrayId, OpTrace* trace) noexcept
            : base_(base)
            , p_(current)
            , array_(arrayId)
            , trace_(trace)
        {
        }

        TracedPtr(T* base, std::uint16_t arrayId, OpTrace* trace) noexcept : TracedPtr(base, base, arrayId, trace)
        {
        }

        [[nodiscard]] auto operator[](std::size_t i) const noexcept -> TracedRef<T>
        {
            return TracedRef<T>(p_ + i, base_, array_, trace_);
        }
        [[nodiscard]] auto operator+(std::ptrdiff_t d) const noexcept -> TracedPtr
        {
            return TracedPtr(base_, p_ + d, array_, trace_);
        }
        [[nodiscard]] auto operator*() const noexcept -> TracedRef<T>
        {
            return (*this)[0];
        }

    private:
        T* base_;
        T* p_;
        std::uint16_t array_;
        OpTrace* trace_;
    };

    //! Reference proxy performing the actual recording.
    template<typename T>
    class TracedRef
    {
    public:
        TracedRef(T* p, T* base, std::uint16_t arrayId, OpTrace* trace) noexcept
            : p_(p)
            , base_(base)
            , array_(arrayId)
            , trace_(trace)
        {
        }

        //! Load.
        operator T() const noexcept // NOLINT(google-explicit-constructor)
        {
            trace_->record({TraceOp::Kind::Load, array_, static_cast<std::uint64_t>(p_ - base_)});
            return *p_;
        }

        //! Store.
        auto operator=(T value) noexcept -> TracedRef&
        {
            trace_->record({TraceOp::Kind::Store, array_, static_cast<std::uint64_t>(p_ - base_)});
            *p_ = value;
            return *this;
        }

    private:
        T* p_;
        T* base_;
        std::uint16_t array_;
        OpTrace* trace_;
    };
} // namespace gpusim
