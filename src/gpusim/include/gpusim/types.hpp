/// \file Basic types shared across the GPU simulator.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace gpusim
{
    //! Base error of the simulator.
    class Error : public std::runtime_error
    {
    public:
        using std::runtime_error::runtime_error;
    };

    //! Device memory misuse: out-of-memory, double free, foreign pointer,
    //! out-of-bounds transfer.
    class MemoryError : public Error
    {
    public:
        using Error::Error;
    };

    //! Invalid launch configuration (block too large, too much shared
    //! memory, zero extent, barrier use under the no-barrier hint).
    class LaunchError : public Error
    {
    public:
        using Error::Error;
    };

    //! A block barrier could never complete because threads diverged.
    class DivergenceError : public Error
    {
    public:
        using Error::Error;
    };

    //! Shared drained-state of a stream's work queue, published for
    //! non-blocking observers (the memory pool's destructor-release fence,
    //! DESIGN.md §5.3): `drained` is true whenever the queue is
    //! momentarily empty and idle, `seq` increments on every transition to
    //! drained. Observers hold this state through its own shared_ptr —
    //! never the queue — so a poll can neither block on queue locks nor
    //! become the last owner of a stream (destroying a worker thread from
    //! inside a foreign critical section).
    struct DrainState
    {
        std::atomic<bool> drained{true};
        std::atomic<std::uint64_t> seq{0};
    };

    //! CUDA-dim3-like extent triple.
    struct Dim3
    {
        unsigned x = 1;
        unsigned y = 1;
        unsigned z = 1;

        [[nodiscard]] constexpr auto prod() const noexcept -> std::size_t
        {
            return static_cast<std::size_t>(x) * y * z;
        }
        [[nodiscard]] constexpr auto operator==(Dim3 const&) const noexcept -> bool = default;
    };

    [[nodiscard]] inline auto toString(Dim3 const d) -> std::string
    {
        return "(" + std::to_string(d.x) + "," + std::to_string(d.y) + "," + std::to_string(d.z) + ")";
    }

    //! Kernel launch configuration.
    struct GridSpec
    {
        Dim3 grid{};
        Dim3 block{};
        //! Dynamic shared memory per block in bytes.
        std::size_t sharedMemBytes = 0;
        //! Optimization hint: the kernel never calls ThreadCtx::sync(). The
        //! engine then runs the threads of a block as a plain loop instead of
        //! fibers. Calling sync() under this hint raises LaunchError.
        bool noBarrier = false;
    };
} // namespace gpusim
