/// \file Simulated device global memory.
///
/// Device memory is kept strictly separate from host memory: every
/// allocation is tracked in a registry with exact bounds, the configured
/// device capacity is enforced, and every transfer validates that the device
/// side of the copy lies inside a live allocation. This provides the
/// "explicit deep copies between memory levels" discipline of the paper's
/// memory model with real teeth: host code cannot silently treat a device
/// pointer as ordinary memory without the registry noticing in tests.
#pragma once

#include "gpusim/types.hpp"

#include <cstddef>
#include <map>
#include <mutex>

namespace gpusim
{
    //! Live-allocation statistics of one device.
    struct MemoryStats
    {
        std::size_t liveAllocations = 0;
        std::size_t liveBytes = 0;
        std::size_t peakBytes = 0;
        std::uint64_t totalAllocations = 0;
        std::uint64_t bytesHtoD = 0;
        std::uint64_t bytesDtoH = 0;
        std::uint64_t bytesDtoD = 0;
    };

    //! Allocator + registry for the global memory of one simulated device.
    //! Thread safe (streams may allocate/copy concurrently).
    class MemoryManager
    {
    public:
        //! \param capacityBytes device global memory size to enforce
        //! \param pitchAlignment row alignment for pitched allocations
        explicit MemoryManager(std::size_t capacityBytes, std::size_t pitchAlignment = 256);
        ~MemoryManager();

        MemoryManager(MemoryManager const&) = delete;
        auto operator=(MemoryManager const&) -> MemoryManager& = delete;

        //! Allocates \p bytes of device memory (256-byte aligned).
        //! \throws MemoryError when the device capacity would be exceeded.
        [[nodiscard]] auto allocate(std::size_t bytes) -> void*;

        //! Allocates a pitched 2D/3D region of \p height * \p depth rows of
        //! \p widthBytes each; rows are aligned to the pitch alignment.
        //! \returns pointer and sets \p pitchBytes to the row stride.
        [[nodiscard]] auto allocatePitched(std::size_t widthBytes, std::size_t rows, std::size_t& pitchBytes)
            -> void*;

        //! Frees an allocation. \throws MemoryError for unknown pointers.
        void free(void* ptr);

        //! True if [ptr, ptr+bytes) lies fully inside one live allocation.
        [[nodiscard]] auto owns(void const* ptr, std::size_t bytes = 1) const -> bool;

        //! Validates that a device-side range is addressable.
        //! \throws MemoryError with context \p what otherwise.
        void validateRange(void const* ptr, std::size_t bytes, char const* what) const;

        //! Deep copies with device-side validation. Source/destination
        //! host pointers are the caller's responsibility (plain host memory).
        void copyHtoD(void* dst, void const* src, std::size_t bytes);
        void copyDtoH(void* dst, void const* src, std::size_t bytes);
        void copyDtoD(void* dst, void const* src, std::size_t bytes);
        //! Byte-fill of a device range.
        void fill(void* dst, int value, std::size_t bytes);

        [[nodiscard]] auto capacityBytes() const noexcept -> std::size_t
        {
            return capacity_;
        }
        [[nodiscard]] auto pitchAlignment() const noexcept -> std::size_t
        {
            return pitchAlign_;
        }
        [[nodiscard]] auto stats() const -> MemoryStats;

        //! Number of live allocations — leak-check accessor for tests
        //! (equals stats().liveAllocations but reads as intent).
        [[nodiscard]] auto allocationCount() const -> std::size_t;

    private:
        struct Allocation
        {
            std::size_t bytes = 0;
        };

        std::size_t capacity_;
        std::size_t pitchAlign_;
        mutable std::mutex mutex_;
        std::map<std::byte const*, Allocation> allocations_; // key: base pointer
        MemoryStats stats_{};
    };
} // namespace gpusim
