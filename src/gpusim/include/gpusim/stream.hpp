/// \file In-order work queues (streams) and events of a simulated device.
#pragma once

#include "gpusim/capture.hpp"
#include "gpusim/device.hpp"
#include "gpusim/types.hpp"

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

namespace gpusim
{
    //! Completion marker, recordable into streams and waitable from the host
    //! or from other streams. Like a CUDA event, an Event that was never
    //! recorded counts as complete.
    class Event
    {
    public:
        Event() : state_(std::make_shared<State>())
        {
        }

        [[nodiscard]] auto isDone() const -> bool
        {
            std::scoped_lock lock(state_->mutex);
            return state_->done;
        }

        //! Blocks the calling host thread until the event completed.
        void wait() const
        {
            std::unique_lock lock(state_->mutex);
            state_->cv.wait(lock, [&] { return state_->done; });
        }

        //! \name completion protocol — used by Stream::record and by the
        //! graph replay engine (an event-record graph node re-arms the
        //! event at replay start and completes it when the node runs).
        //! @{
        void markPending() const
        {
            std::scoped_lock lock(state_->mutex);
            state_->done = false;
        }
        void complete() const
        {
            {
                std::scoped_lock lock(state_->mutex);
                state_->done = true;
            }
            state_->cv.notify_all();
        }
        //! @}

        //! Opaque identity of the event's shared state; capture sinks key
        //! cross-stream record/wait edges on it.
        [[nodiscard]] auto key() const noexcept -> void const*
        {
            return state_.get();
        }

    private:
        struct State
        {
            mutable std::mutex mutex;
            mutable std::condition_variable cv;
            bool done = true;
        };

        std::shared_ptr<State> state_;
    };

    //! An in-order work queue of one device; the simulator equivalent of a
    //! CUDA stream (the paper's "stream" abstraction maps 1:1 onto this).
    //!
    //! * Sync streams execute each operation in the enqueuing host thread.
    //! * Async streams execute on a dedicated worker thread; enqueue returns
    //!   immediately.
    //!
    //! Errors thrown by enqueued work are sticky, as on real devices: the
    //! first error is captured, subsequent work is skipped, and the error is
    //! re-thrown on the next wait() (and from the destructor-suppressing
    //! check helper lastError()).
    class Stream
    {
    public:
        Stream(Device& device, bool async);
        ~Stream();

        Stream(Stream const&) = delete;
        auto operator=(Stream const&) -> Stream& = delete;

        [[nodiscard]] auto device() noexcept -> Device&
        {
            return *device_;
        }
        [[nodiscard]] auto isAsync() const noexcept -> bool
        {
            return async_;
        }

        //! Enqueues an arbitrary task (kernel launches and copies use this).
        void enqueue(std::function<void()> task);

        //! Enqueues a kernel launch.
        void launch(GridSpec const& grid, KernelBody body);

        //! Enqueued deep copies / fills with device-side validation.
        void memcpyHtoD(void* dst, void const* src, std::size_t bytes);
        void memcpyDtoH(void* dst, void const* src, std::size_t bytes);
        void memcpyDtoD(void* dst, void const* src, std::size_t bytes);
        void fill(void* dst, int value, std::size_t bytes);

        //! Records \p event: it completes when all previously enqueued work
        //! of this stream has finished.
        void record(Event& event);

        //! Makes subsequent work of this stream wait for \p event.
        void waitFor(Event const& event);

        //! \name stream capture (see gpusim/capture.hpp)
        //! While a sink is attached, enqueued operations are described to
        //! it instead of executing; captured closures bind the *device*,
        //! not this stream, so they stay valid after the stream dies.
        //! Begin/end and captured enqueues are externally synchronized
        //! like all other stream operations.
        //! @{
        //! \throws LaunchError when already capturing.
        void beginCapture(std::shared_ptr<CaptureSink> sink);
        //! Detaches the sink; no-op when not capturing.
        void endCapture() noexcept;
        [[nodiscard]] auto capturing() const noexcept -> bool
        {
            return activeCapture() != nullptr;
        }
        //! Session key of the attached capture (nullptr when not
        //! capturing) — see CaptureSink::sessionKey.
        [[nodiscard]] auto captureSessionKey() const noexcept -> void const*
        {
            auto const* const sink = activeCapture();
            return sink == nullptr ? nullptr : sink->sessionKey();
        }
        //! @}

        //! Blocks until all enqueued work completed.
        //! \throws the sticky error if any task failed; LaunchError when
        //!         the stream is capturing (synchronizing a capture is
        //!         meaningless — there is nothing executing).
        void wait();

        //! True when no work is pending (non-blocking).
        [[nodiscard]] auto idle() const -> bool;

        //! Shared drained-state for non-blocking observers (see
        //! gpusim::DrainState); holding it does not hold the stream. A
        //! sync stream is permanently drained (work runs inline, inside
        //! the enqueue).
        [[nodiscard]] auto drainState() const -> std::shared_ptr<DrainState const>
        {
            return drainState_;
        }

        //! Sticky error of the stream, if any (nullptr otherwise).
        [[nodiscard]] auto lastError() const -> std::exception_ptr;

    private:
        struct Task
        {
            std::function<void()> fn;
            //! Marker tasks (event completion) run even on a broken stream,
            //! otherwise host-side Event::wait() could hang forever after an
            //! error.
            bool always = false;
        };

        void enqueueTask(Task task);
        void runTask(std::function<void()> const& task) noexcept;
        void workerLoop(std::stop_token stop);

        //! The attached sink, or nullptr; drops a sink whose capture
        //! session ended (see CaptureSink lifetime note).
        [[nodiscard]] auto activeCapture() const noexcept -> CaptureSink*
        {
            if(capture_ != nullptr && !capture_->active())
                capture_.reset();
            return capture_.get();
        }

        Device* device_;
        bool async_;
        //! Capture sink; mutable plain member because capture, like
        //! enqueue, is externally synchronized per stream (the lazy drop
        //! in activeCapture mutates from const accessors).
        mutable std::shared_ptr<CaptureSink> capture_;

        mutable std::mutex mutex_;
        std::condition_variable cvWork_;
        std::condition_variable cvDrained_;
        std::deque<Task> queue_;
        bool busy_ = false;
        std::exception_ptr error_{};
        std::shared_ptr<DrainState> drainState_ = std::make_shared<DrainState>();
        std::jthread worker_{}; //!< only for async streams
    };
} // namespace gpusim
