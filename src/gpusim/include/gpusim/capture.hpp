/// \file Stream-capture sink interface.
///
/// A stream (gpusim::Stream, or the alpaka CPU streams built on the same
/// model) can be switched into *capture mode*: instead of executing, its
/// operations are described to a CaptureSink, which records them as nodes
/// of a task graph (see the alpaka graph subsystem, DESIGN.md §4). The
/// interface lives here — the lowest layer whose streams are capturable —
/// so neither the simulator nor the alpaka core has to depend on the graph
/// subsystem that implements it.
///
/// The sink sees three things:
///  * sequential tasks (kernel launches lowered to a closure, copies,
///    fills, host callbacks) — ordered on the capturing stream's timeline;
///  * event records and event waits — identified by an opaque key (the
///    event's shared state), from which the sink derives *cross-stream*
///    dependency edges;
///  * chunked kernels — kernels whose block range the replay engine may
///    split across pool workers instead of running it as one closure.
///
/// Capture mode is controlled per stream (beginCapture/endCapture) and is
/// externally synchronized like every other stream operation: begin/end
/// and the captured enqueues must not race from concurrent threads (the
/// CUDA stream-capture contract).
#pragma once

#include <cstddef>
#include <functional>

namespace gpusim
{
    //! Where a capturing stream's operations go instead of executing.
    //! One sink instance per (capture session, stream): the sink chains
    //! same-stream tasks in order and resolves event keys session-wide.
    //!
    //! Lifetime: streams hold their sink in shared ownership and the
    //! capture session never references the streams back — ending the
    //! session merely *deactivates* its sinks, and a stream drops a
    //! deactivated sink on its next use (or at destruction). Stream and
    //! session may therefore die in any order.
    class CaptureSink
    {
    public:
        virtual ~CaptureSink() = default;

        //! False once the owning capture session ended; the stream then
        //! discards the sink and resumes executing.
        [[nodiscard]] virtual auto active() const noexcept -> bool
        {
            return true;
        }

        //! Identity of the capture *session* this sink belongs to: all
        //! sinks handed out by one session return the same key (sinks are
        //! per stream, sessions usually span several). Pooled graph
        //! buffers use it to verify their free is recorded into the same
        //! session that allocated them.
        [[nodiscard]] virtual auto sessionKey() const noexcept -> void const*
        {
            return this;
        }

        //! A sequential operation on this stream's timeline. \p always
        //! marks tasks that must run even on an errored (poisoned) replay,
        //! e.g. event completion markers.
        virtual void task(std::function<void()> body, bool always) = 0;

        //! A kernel whose index space [0, count) may be split into chunks
        //! and executed concurrently during replay; \p range runs the
        //! half-open chunk [begin, end).
        virtual void kernelChunks(std::size_t count, std::function<void(std::size_t, std::size_t)> range) = 0;

        //! An event record: when replay reaches this point of the stream's
        //! timeline it runs \p complete; \p markPending is re-run at the
        //! start of every replay. \p key identifies the event across
        //! streams of the same capture session.
        virtual void eventRecord(
            void const* key,
            std::function<void()> markPending,
            std::function<void()> complete)
            = 0;

        //! An event wait: everything this stream captures afterwards
        //! depends on the last record of \p key in this capture session.
        //! Waiting for an event never recorded in the session is an error
        //! (there is nothing to order against).
        virtual void eventWait(void const* key) = 0;
    };
} // namespace gpusim
