/// \file Umbrella header of the GPU simulator substrate.
///
/// gpusim is a deterministic software SIMT device: separate global memory
/// with bounds-checked transfers, in-order streams with events, and a grid
/// execution engine that runs the threads of each block as cooperative
/// fibers with real block barriers (including divergence *detection*).
///
/// Within this reproduction it plays the role of the CUDA driver/runtime and
/// the GPU hardware of the paper's evaluation: the Alpaka AccGpuCudaSim
/// back-end maps onto it, and the "native CUDA" baselines are written
/// directly against this API.
#pragma once

#include "gpusim/device.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/memory.hpp"
#include "gpusim/platform.hpp"
#include "gpusim/stream.hpp"
#include "gpusim/trace.hpp"
#include "gpusim/types.hpp"
