#include "gpusim/memory.hpp"

#include "alpaka/core/fault.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <new>

namespace gpusim
{
    namespace
    {
        constexpr std::size_t baseAlignment = 256;

        [[nodiscard]] auto roundUp(std::size_t value, std::size_t mult) noexcept -> std::size_t
        {
            return (value + mult - 1) / mult * mult;
        }
    } // namespace

    MemoryManager::MemoryManager(std::size_t capacityBytes, std::size_t pitchAlignment)
        : capacity_(capacityBytes)
        , pitchAlign_(pitchAlignment)
    {
    }

    MemoryManager::~MemoryManager()
    {
        // Intentionally frees leftovers: a Device owns its memory and takes
        // everything down with it, exactly like a real device reset.
        for(auto const& [ptr, alloc] : allocations_)
            ::operator delete[](const_cast<std::byte*>(ptr), std::align_val_t{baseAlignment});
    }

    auto MemoryManager::allocate(std::size_t bytes) -> void*
    {
        if(bytes == 0)
            throw MemoryError("gpusim: zero-byte device allocation");
        std::scoped_lock lock(mutex_);
        if(stats_.liveBytes + bytes > capacity_)
            throw MemoryError(
                "gpusim: device out of memory (requested " + std::to_string(bytes) + " B, live "
                + std::to_string(stats_.liveBytes) + " B, capacity " + std::to_string(capacity_) + " B)");
        auto* p = static_cast<std::byte*>(::operator new[](bytes, std::align_val_t{baseAlignment}));
        allocations_.emplace(p, Allocation{bytes});
        stats_.liveAllocations += 1;
        stats_.totalAllocations += 1;
        stats_.liveBytes += bytes;
        stats_.peakBytes = std::max(stats_.peakBytes, stats_.liveBytes);
        return p;
    }

    auto MemoryManager::allocatePitched(std::size_t widthBytes, std::size_t rows, std::size_t& pitchBytes) -> void*
    {
        pitchBytes = roundUp(std::max<std::size_t>(widthBytes, 1), pitchAlign_);
        return allocate(pitchBytes * std::max<std::size_t>(rows, 1));
    }

    void MemoryManager::free(void* ptr)
    {
        std::scoped_lock lock(mutex_);
        auto const it = allocations_.find(static_cast<std::byte const*>(ptr));
        if(it == allocations_.end())
            throw MemoryError("gpusim: free of unknown device pointer (double free or foreign pointer)");
        stats_.liveAllocations -= 1;
        stats_.liveBytes -= it->second.bytes;
        allocations_.erase(it);
        ::operator delete[](static_cast<std::byte*>(ptr), std::align_val_t{baseAlignment});
    }

    auto MemoryManager::owns(void const* ptr, std::size_t bytes) const -> bool
    {
        std::scoped_lock lock(mutex_);
        auto const* p = static_cast<std::byte const*>(ptr);
        // Find the last allocation with base <= p.
        auto it = allocations_.upper_bound(p);
        if(it == allocations_.begin())
            return false;
        --it;
        return p >= it->first && p + bytes <= it->first + it->second.bytes;
    }

    void MemoryManager::validateRange(void const* ptr, std::size_t bytes, char const* what) const
    {
        if(!owns(ptr, bytes))
            throw MemoryError(
                std::string("gpusim: ") + what + ": range is not inside a live device allocation");
    }

    void MemoryManager::copyHtoD(void* dst, void const* src, std::size_t bytes)
    {
        // Fault site: an async copy that fails mid-transfer (shared by the
        // three copy directions; stream enqueues turn it into a sticky
        // stream error).
        ALPAKA_FAULT_POINT("gpusim.copy_fail");
        validateRange(dst, bytes, "copyHtoD destination");
        std::memcpy(dst, src, bytes);
        std::scoped_lock lock(mutex_);
        stats_.bytesHtoD += bytes;
    }

    void MemoryManager::copyDtoH(void* dst, void const* src, std::size_t bytes)
    {
        ALPAKA_FAULT_POINT("gpusim.copy_fail");
        validateRange(src, bytes, "copyDtoH source");
        std::memcpy(dst, src, bytes);
        std::scoped_lock lock(mutex_);
        stats_.bytesDtoH += bytes;
    }

    void MemoryManager::copyDtoD(void* dst, void const* src, std::size_t bytes)
    {
        ALPAKA_FAULT_POINT("gpusim.copy_fail");
        validateRange(src, bytes, "copyDtoD source");
        validateRange(dst, bytes, "copyDtoD destination");
        std::memmove(dst, src, bytes);
        std::scoped_lock lock(mutex_);
        stats_.bytesDtoD += bytes;
    }

    void MemoryManager::fill(void* dst, int value, std::size_t bytes)
    {
        validateRange(dst, bytes, "fill destination");
        std::memset(dst, value, bytes);
    }

    auto MemoryManager::stats() const -> MemoryStats
    {
        std::scoped_lock lock(mutex_);
        return stats_;
    }

    auto MemoryManager::allocationCount() const -> std::size_t
    {
        std::scoped_lock lock(mutex_);
        return allocations_.size();
    }
} // namespace gpusim
