#include "gpusim/device_spec.hpp"

#include <algorithm>

namespace gpusim
{
    auto occupancyFraction(DeviceSpec const& spec, GridSpec const& grid) noexcept -> double
    {
        auto const totalThreads = static_cast<double>(grid.grid.prod()) * static_cast<double>(grid.block.prod());
        return std::min(1.0, totalThreads / spec.residentThreadCapacity());
    }

    auto modeledKernelSeconds(DeviceSpec const& spec, GridSpec const& grid, double flops) noexcept -> double
    {
        return flops / (spec.peakGflopsFp64() * 1e9 * occupancyFraction(spec, grid));
    }

    auto modeledKernelSecondsRoofline(
        DeviceSpec const& spec,
        GridSpec const& grid,
        double flops,
        double bytes) noexcept -> double
    {
        auto const computeLeg = modeledKernelSeconds(spec, grid, flops);
        auto const memoryLeg = bytes / (spec.memBandwidthGBs * 1e9);
        return std::max(computeLeg, memoryLeg);
    }

    auto teslaK20Spec() -> DeviceSpec
    {
        DeviceSpec spec;
        spec.name = "SimTeslaK20-GK110";
        spec.smCount = 13;
        spec.warpSize = 32;
        spec.maxThreadsPerBlock = 1024;
        spec.sharedMemPerBlock = 48 * 1024;
        spec.globalMemBytes = std::size_t{5} * 1024 * 1024 * 1024 / 4; // keep sim footprint modest: 1.25 GiB
        spec.clockGHz = 0.706;
        spec.fp64UnitsPerSM = 64;
        spec.memBandwidthGBs = 208.0;
        return spec;
    }

    auto teslaK80Spec() -> DeviceSpec
    {
        DeviceSpec spec;
        spec.name = "SimTeslaK80-GK210";
        spec.smCount = 13;
        spec.warpSize = 32;
        spec.maxThreadsPerBlock = 1024;
        spec.sharedMemPerBlock = 48 * 1024;
        spec.globalMemBytes = std::size_t{3} * 1024 * 1024 * 1024 / 2; // 1.5 GiB
        spec.clockGHz = 0.875;
        spec.fp64UnitsPerSM = 64;
        spec.memBandwidthGBs = 240.0;
        return spec;
    }

    auto genericSpec() -> DeviceSpec
    {
        DeviceSpec spec;
        spec.name = "SimGeneric";
        spec.smCount = 4;
        spec.warpSize = 8;
        spec.maxThreadsPerBlock = 256;
        spec.maxBlockDim = Dim3{256, 256, 64};
        spec.maxGridDim = Dim3{65535, 65535, 65535};
        spec.sharedMemPerBlock = 16 * 1024;
        spec.globalMemBytes = std::size_t{256} * 1024 * 1024;
        spec.clockGHz = 1.0;
        spec.fp64UnitsPerSM = 32;
        spec.maxResidentThreadsPerSM = 512;
        return spec;
    }
} // namespace gpusim
