#include "gpusim/stream.hpp"

#include <utility>

namespace gpusim
{
    Stream::Stream(Device& device, bool async) : device_(&device), async_(async)
    {
        if(async_)
            worker_ = std::jthread([this](std::stop_token stop) { workerLoop(stop); });
    }

    Stream::~Stream()
    {
        if(async_)
        {
            // Drain without throwing; a sticky error is intentionally
            // swallowed here (check wait()/lastError() before destruction to
            // observe it).
            std::unique_lock lock(mutex_);
            cvDrained_.wait(lock, [&] { return queue_.empty() && !busy_; });
            worker_.request_stop();
            cvWork_.notify_all();
        }
    }

    void Stream::runTask(std::function<void()> const& task) noexcept
    {
        try
        {
            task();
        }
        catch(...)
        {
            std::scoped_lock lock(mutex_);
            if(error_ == nullptr)
                error_ = std::current_exception();
        }
    }

    void Stream::workerLoop(std::stop_token stop)
    {
        for(;;)
        {
            Task task;
            {
                std::unique_lock lock(mutex_);
                cvWork_.wait(lock, [&] { return stop.stop_requested() || !queue_.empty(); });
                if(queue_.empty())
                {
                    if(stop.stop_requested())
                        return;
                    continue;
                }
                task = std::move(queue_.front());
                queue_.pop_front();
                busy_ = true;
                if(error_ != nullptr && !task.always)
                    task.fn = nullptr; // sticky error: skip the work
            }
            if(task.fn)
                runTask(task.fn);
            {
                std::scoped_lock lock(mutex_);
                busy_ = false;
            }
            cvDrained_.notify_all();
        }
    }

    void Stream::enqueueTask(Task task)
    {
        if(async_)
        {
            {
                std::scoped_lock lock(mutex_);
                queue_.push_back(std::move(task));
            }
            cvWork_.notify_one();
            return;
        }
        // Sync stream: run in the calling thread, unless already broken.
        {
            std::scoped_lock lock(mutex_);
            if(error_ != nullptr && !task.always)
                return;
        }
        runTask(task.fn);
    }

    void Stream::enqueue(std::function<void()> task)
    {
        enqueueTask(Task{std::move(task), false});
    }

    void Stream::launch(GridSpec const& grid, KernelBody body)
    {
        enqueue([this, grid, body = std::move(body)] { device_->runGrid(grid, body); });
    }

    void Stream::memcpyHtoD(void* dst, void const* src, std::size_t bytes)
    {
        enqueue([this, dst, src, bytes] { device_->memory().copyHtoD(dst, src, bytes); });
    }

    void Stream::memcpyDtoH(void* dst, void const* src, std::size_t bytes)
    {
        enqueue([this, dst, src, bytes] { device_->memory().copyDtoH(dst, src, bytes); });
    }

    void Stream::memcpyDtoD(void* dst, void const* src, std::size_t bytes)
    {
        enqueue([this, dst, src, bytes] { device_->memory().copyDtoD(dst, src, bytes); });
    }

    void Stream::fill(void* dst, int value, std::size_t bytes)
    {
        enqueue([this, dst, value, bytes] { device_->memory().fill(dst, value, bytes); });
    }

    void Stream::record(Event& event)
    {
        event.markPending();
        auto state = event.state_;
        enqueueTask(Task{
            [state]
            {
                {
                    std::scoped_lock lock(state->mutex);
                    state->done = true;
                }
                state->cv.notify_all();
            },
            true});
    }

    void Stream::waitFor(Event const& event)
    {
        auto state = event.state_;
        enqueue(
            [state]
            {
                std::unique_lock lock(state->mutex);
                state->cv.wait(lock, [&] { return state->done; });
            });
    }

    void Stream::wait()
    {
        if(async_)
        {
            std::unique_lock lock(mutex_);
            cvDrained_.wait(lock, [&] { return queue_.empty() && !busy_; });
            if(error_ != nullptr)
                std::rethrow_exception(error_);
            return;
        }
        std::scoped_lock lock(mutex_);
        if(error_ != nullptr)
            std::rethrow_exception(error_);
    }

    auto Stream::idle() const -> bool
    {
        std::scoped_lock lock(mutex_);
        return queue_.empty() && !busy_;
    }

    auto Stream::lastError() const -> std::exception_ptr
    {
        std::scoped_lock lock(mutex_);
        return error_;
    }
} // namespace gpusim
