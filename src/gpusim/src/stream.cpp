#include "gpusim/stream.hpp"

#include <utility>

namespace gpusim
{
    Stream::Stream(Device& device, bool async) : device_(&device), async_(async)
    {
        if(async_)
            worker_ = std::jthread([this](std::stop_token stop) { workerLoop(stop); });
    }

    Stream::~Stream()
    {
        if(async_)
        {
            // Drain without throwing; a sticky error is intentionally
            // swallowed here (check wait()/lastError() before destruction to
            // observe it).
            std::unique_lock lock(mutex_);
            cvDrained_.wait(lock, [&] { return queue_.empty() && !busy_; });
            worker_.request_stop();
            cvWork_.notify_all();
        }
    }

    void Stream::runTask(std::function<void()> const& task) noexcept
    {
        try
        {
            task();
        }
        catch(...)
        {
            std::scoped_lock lock(mutex_);
            if(error_ == nullptr)
                error_ = std::current_exception();
        }
    }

    void Stream::workerLoop(std::stop_token stop)
    {
        for(;;)
        {
            Task task;
            bool skip = false;
            {
                std::unique_lock lock(mutex_);
                cvWork_.wait(lock, [&] { return stop.stop_requested() || !queue_.empty(); });
                if(queue_.empty())
                {
                    if(stop.stop_requested())
                        return;
                    continue;
                }
                task = std::move(queue_.front());
                queue_.pop_front();
                busy_ = true;
                // Sticky error: skip the work — but never destroy the
                // closure under the mutex (it may own the last reference
                // to a pooled buffer whose release takes other locks); it
                // dies with `task` at the end of the iteration, unlocked.
                skip = error_ != nullptr && !task.always;
            }
            if(task.fn && !skip)
                runTask(task.fn);
            {
                std::scoped_lock lock(mutex_);
                busy_ = false;
                if(queue_.empty())
                {
                    drainState_->seq.fetch_add(1, std::memory_order_release);
                    drainState_->drained.store(true, std::memory_order_release);
                }
            }
            cvDrained_.notify_all();
        }
    }

    void Stream::enqueueTask(Task task)
    {
        if(async_)
        {
            {
                std::scoped_lock lock(mutex_);
                queue_.push_back(std::move(task));
                drainState_->drained.store(false, std::memory_order_release);
            }
            cvWork_.notify_one();
            return;
        }
        // Sync stream: run in the calling thread, unless already broken.
        {
            std::scoped_lock lock(mutex_);
            if(error_ != nullptr && !task.always)
                return;
        }
        runTask(task.fn);
    }

    void Stream::enqueue(std::function<void()> task)
    {
        if(auto* const sink = activeCapture(); sink != nullptr)
        {
            sink->task(std::move(task), false);
            return;
        }
        enqueueTask(Task{std::move(task), false});
    }

    void Stream::launch(GridSpec const& grid, KernelBody body)
    {
        // Captured closures bind the device, not the stream: validation ran
        // eagerly (capture-time errors surface at the capture site, like
        // launch-time errors do), and the graph node outlives this stream.
        if(auto* const sink = activeCapture(); sink != nullptr)
        {
            device_->validate(grid);
            sink->task([dev = device_, grid, body = std::move(body)] { dev->runGrid(grid, body); }, false);
            return;
        }
        enqueue([this, grid, body = std::move(body)] { device_->runGrid(grid, body); });
    }

    void Stream::memcpyHtoD(void* dst, void const* src, std::size_t bytes)
    {
        if(auto* const sink = activeCapture(); sink != nullptr)
        {
            sink->task([dev = device_, dst, src, bytes] { dev->memory().copyHtoD(dst, src, bytes); }, false);
            return;
        }
        enqueue([this, dst, src, bytes] { device_->memory().copyHtoD(dst, src, bytes); });
    }

    void Stream::memcpyDtoH(void* dst, void const* src, std::size_t bytes)
    {
        if(auto* const sink = activeCapture(); sink != nullptr)
        {
            sink->task([dev = device_, dst, src, bytes] { dev->memory().copyDtoH(dst, src, bytes); }, false);
            return;
        }
        enqueue([this, dst, src, bytes] { device_->memory().copyDtoH(dst, src, bytes); });
    }

    void Stream::memcpyDtoD(void* dst, void const* src, std::size_t bytes)
    {
        if(auto* const sink = activeCapture(); sink != nullptr)
        {
            sink->task([dev = device_, dst, src, bytes] { dev->memory().copyDtoD(dst, src, bytes); }, false);
            return;
        }
        enqueue([this, dst, src, bytes] { device_->memory().copyDtoD(dst, src, bytes); });
    }

    void Stream::fill(void* dst, int value, std::size_t bytes)
    {
        if(auto* const sink = activeCapture(); sink != nullptr)
        {
            sink->task([dev = device_, dst, value, bytes] { dev->memory().fill(dst, value, bytes); }, false);
            return;
        }
        enqueue([this, dst, value, bytes] { device_->memory().fill(dst, value, bytes); });
    }

    void Stream::record(Event& event)
    {
        // Copies of an Event share its state, so the captured/enqueued
        // copies drive the caller's event through its own public protocol.
        Event const shared = event;
        if(auto* const sink = activeCapture(); sink != nullptr)
        {
            // Capture must not touch the live event; the replay engine
            // re-arms it (markPending) at the start of every replay and
            // completes it when the record node is reached.
            sink->eventRecord(
                shared.key(),
                [shared] { shared.markPending(); },
                [shared] { shared.complete(); });
            return;
        }
        event.markPending();
        enqueueTask(Task{[shared] { shared.complete(); }, true});
    }

    void Stream::waitFor(Event const& event)
    {
        if(auto* const sink = activeCapture(); sink != nullptr)
        {
            sink->eventWait(event.key());
            return;
        }
        Event const shared = event;
        enqueue([shared] { shared.wait(); });
    }

    void Stream::beginCapture(std::shared_ptr<CaptureSink> sink)
    {
        if(activeCapture() != nullptr)
            throw LaunchError("gpusim: beginCapture on a stream that is already capturing");
        if(sink == nullptr)
            throw LaunchError("gpusim: beginCapture requires a sink");
        capture_ = std::move(sink);
    }

    void Stream::endCapture() noexcept
    {
        capture_.reset();
    }

    void Stream::wait()
    {
        if(auto* const sink = activeCapture(); sink != nullptr)
            throw LaunchError("gpusim: wait() on a capturing stream (nothing is executing)");
        if(async_)
        {
            std::unique_lock lock(mutex_);
            cvDrained_.wait(lock, [&] { return queue_.empty() && !busy_; });
            if(error_ != nullptr)
                std::rethrow_exception(error_);
            return;
        }
        std::scoped_lock lock(mutex_);
        if(error_ != nullptr)
            std::rethrow_exception(error_);
    }

    auto Stream::idle() const -> bool
    {
        std::scoped_lock lock(mutex_);
        return queue_.empty() && !busy_;
    }

    auto Stream::lastError() const -> std::exception_ptr
    {
        std::scoped_lock lock(mutex_);
        return error_;
    }
} // namespace gpusim
