#include "gpusim/platform.hpp"

namespace gpusim
{
    Platform::Platform() : specs_{teslaK20Spec(), teslaK80Spec()}
    {
    }

    auto Platform::instance() -> Platform&
    {
        static Platform platform;
        return platform;
    }

    void Platform::configure(std::vector<DeviceSpec> specs)
    {
        std::scoped_lock lock(mutex_);
        if(materialized_)
            throw Error("gpusim::Platform::configure(): devices already materialized");
        if(specs.empty())
            throw Error("gpusim::Platform::configure(): need at least one device spec");
        specs_ = std::move(specs);
    }

    auto Platform::deviceCount() const -> std::size_t
    {
        std::scoped_lock lock(mutex_);
        return specs_.size();
    }

    auto Platform::device(std::size_t idx) -> Device&
    {
        std::scoped_lock lock(mutex_);
        if(idx >= specs_.size())
            throw Error(
                "gpusim::Platform::device(): index " + std::to_string(idx) + " out of range (have "
                + std::to_string(specs_.size()) + " devices)");
        if(devices_.size() < specs_.size())
            devices_.resize(specs_.size());
        if(devices_[idx] == nullptr)
        {
            devices_[idx] = std::make_unique<Device>(specs_[idx], static_cast<int>(idx));
            materialized_ = true;
        }
        return *devices_[idx];
    }

    void Platform::resetForTesting()
    {
        std::scoped_lock lock(mutex_);
        devices_.clear();
        specs_ = {teslaK20Spec(), teslaK80Spec()};
        materialized_ = false;
    }
} // namespace gpusim
