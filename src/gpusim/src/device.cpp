#include "gpusim/device.hpp"

#include "alpaka/core/fault.hpp"

#include <algorithm>
#include <cstring>

namespace gpusim
{
    auto ThreadCtx::warpId() const noexcept -> unsigned
    {
        return static_cast<unsigned>(linearThreadIdx() / device_->spec().warpSize);
    }

    auto ThreadCtx::laneId() const noexcept -> unsigned
    {
        return static_cast<unsigned>(linearThreadIdx() % device_->spec().warpSize);
    }

    void ThreadCtx::sync()
    {
        if(barrier_ == nullptr)
            throw LaunchError(
                "gpusim: ThreadCtx::sync() called in a kernel launched with the noBarrier hint");
        barrier_->arriveAndWait();
        {
            std::scoped_lock lock(device_->statsMutex_);
            ++device_->stats_.barrierWaits;
        }
    }

    Device::Device(DeviceSpec spec, int ordinal)
        : spec_(std::move(spec))
        , ordinal_(ordinal)
        , memory_(spec_.globalMemBytes)
        , scheduler_(fiber::SchedulerConfig{spec_.fiberStackBytes, fiber::defaultSwitchImpl()})
    {
    }

    void Device::validate(GridSpec const& grid) const
    {
        if(grid.grid.prod() == 0 || grid.block.prod() == 0)
            throw LaunchError("gpusim: zero-extent launch");
        if(grid.block.prod() > spec_.maxThreadsPerBlock)
            throw LaunchError(
                "gpusim: " + std::to_string(grid.block.prod()) + " threads per block exceed device limit "
                + std::to_string(spec_.maxThreadsPerBlock));
        if(grid.block.x > spec_.maxBlockDim.x || grid.block.y > spec_.maxBlockDim.y
           || grid.block.z > spec_.maxBlockDim.z)
            throw LaunchError("gpusim: block extent " + toString(grid.block) + " exceeds device limit");
        if(grid.grid.x > spec_.maxGridDim.x || grid.grid.y > spec_.maxGridDim.y || grid.grid.z > spec_.maxGridDim.z)
            throw LaunchError("gpusim: grid extent " + toString(grid.grid) + " exceeds device limit");
        if(grid.sharedMemBytes > spec_.sharedMemPerBlock)
            throw LaunchError(
                "gpusim: " + std::to_string(grid.sharedMemBytes) + " B shared memory exceed device limit "
                + std::to_string(spec_.sharedMemPerBlock));
    }

    void Device::runGrid(GridSpec const& grid, KernelBody const& body)
    {
        validate(grid);
        // Fault site: a kernel that dies after validation. Both the direct
        // launch path and captured-graph replay funnel through here; on an
        // async stream the throw lands in runTask and becomes the sticky
        // stream error the drain/wait protocol must surface.
        ALPAKA_FAULT_POINT("gpusim.kernel_fail");
        std::scoped_lock execLock(execMutex_);

        sharedArena_.resize(grid.sharedMemBytes);

        for(unsigned bz = 0; bz < grid.grid.z; ++bz)
        {
            for(unsigned by = 0; by < grid.grid.y; ++by)
            {
                for(unsigned bx = 0; bx < grid.grid.x; ++bx)
                {
                    Dim3 const blockIdx{bx, by, bz};
                    if(!sharedArena_.empty())
                        std::memset(sharedArena_.data(), 0, sharedArena_.size());
                    if(grid.noBarrier)
                        runBlockLoop(grid, body, blockIdx, sharedArena_.data());
                    else
                        runBlockFibers(grid, body, blockIdx, sharedArena_.data());
                }
            }
        }

        std::scoped_lock statsLock(statsMutex_);
        ++stats_.kernelsLaunched;
        stats_.blocksExecuted += grid.grid.prod();
        stats_.warpsExecuted += grid.grid.prod() * ((grid.block.prod() + spec_.warpSize - 1) / spec_.warpSize);
        stats_.fiberSwitches = scheduler_.switchCount();
    }

    namespace
    {
        //! Decodes a linear in-block thread id into (x,y,z), x fastest.
        [[nodiscard]] auto decodeThreadIdx(Dim3 const block, std::size_t linear) noexcept -> Dim3
        {
            auto const x = static_cast<unsigned>(linear % block.x);
            auto const y = static_cast<unsigned>((linear / block.x) % block.y);
            auto const z = static_cast<unsigned>(linear / (static_cast<std::size_t>(block.x) * block.y));
            return Dim3{x, y, z};
        }
    } // namespace

    void Device::runBlockFibers(GridSpec const& grid, KernelBody const& body, Dim3 blockIdx, std::byte* sharedMem)
    {
        auto const threadCount = grid.block.prod();
        fiber::Barrier barrier(threadCount);
        try
        {
            scheduler_.run(
                threadCount,
                [&](std::size_t const linear)
                {
                    ThreadCtx ctx(blockIdx, decodeThreadIdx(grid.block, linear), grid, sharedMem, &barrier, *this);
                    body(ctx);
                });
        }
        catch(fiber::BarrierDivergenceError const& e)
        {
            throw DivergenceError(
                "gpusim: barrier divergence in block " + toString(blockIdx) + ": " + e.what());
        }
    }

    void Device::runBlockLoop(GridSpec const& grid, KernelBody const& body, Dim3 blockIdx, std::byte* sharedMem)
    {
        auto const threadCount = grid.block.prod();
        for(std::size_t linear = 0; linear < threadCount; ++linear)
        {
            ThreadCtx ctx(blockIdx, decodeThreadIdx(grid.block, linear), grid, sharedMem, nullptr, *this);
            body(ctx);
        }
    }

    auto Device::execStats() const -> ExecStats
    {
        std::scoped_lock lock(statsMutex_);
        return stats_;
    }
} // namespace gpusim
