/// \file Measurement and reporting harness shared by all benchmarks.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace bench
{
    //! Wall-clock seconds of one invocation of \p fn.
    template<typename TFn>
    [[nodiscard]] auto timeOnce(TFn&& fn) -> double
    {
        auto const start = std::chrono::steady_clock::now();
        std::forward<TFn>(fn)();
        auto const stop = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(stop - start).count();
    }

    //! Best-of-\p reps wall-clock seconds (the conventional noise filter
    //! for throughput measurements; Core Guidelines Per.6: measure).
    template<typename TFn>
    [[nodiscard]] auto timeBestOf(std::size_t reps, TFn&& fn) -> double
    {
        double best = 1e300;
        for(std::size_t r = 0; r < reps; ++r)
            best = std::min(best, timeOnce(fn));
        return best;
    }

    //! Simple sample statistics.
    struct Stats
    {
        double min = 0;
        double max = 0;
        double mean = 0;
        double median = 0;
        double stddev = 0;
    };
    [[nodiscard]] auto computeStats(std::vector<double> samples) -> Stats;

    //! GFLOPS from a flop count and seconds.
    [[nodiscard]] inline auto gflops(double flops, double seconds) -> double
    {
        return flops / seconds / 1e9;
    }

    //! True when the benchmark should run its full (longer) sweep; default
    //! is a quick sweep suitable for CI. Toggle with ALPAKA_BENCH_FULL=1.
    [[nodiscard]] auto fullSweep() -> bool;

    //! Number of repetitions to use (more in full mode).
    [[nodiscard]] auto defaultReps() -> std::size_t;

    //! Fixed-width numeric formatting.
    [[nodiscard]] auto fmt(double value, int precision = 3) -> std::string;

    //! Aligned console table with an optional CSV dump, mirroring the way
    //! the paper reports one series per line.
    class Table
    {
    public:
        explicit Table(std::vector<std::string> headers);

        void addRow(std::vector<std::string> cells);
        //! Prints the aligned table to \p os.
        void print(std::ostream& os) const;
        //! Prints "csv: a,b,c" lines for machine consumption.
        void printCsv(std::ostream& os) const;

    private:
        std::vector<std::string> headers_;
        std::vector<std::vector<std::string>> rows_;
    };

    //! Prints a section banner like the paper's figure captions.
    void banner(std::ostream& os, std::string const& title, std::string const& subtitle = {});

    //! Machine-readable benchmark report: a flat JSON document of the form
    //!   {"benchmark": "<name>", "results": [{...}, ...]}
    //! written as BENCH_<name>.json so CI can track the perf trajectory
    //! across PRs. Values are either numbers or strings; no nesting — the
    //! consumers are jq one-liners, not a schema.
    class JsonReport
    {
    public:
        explicit JsonReport(std::string name);

        //! Starts a result record; finish it with num()/str() calls.
        void beginRecord();
        void num(std::string const& key, double value);
        void num(std::string const& key, std::size_t value);
        void str(std::string const& key, std::string const& value);

        //! Serializes the report to "BENCH_<name>.json" inside \p dir (or
        //! the current directory when empty). Returns the path written.
        [[nodiscard]] auto write(std::string const& dir = {}) const -> std::string;

        //! Serializes to \p os.
        void print(std::ostream& os) const;

    private:
        std::string name_;
        std::vector<std::vector<std::pair<std::string, std::string>>> records_;
    };
} // namespace bench
