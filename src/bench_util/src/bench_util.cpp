#include "bench_util/bench_util.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace bench
{
    auto computeStats(std::vector<double> samples) -> Stats
    {
        Stats s;
        if(samples.empty())
            return s;
        std::sort(samples.begin(), samples.end());
        s.min = samples.front();
        s.max = samples.back();
        s.median = samples[samples.size() / 2];
        double sum = 0;
        for(double const v : samples)
            sum += v;
        s.mean = sum / static_cast<double>(samples.size());
        double sq = 0;
        for(double const v : samples)
            sq += (v - s.mean) * (v - s.mean);
        s.stddev = std::sqrt(sq / static_cast<double>(samples.size()));
        return s;
    }

    auto fullSweep() -> bool
    {
        char const* const env = std::getenv("ALPAKA_BENCH_FULL");
        return env != nullptr && env[0] != '\0' && env[0] != '0';
    }

    auto defaultReps() -> std::size_t
    {
        return fullSweep() ? 5 : 3;
    }

    auto fmt(double value, int precision) -> std::string
    {
        std::ostringstream os;
        os << std::fixed << std::setprecision(precision) << value;
        return os.str();
    }

    Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
    {
    }

    void Table::addRow(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    void Table::print(std::ostream& os) const
    {
        std::vector<std::size_t> widths(headers_.size(), 0);
        for(std::size_t c = 0; c < headers_.size(); ++c)
            widths[c] = headers_[c].size();
        for(auto const& row : rows_)
            for(std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
                widths[c] = std::max(widths[c], row[c].size());

        auto const printRow = [&](std::vector<std::string> const& row)
        {
            os << "  ";
            for(std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
                os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
            os << '\n';
        };

        printRow(headers_);
        std::size_t total = 2;
        for(auto const w : widths)
            total += w + 2;
        os << "  " << std::string(total - 2, '-') << '\n';
        for(auto const& row : rows_)
            printRow(row);
    }

    void Table::printCsv(std::ostream& os) const
    {
        auto const line = [&](std::vector<std::string> const& row)
        {
            os << "csv:";
            for(std::size_t c = 0; c < row.size(); ++c)
                os << (c == 0 ? " " : ",") << row[c];
            os << '\n';
        };
        line(headers_);
        for(auto const& row : rows_)
            line(row);
    }

    void banner(std::ostream& os, std::string const& title, std::string const& subtitle)
    {
        os << '\n' << std::string(78, '=') << '\n' << title << '\n';
        if(!subtitle.empty())
            os << subtitle << '\n';
        os << std::string(78, '=') << '\n';
    }
} // namespace bench
