#include "bench_util/bench_util.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace bench
{
    auto computeStats(std::vector<double> samples) -> Stats
    {
        Stats s;
        if(samples.empty())
            return s;
        std::sort(samples.begin(), samples.end());
        s.min = samples.front();
        s.max = samples.back();
        s.median = samples[samples.size() / 2];
        double sum = 0;
        for(double const v : samples)
            sum += v;
        s.mean = sum / static_cast<double>(samples.size());
        double sq = 0;
        for(double const v : samples)
            sq += (v - s.mean) * (v - s.mean);
        s.stddev = std::sqrt(sq / static_cast<double>(samples.size()));
        return s;
    }

    auto fullSweep() -> bool
    {
        char const* const env = std::getenv("ALPAKA_BENCH_FULL");
        return env != nullptr && env[0] != '\0' && env[0] != '0';
    }

    auto defaultReps() -> std::size_t
    {
        return fullSweep() ? 5 : 3;
    }

    auto fmt(double value, int precision) -> std::string
    {
        std::ostringstream os;
        os << std::fixed << std::setprecision(precision) << value;
        return os.str();
    }

    Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
    {
    }

    void Table::addRow(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    void Table::print(std::ostream& os) const
    {
        std::vector<std::size_t> widths(headers_.size(), 0);
        for(std::size_t c = 0; c < headers_.size(); ++c)
            widths[c] = headers_[c].size();
        for(auto const& row : rows_)
            for(std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
                widths[c] = std::max(widths[c], row[c].size());

        auto const printRow = [&](std::vector<std::string> const& row)
        {
            os << "  ";
            for(std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
                os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
            os << '\n';
        };

        printRow(headers_);
        std::size_t total = 2;
        for(auto const w : widths)
            total += w + 2;
        os << "  " << std::string(total - 2, '-') << '\n';
        for(auto const& row : rows_)
            printRow(row);
    }

    void Table::printCsv(std::ostream& os) const
    {
        auto const line = [&](std::vector<std::string> const& row)
        {
            os << "csv:";
            for(std::size_t c = 0; c < row.size(); ++c)
                os << (c == 0 ? " " : ",") << row[c];
            os << '\n';
        };
        line(headers_);
        for(auto const& row : rows_)
            line(row);
    }

    void banner(std::ostream& os, std::string const& title, std::string const& subtitle)
    {
        os << '\n' << std::string(78, '=') << '\n' << title << '\n';
        if(!subtitle.empty())
            os << subtitle << '\n';
        os << std::string(78, '=') << '\n';
    }

    namespace
    {
        auto jsonEscape(std::string const& s) -> std::string
        {
            std::string out;
            out.reserve(s.size());
            for(char const c : s)
            {
                if(c == '"' || c == '\\')
                    out += '\\';
                out += c;
            }
            return out;
        }
    } // namespace

    JsonReport::JsonReport(std::string name) : name_(std::move(name))
    {
    }

    void JsonReport::beginRecord()
    {
        records_.emplace_back();
    }

    void JsonReport::num(std::string const& key, double value)
    {
        std::ostringstream os;
        os << value;
        records_.back().emplace_back(key, os.str());
    }

    void JsonReport::num(std::string const& key, std::size_t value)
    {
        records_.back().emplace_back(key, std::to_string(value));
    }

    void JsonReport::str(std::string const& key, std::string const& value)
    {
        records_.back().emplace_back(key, '"' + jsonEscape(value) + '"');
    }

    void JsonReport::print(std::ostream& os) const
    {
        os << "{\n  \"benchmark\": \"" << jsonEscape(name_) << "\",\n  \"results\": [";
        for(std::size_t r = 0; r < records_.size(); ++r)
        {
            os << (r == 0 ? "\n" : ",\n") << "    {";
            for(std::size_t f = 0; f < records_[r].size(); ++f)
                os << (f == 0 ? "" : ", ") << '"' << jsonEscape(records_[r][f].first)
                   << "\": " << records_[r][f].second;
            os << '}';
        }
        os << "\n  ]\n}\n";
    }

    auto JsonReport::write(std::string const& dir) const -> std::string
    {
        auto path = dir.empty() ? std::string{} : dir + '/';
        path += "BENCH_" + name_ + ".json";
        std::ofstream file(path);
        print(file);
        if(!file)
            throw std::runtime_error("bench::JsonReport: cannot write " + path);
        return path;
    }
} // namespace bench
