/// \file Request/template/introspection types of the kernel-service
/// runtime (DESIGN.md §6).
///
/// The ROADMAP north star — serving heavy traffic from many concurrent
/// clients — needs a vocabulary the layers below deliberately do not
/// have: a *request* (one unit of client work against a registered
/// template), a *tenant* (the fairness domain requests are accounted
/// to), a *template* (work whose structure is registered once and
/// lowered ahead of time), and typed *admission* failures (the
/// backpressure surface of the bounded queue). This header defines that
/// vocabulary; serve/service.hpp composes it with the launch engine,
/// task graphs and the memory pool.
#pragma once

#include "mempool/pool.hpp"

#include "serve/latency.hpp"

#include "alpaka/core/error.hpp"
#include "alpaka/dev.hpp"

#include "graph/graph.hpp"

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace alpaka::serve
{
    //! Admission rejected by the service's bounded queue: the global or
    //! per-tenant capacity is exhausted (backpressure, invariant 13) or a
    //! blocking submit ran out of deadline. A retryable condition — typed
    //! apart from UsageError, which marks non-retryable API misuse.
    class AdmissionError : public std::runtime_error
    {
    public:
        using std::runtime_error::runtime_error;
    };

    //! \name typed request-failure taxonomy (DESIGN.md §7.1)
    //!
    //! Every admitted request's future resolves exactly once (invariant
    //! 16) — when it cannot resolve with the template's own outcome, it
    //! resolves with one of these, so a client can always tell "my work
    //! failed" (KernelExecutionError et al., invariant 15) from "the
    //! service shed or lost my work" and react accordingly (retry, back
    //! off, give up).
    //! @{

    //! The request's CancelToken was cancelled before the work ran.
    class CancelledError : public Error
    {
    public:
        using Error::Error;
    };

    //! The request's deadline expired before the work ran.
    class DeadlineError : public Error
    {
    public:
        using Error::Error;
    };

    //! The worker executing the request was declared lost by the
    //! supervisor (stalled past ServiceOptions::stallTimeout) or died
    //! across shutdown; whether the work ran is unknowable.
    class WorkerLostError : public Error
    {
    public:
        using Error::Error;
    };

    //! Shed under overload: the queue crossed ServiceOptions::
    //! shedWatermark and this request had the most-expired/oldest
    //! deadline (deadline-less requests are never shed).
    class OverloadError : public Error
    {
    public:
        using Error::Error;
    };
    //! @}

    //! Cooperative cancellation handle: the client keeps a copy, attaches
    //! a copy to a Request, and may cancel() at any time. The service
    //! checks at dispatch time — before any kernel work — and sheds a
    //! cancelled request with CancelledError. A default-constructed token
    //! is empty: it can never be cancelled and costs the hot path nothing
    //! (not even an atomic load).
    class CancelToken
    {
    public:
        CancelToken() = default;

        //! A real (cancellable) token.
        [[nodiscard]] static auto make() -> CancelToken
        {
            CancelToken t;
            t.state_ = std::make_shared<std::atomic<bool>>(false);
            return t;
        }

        //! Requests cancellation; idempotent, thread safe, never blocks.
        //! Work already dispatched to a worker is NOT interrupted — the
        //! future then resolves with the work's own outcome (invariant 16
        //! forbids resolving twice, so cancel-after-dispatch is a no-op).
        void cancel() const noexcept
        {
            if(state_ != nullptr)
                state_->store(true, std::memory_order_release);
        }

        [[nodiscard]] auto cancelled() const noexcept -> bool
        {
            return state_ != nullptr && state_->load(std::memory_order_acquire);
        }

        //! False for the empty (never-cancellable) token.
        [[nodiscard]] auto valid() const noexcept -> bool
        {
            return state_ != nullptr;
        }

    private:
        std::shared_ptr<std::atomic<bool>> state_;
    };

    //! Handle of a registered request template.
    using TemplateId = std::uint32_t;

    //! The request payload as a zero-copy view: a span the service hands
    //! through to the template body untouched. This is the wire-to-worker
    //! contract (DESIGN.md §9.2): the net front door decodes a frame and
    //! points the view straight into the connection's receive slot, the
    //! kernel reads and writes those bytes in place, and the response
    //! frame is encoded from the same slot — no payload copy anywhere on
    //! the serving path. The borrowed form is the hot path; owningCopy()
    //! is the fallback for callers whose source buffer dies before the
    //! future resolves (the view then keeps the copy alive by refcount).
    //!
    //! The implicit void* constructor preserves every pre-PR8 call site:
    //! a bare pointer is a borrowed view of unknown (0) size, exactly the
    //! old contract where payload size was the template's private
    //! business.
    class PayloadView
    {
    public:
        PayloadView() = default;

        //! Borrowed span over caller-owned bytes (zero-copy).
        PayloadView(void* data, std::size_t size) noexcept : data_(data), size_(size)
        {
        }

        //! A bare pointer of unknown size (the pre-view call sites).
        PayloadView(void* data) noexcept : data_(data) // NOLINT(google-explicit-constructor)
        {
        }

        //! Owning fallback: copies \p size bytes of \p src into a block
        //! the view (and every Pending copy of it) keeps alive.
        [[nodiscard]] static auto owningCopy(void const* src, std::size_t size) -> PayloadView
        {
            PayloadView v;
            v.owner_ = std::shared_ptr<std::byte[]>(new std::byte[size]);
            std::memcpy(v.owner_.get(), src, size);
            v.data_ = v.owner_.get();
            v.size_ = size;
            return v;
        }

        [[nodiscard]] auto data() const noexcept -> void*
        {
            return data_;
        }
        [[nodiscard]] auto size() const noexcept -> std::size_t
        {
            return size_;
        }
        //! True for the owning fallback, false for borrowed views.
        [[nodiscard]] auto owning() const noexcept -> bool
        {
            return owner_ != nullptr;
        }

    private:
        void* data_ = nullptr;
        std::size_t size_ = 0;
        std::shared_ptr<std::byte[]> owner_;
    };

    //! One unit of client work against a registered template — the full
    //! submission surface. The plain submit(tmpl, tenant, payload)
    //! overloads construct the degenerate form (no deadline, empty
    //! token), which behaves exactly as before the resilience layer.
    struct Request
    {
        TemplateId tmpl = 0;
        //! Fairness/accounting domain; created on first use.
        std::string_view tenant;
        PayloadView payload;
        //! Absolute completion deadline: a request still queued past it
        //! is shed with DeadlineError at dispatch time; under overload,
        //! requests closest to (or past) their deadline are shed first.
        std::optional<std::chrono::steady_clock::time_point> deadline;
        CancelToken cancel;
        //! Trace correlation id (DESIGN.md §10): 0 = untraced. The net
        //! front door sets the wire reqId here, so the request's spans —
        //! frame decode on the poll thread, queue wait and execution on
        //! the serve workers, the completion continuation — share one
        //! async-span id in the exported timeline. Untraced builds carry
        //! the field (it is plumbing, not trace code) but never read it.
        std::uint64_t traceId = 0;
    };

    //! What Service::shutdown(timeout) observed (the bounded-drain
    //! satellite): a clean report means every worker exited and joined
    //! within the timeout and no request was abandoned.
    struct ShutdownReport
    {
        bool clean = true;
        //! Worker threads that exited and were joined in time.
        std::size_t workersJoined = 0;
        //! Fleet slot indices of workers unresponsive within the timeout
        //! (their in-flight requests resolve with WorkerLostError; their
        //! threads are joined — unbounded — by the destructor).
        std::vector<std::size_t> stuckWorkers;
        //! Queued (never-dispatched) requests failed with CancelledError
        //! because no live worker remained to serve them.
        std::size_t abandonedQueued = 0;
        //! In-flight requests failed with WorkerLostError.
        std::size_t orphanedInFlight = 0;
    };

    //! One request of a dispatched batch, as the template's execution
    //! body sees it: the client's payload plus the request-scoped scratch
    //! block the service allocated from the worker device's memory pool
    //! (nullptr when the template declares scratchBytes == 0).
    struct RequestItem
    {
        void* payload = nullptr;
        //! Byte size of the payload view; 0 when the request was
        //! submitted as a bare pointer (the pre-view call sites).
        std::size_t payloadSize = 0;
        void* scratch = nullptr;
    };

    //! The coalesced batch a template execution runs over: 1 request when
    //! the service is idle, up to TemplateDesc::maxBatch under load.
    class BatchView
    {
    public:
        BatchView() = default;
        BatchView(RequestItem const* items, std::size_t count, std::size_t scratchBytes) noexcept
            : items_(items)
            , count_(count)
            , scratchBytes_(scratchBytes)
        {
        }

        [[nodiscard]] auto size() const noexcept -> std::size_t
        {
            return count_;
        }
        [[nodiscard]] auto operator[](std::size_t i) const noexcept -> RequestItem const&
        {
            return items_[i];
        }
        [[nodiscard]] auto scratchBytes() const noexcept -> std::size_t
        {
            return scratchBytes_;
        }

    private:
        RequestItem const* items_ = nullptr;
        std::size_t count_ = 0;
        std::size_t scratchBytes_ = 0;
    };

    class Service;

    //! Per-worker context a graph template's builder receives, once per
    //! worker stream at registration. The builder returns the Graph that
    //! is instantiated into that worker's graph::Exec; its node bodies
    //! reach the batch of the current replay through batch() — a stable
    //! cell the worker binds before every replay and clears after, both
    //! ordered with the replay on the worker's stream (invariant 15).
    class GraphContext
    {
    public:
        [[nodiscard]] auto workerIndex() const noexcept -> std::size_t
        {
            return workerIndex_;
        }
        //! True on a simulated-GPU worker (simDev() is valid), false on a
        //! CPU worker (cpuDev() is valid).
        [[nodiscard]] auto onSim() const noexcept -> bool
        {
            return sim_;
        }
        [[nodiscard]] auto cpuDev() const -> dev::DevCpu
        {
            if(sim_)
                throw UsageError("serve::GraphContext::cpuDev() on a simulated-GPU worker");
            return cpuDev_;
        }
        [[nodiscard]] auto simDev() const -> dev::DevCudaSim
        {
            if(!sim_)
                throw UsageError("serve::GraphContext::simDev() on a CPU worker");
            return *simDev_;
        }
        //! Stable double-indirection to the replay's batch: dereference
        //! once inside a node body to get the BatchView bound to the
        //! replay currently executing on this worker.
        [[nodiscard]] auto batch() const noexcept -> BatchView const* const*
        {
            return cell_;
        }

    private:
        friend class Service;
        GraphContext(
            std::size_t workerIndex,
            dev::DevCpu cpuDev,
            std::optional<dev::DevCudaSim> simDev,
            BatchView const* const* cell) noexcept
            : workerIndex_(workerIndex)
            , sim_(simDev.has_value())
            , cpuDev_(cpuDev)
            , simDev_(simDev)
            , cell_(cell)
        {
        }

        std::size_t workerIndex_;
        bool sim_;
        dev::DevCpu cpuDev_;
        std::optional<dev::DevCudaSim> simDev_;
        BatchView const* const* cell_;
    };

    //! A request template, registered once and lowered ahead of any
    //! traffic. Exactly one of {body, graph} must be set:
    //!
    //!  * body — single-kernel flavour: runs once per request of a batch,
    //!    parallelized over the batch through ONE pre-built ThreadPool
    //!    job per dispatch (threadpool::ThreadPool::PrebuiltJob, frozen
    //!    over [0, maxBatch) at registration). An exception thrown by
    //!    body fails only that request's future (invariant 15).
    //!  * graph — multi-node flavour: the builder is invoked once per
    //!    worker stream at registration and the returned Graph is
    //!    pre-instantiated into a graph::Exec; each dispatch is one
    //!    replay, whatever the batch size. An exception poisons the
    //!    replay (DESIGN.md §4.3) and fails every future of the batch.
    struct TemplateDesc
    {
        std::string name;
        //! Request-scoped scratch allocated per request from the worker
        //! device's mempool::Pool (allocAsync at dispatch, freeAsync after
        //! completion); 0 = none.
        std::size_t scratchBytes = 0;
        //! Largest batch one dispatch may coalesce; 1 disables batching
        //! for this template.
        std::size_t maxBatch = 1;
        std::function<void(RequestItem const&)> body;
        std::function<graph::Graph(GraphContext&)> graph;
    };

    //! \name introspection snapshot types (Service::stats())
    //! @{
    struct TenantStats
    {
        std::string tenant;
        std::size_t queued = 0; //!< admitted, not yet dispatched
        std::uint64_t admitted = 0;
        std::uint64_t completed = 0;
    };

    struct DevicePoolStats
    {
        std::string device;
        mempool::PoolStats pool;
    };

    struct ServiceStats
    {
        std::size_t queued = 0; //!< admitted, not yet dispatched
        std::size_t inFlight = 0; //!< dispatched, future not yet completed
        std::uint64_t admitted = 0;
        std::uint64_t rejected = 0;
        std::uint64_t completed = 0;
        std::uint64_t failed = 0; //!< completed with an error
        std::uint64_t batches = 0; //!< dispatches (>= 1 request each)
        //! \name resilience counters (DESIGN.md §7)
        //! @{
        std::uint64_t shedExpired = 0; //!< shed with DeadlineError
        std::uint64_t shedCancelled = 0; //!< shed with CancelledError
        std::uint64_t shedOverload = 0; //!< shed with OverloadError
        std::uint64_t workersLost = 0; //!< supervisor declared a worker lost
        std::uint64_t workerRestarts = 0; //!< replacement workers installed
        //! @}
        double requestsPerSecond = 0.0; //!< completed / lifetime
        LatencySnapshot latency;
        //! The raw histogram behind `latency` — the mergeable form the
        //! net::Router sums across shards (quantiles do not merge,
        //! buckets do; DESIGN.md §9.3).
        LatencyCounts latencyCounts;
        //! Admission→dispatch wait per request — the queue-pressure
        //! signal the autoscaling follow-on feeds on (DESIGN.md §10.4);
        //! recorded unconditionally (a metric, not a trace event).
        LatencySnapshot queueWait;
        LatencyCounts queueWaitCounts;
        //! The operator-declared queue-wait SLO budget
        //! (ServiceOptions::queueWaitBudget); 0 = unset.
        std::uint64_t queueWaitBudgetUs = 0;
        std::vector<TenantStats> tenants;
        //! One entry per distinct device of the worker fleet, via the
        //! coherent mempool::Pool::stats() snapshot.
        std::vector<DevicePoolStats> devicePools;
    };
    //! @}
} // namespace alpaka::serve
