/// \file Request/template/introspection types of the kernel-service
/// runtime (DESIGN.md §6).
///
/// The ROADMAP north star — serving heavy traffic from many concurrent
/// clients — needs a vocabulary the layers below deliberately do not
/// have: a *request* (one unit of client work against a registered
/// template), a *tenant* (the fairness domain requests are accounted
/// to), a *template* (work whose structure is registered once and
/// lowered ahead of time), and typed *admission* failures (the
/// backpressure surface of the bounded queue). This header defines that
/// vocabulary; serve/service.hpp composes it with the launch engine,
/// task graphs and the memory pool.
#pragma once

#include "mempool/pool.hpp"

#include "alpaka/core/error.hpp"
#include "alpaka/dev.hpp"

#include "graph/graph.hpp"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace alpaka::serve
{
    //! Admission rejected by the service's bounded queue: the global or
    //! per-tenant capacity is exhausted (backpressure, invariant 13) or a
    //! blocking submit ran out of deadline. A retryable condition — typed
    //! apart from UsageError, which marks non-retryable API misuse.
    class AdmissionError : public std::runtime_error
    {
    public:
        using std::runtime_error::runtime_error;
    };

    //! Handle of a registered request template.
    using TemplateId = std::uint32_t;

    //! One request of a dispatched batch, as the template's execution
    //! body sees it: the client's payload plus the request-scoped scratch
    //! block the service allocated from the worker device's memory pool
    //! (nullptr when the template declares scratchBytes == 0).
    struct RequestItem
    {
        void* payload = nullptr;
        void* scratch = nullptr;
    };

    //! The coalesced batch a template execution runs over: 1 request when
    //! the service is idle, up to TemplateDesc::maxBatch under load.
    class BatchView
    {
    public:
        BatchView() = default;
        BatchView(RequestItem const* items, std::size_t count, std::size_t scratchBytes) noexcept
            : items_(items)
            , count_(count)
            , scratchBytes_(scratchBytes)
        {
        }

        [[nodiscard]] auto size() const noexcept -> std::size_t
        {
            return count_;
        }
        [[nodiscard]] auto operator[](std::size_t i) const noexcept -> RequestItem const&
        {
            return items_[i];
        }
        [[nodiscard]] auto scratchBytes() const noexcept -> std::size_t
        {
            return scratchBytes_;
        }

    private:
        RequestItem const* items_ = nullptr;
        std::size_t count_ = 0;
        std::size_t scratchBytes_ = 0;
    };

    class Service;

    //! Per-worker context a graph template's builder receives, once per
    //! worker stream at registration. The builder returns the Graph that
    //! is instantiated into that worker's graph::Exec; its node bodies
    //! reach the batch of the current replay through batch() — a stable
    //! cell the worker binds before every replay and clears after, both
    //! ordered with the replay on the worker's stream (invariant 15).
    class GraphContext
    {
    public:
        [[nodiscard]] auto workerIndex() const noexcept -> std::size_t
        {
            return workerIndex_;
        }
        //! True on a simulated-GPU worker (simDev() is valid), false on a
        //! CPU worker (cpuDev() is valid).
        [[nodiscard]] auto onSim() const noexcept -> bool
        {
            return sim_;
        }
        [[nodiscard]] auto cpuDev() const -> dev::DevCpu
        {
            if(sim_)
                throw UsageError("serve::GraphContext::cpuDev() on a simulated-GPU worker");
            return cpuDev_;
        }
        [[nodiscard]] auto simDev() const -> dev::DevCudaSim
        {
            if(!sim_)
                throw UsageError("serve::GraphContext::simDev() on a CPU worker");
            return *simDev_;
        }
        //! Stable double-indirection to the replay's batch: dereference
        //! once inside a node body to get the BatchView bound to the
        //! replay currently executing on this worker.
        [[nodiscard]] auto batch() const noexcept -> BatchView const* const*
        {
            return cell_;
        }

    private:
        friend class Service;
        GraphContext(
            std::size_t workerIndex,
            dev::DevCpu cpuDev,
            std::optional<dev::DevCudaSim> simDev,
            BatchView const* const* cell) noexcept
            : workerIndex_(workerIndex)
            , sim_(simDev.has_value())
            , cpuDev_(cpuDev)
            , simDev_(simDev)
            , cell_(cell)
        {
        }

        std::size_t workerIndex_;
        bool sim_;
        dev::DevCpu cpuDev_;
        std::optional<dev::DevCudaSim> simDev_;
        BatchView const* const* cell_;
    };

    //! A request template, registered once and lowered ahead of any
    //! traffic. Exactly one of {body, graph} must be set:
    //!
    //!  * body — single-kernel flavour: runs once per request of a batch,
    //!    parallelized over the batch through ONE pre-built ThreadPool
    //!    job per dispatch (threadpool::ThreadPool::PrebuiltJob, frozen
    //!    over [0, maxBatch) at registration). An exception thrown by
    //!    body fails only that request's future (invariant 15).
    //!  * graph — multi-node flavour: the builder is invoked once per
    //!    worker stream at registration and the returned Graph is
    //!    pre-instantiated into a graph::Exec; each dispatch is one
    //!    replay, whatever the batch size. An exception poisons the
    //!    replay (DESIGN.md §4.3) and fails every future of the batch.
    struct TemplateDesc
    {
        std::string name;
        //! Request-scoped scratch allocated per request from the worker
        //! device's mempool::Pool (allocAsync at dispatch, freeAsync after
        //! completion); 0 = none.
        std::size_t scratchBytes = 0;
        //! Largest batch one dispatch may coalesce; 1 disables batching
        //! for this template.
        std::size_t maxBatch = 1;
        std::function<void(RequestItem const&)> body;
        std::function<graph::Graph(GraphContext&)> graph;
    };

    //! \name introspection snapshot types (Service::stats())
    //! @{
    struct TenantStats
    {
        std::string tenant;
        std::size_t queued = 0; //!< admitted, not yet dispatched
        std::uint64_t admitted = 0;
        std::uint64_t completed = 0;
    };

    //! Latency quantiles from the service's log2-bucketed histogram of
    //! request latencies (admission to future completion). Quantiles are
    //! upper bucket bounds, i.e. conservative to within a factor of 2.
    struct LatencySnapshot
    {
        std::uint64_t count = 0;
        double p50Us = 0.0;
        double p99Us = 0.0;
        double maxUs = 0.0;
    };

    struct DevicePoolStats
    {
        std::string device;
        mempool::PoolStats pool;
    };

    struct ServiceStats
    {
        std::size_t queued = 0; //!< admitted, not yet dispatched
        std::size_t inFlight = 0; //!< dispatched, future not yet completed
        std::uint64_t admitted = 0;
        std::uint64_t rejected = 0;
        std::uint64_t completed = 0;
        std::uint64_t failed = 0; //!< completed with an error
        std::uint64_t batches = 0; //!< dispatches (>= 1 request each)
        double requestsPerSecond = 0.0; //!< completed / lifetime
        LatencySnapshot latency;
        std::vector<TenantStats> tenants;
        //! One entry per distinct device of the worker fleet, via the
        //! coherent mempool::Pool::stats() snapshot.
        std::vector<DevicePoolStats> devicePools;
    };
    //! @}
} // namespace alpaka::serve
