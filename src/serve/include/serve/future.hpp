/// \file serve::Future — completion handle of a submitted request
/// (DESIGN.md §6.2).
///
/// A Future is the client's side of one request: poll it, block on it
/// (with or without deadline), or attach a continuation. Completion is
/// one-shot and carries an optional error; the service never delivers a
/// value through the future — results travel through the request payload
/// the client owns, so the hot completion path moves no data.
#pragma once

#include "alpaka/core/error.hpp"
#include "alpaka/core/mpmc_ring.hpp"

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace alpaka::serve
{
    class Service;

    namespace detail
    {
        //! Block-recycling allocator for the per-request Future::State
        //! control block: retired blocks park in a lock-free ring and the
        //! next submission reuses one, so steady-state serving touches
        //! the heap for none of its futures (zero-allocation audit,
        //! DESIGN.md §8.9). One cache per block size (allocate_shared
        //! instantiates this for its combined state+refcount node); the
        //! ring is intentionally leaked at exit — blocks cached inside it
        //! stay reachable, so leak checkers stay quiet and a Future
        //! outliving main() can still retire its block safely.
        template<typename T>
        class RecyclingAllocator
        {
        public:
            using value_type = T;

            RecyclingAllocator() noexcept = default;

            template<typename U>
            explicit RecyclingAllocator(RecyclingAllocator<U> const&) noexcept
            {
            }

            [[nodiscard]] auto allocate(std::size_t n) -> T*
            {
                if(n == 1)
                {
                    void* block = nullptr;
                    if(cache().pop(block))
                        return static_cast<T*>(block);
                }
                return static_cast<T*>(::operator new(n * sizeof(T)));
            }

            void deallocate(T* p, std::size_t n) noexcept
            {
                if(n == 1 && cache().push(static_cast<void*>(p)))
                    return;
                ::operator delete(p);
            }

            friend auto operator==(RecyclingAllocator const&, RecyclingAllocator const&) noexcept -> bool
            {
                return true;
            }

        private:
            static auto cache() -> core::MpmcRing<void*>&
            {
                static auto* const ring = new core::MpmcRing<void*>(4096);
                return *ring;
            }
        };
    } // namespace detail

    class Future
    {
    public:
        //! An empty future (valid() == false); submitting yields real ones.
        Future() = default;

        [[nodiscard]] auto valid() const noexcept -> bool
        {
            return state_ != nullptr;
        }

        //! Non-blocking: has the request completed (successfully or not)?
        [[nodiscard]] auto poll() const -> bool
        {
            auto& state = requireState();
            std::scoped_lock lock(state.mutex);
            return state.done;
        }

        //! Blocks until completion; rethrows the request's error, if any.
        void wait() const
        {
            auto& state = requireState();
            std::unique_lock lock(state.mutex);
            state.cv.wait(lock, [&] { return state.done; });
            if(state.error != nullptr)
                std::rethrow_exception(state.error);
        }

        //! Blocks up to \p timeout. \returns true when the request
        //! completed (rethrowing its error like wait()), false on timeout.
        auto waitFor(std::chrono::nanoseconds timeout) const -> bool
        {
            auto& state = requireState();
            std::unique_lock lock(state.mutex);
            if(!state.cv.wait_for(lock, timeout, [&] { return state.done; }))
                return false;
            if(state.error != nullptr)
                std::rethrow_exception(state.error);
            return true;
        }

        //! The request's error (nullptr when it succeeded or is still in
        //! flight). Never throws on a completed future — the inspecting
        //! twin of wait().
        [[nodiscard]] auto error() const -> std::exception_ptr
        {
            auto& state = requireState();
            std::scoped_lock lock(state.mutex);
            return state.error;
        }

        //! Attaches a continuation: runs with the request's error (or
        //! nullptr on success) when it completes — on the completing
        //! worker thread, or inline right now when already complete.
        //! Continuations must not block the worker for long and must not
        //! throw.
        //!
        //! Allocation contract (DESIGN.md §9.2): the FIRST continuation
        //! lands in an inline slot of the request's recycled state block,
        //! so one then() per request — the wire completion path — costs
        //! the heap nothing as long as the callable's capture fits
        //! std::function's small-object buffer (two pointers). Further
        //! continuations spill to a vector and may allocate.
        void then(std::function<void(std::exception_ptr)> fn) const
        {
            auto& state = requireState();
            {
                std::unique_lock lock(state.mutex);
                if(!state.done)
                {
                    if(!state.hasFirst)
                    {
                        state.first = std::move(fn);
                        state.hasFirst = true;
                    }
                    else
                    {
                        state.continuations.push_back(std::move(fn));
                    }
                    return;
                }
            }
            fn(error());
        }

    private:
        friend class Service;
        friend struct FutureTestAccess;

        struct State
        {
            std::mutex mutex;
            std::condition_variable cv;
            bool done = false;
            //! First-continuation inline slot (see then()).
            bool hasFirst = false;
            std::exception_ptr error;
            std::function<void(std::exception_ptr)> first;
            std::vector<std::function<void(std::exception_ptr)>> continuations;
        };

        //! State factory of the serving hot path: pooled through the
        //! recycling allocator, so per-request future creation allocates
        //! only until the cache warmed up.
        [[nodiscard]] static auto makeState() -> std::shared_ptr<State>
        {
            return std::allocate_shared<State>(detail::RecyclingAllocator<State>{});
        }

        //! Using an empty future is misuse, reported typed — never a null
        //! dereference (\throws UsageError).
        [[nodiscard]] auto requireState() const -> State&
        {
            if(state_ == nullptr)
                throw UsageError("serve::Future: operation on an empty (default-constructed) future");
            return *state_;
        }

        //! One-shot completion, called by the service's worker or the
        //! supervisor. The two race under a single injected fault (a
        //! worker declared lost may still finish its batch); the done
        //! check under the lock makes the loser's attempt a no-op, so a
        //! future resolves exactly once whoever wins (invariant 16; the
        //! claim protocol on InFlightBatch makes the race rare, this is
        //! the backstop that makes it impossible to lose). Runs the
        //! continuations outside the lock (they may touch the future).
        //! \returns true when this call resolved the future.
        static auto complete(std::shared_ptr<State> const& state, std::exception_ptr error) -> bool
        {
            std::function<void(std::exception_ptr)> first;
            std::vector<std::function<void(std::exception_ptr)>> continuations;
            {
                std::scoped_lock lock(state->mutex);
                if(state->done)
                    return false;
                state->done = true;
                state->error = error;
                first = std::exchange(state->first, {});
                continuations = std::exchange(state->continuations, {});
            }
            state->cv.notify_all();
            if(first != nullptr)
                first(error);
            for(auto const& fn : continuations)
                fn(error);
            return true;
        }

        explicit Future(std::shared_ptr<State> state) noexcept : state_(std::move(state))
        {
        }

        std::shared_ptr<State> state_;
    };

    //! Test-only backdoor: drives a future's completion without a running
    //! service, so the race tests (then-vs-complete, cancel-vs-complete,
    //! double resolution) can pin the exact interleavings the resilience
    //! layer makes reachable. Not part of the public API.
    struct FutureTestAccess
    {
        std::shared_ptr<Future::State> state = std::make_shared<Future::State>();

        [[nodiscard]] auto future() const -> Future
        {
            return Future(state);
        }
        //! \returns true when this call resolved the future (one-shot).
        auto complete(std::exception_ptr error) const -> bool
        {
            return Future::complete(state, error);
        }
    };
} // namespace alpaka::serve
