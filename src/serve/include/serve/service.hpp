/// \file serve::Service — the kernel-as-a-service runtime (DESIGN.md §6).
///
/// Everything below this layer prices ONE client's work: the launch
/// engine makes a kernel launch nearly free (§3), graphs replay a frozen
/// pipeline for one pool job (§4), the memory pool recycles scratch
/// without serializing a stream (§5). A service has MANY clients, and
/// composing the layers under sustained concurrent load is its own
/// problem: admission must be bounded (a million users cannot all be "in
/// the queue"), dispatch must be fair across tenants (one chatty client
/// must not starve the rest), and per-request submission cost must be
/// amortized when traffic bursts (batching). serve::Service is that
/// composition:
///
///  * A fleet of worker streams spread over devices (DevCpu and any
///    number of DevCudaSim entries). Each worker owns its streams and
///    dispatches from its own thread, so the fleet's pool submissions
///    land in distinct ThreadPool job-ring slots (per-thread slot
///    affinity, §3.7) and overlap exactly like the paper's streams.
///  * Request templates, registered once and lowered ahead of traffic:
///    single-kernel templates freeze a threadpool PrebuiltJob over the
///    batch index space; graph templates pre-instantiate one graph::Exec
///    per worker (the builder sees each worker's device). Dispatch cost
///    is then independent of template complexity — the §4 replay story
///    carried to the serving layer.
///  * A bounded MPMC admission queue with per-tenant accounting:
///    submit() fails fast with AdmissionError when the global or
///    per-tenant bound is hit, submitFor() blocks up to a deadline for
///    space (backpressure, invariant 13).
///  * Per-tenant fair scheduling: workers pick the next non-empty tenant
///    round-robin; one pick drains at most one template's maxBatch from
///    that tenant before the cursor moves on (invariant 14).
///  * Adaptive batching: a dispatch coalesces the run of same-template
///    requests at the head of the picked tenant's queue, capped by the
///    template's maxBatch. Batch size therefore tracks instantaneous
///    queue depth — 1 when idle (no artificial delay is ever added to a
///    lone request), growing toward maxBatch exactly when submission
///    cost matters, which is what amortizes it (§6.3).
///  * Request-scoped memory: scratchBytes per request come from the
///    worker device's mempool::Pool via allocAsync/freeAsync — steady
///    state serves every request from recycled blocks (§5).
///  * Completion via serve::Future (poll/wait/waitFor/then); a failing
///    request fails only its own future (invariant 15).
///  * Introspection: Service::stats() — queue depths per tenant,
///    in-flight count, throughput, a p50/p99 latency histogram snapshot
///    and the coherent per-device pool stats.
#pragma once

#include "serve/future.hpp"
#include "serve/types.hpp"

#include "mempool/stream_ops.hpp"

#include "alpaka/stream.hpp"

#include "graph/exec.hpp"

#include "threadpool/thread_pool.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace alpaka::serve
{
    struct ServiceOptions
    {
        //! CPU worker streams (>= 1 worker total across both kinds).
        std::size_t cpuWorkers = 2;
        //! One simulated-GPU worker stream per entry; repeat a device for
        //! several workers on it.
        std::vector<dev::DevCudaSim> simDevs;
        //! Global admission bound: queued (admitted, undispatched)
        //! requests never exceed this (invariant 13).
        std::size_t queueCapacity = 1024;
        //! Per-tenant admission bound; 0 means queueCapacity.
        std::size_t tenantCapacity = 0;
        //! Bound on distinct tenants (their accounting records persist
        //! for the service lifetime); a submit naming a tenant beyond the
        //! bound is rejected with AdmissionError. 0 = unbounded.
        std::size_t maxTenants = 0;
        //! Execution substrate; nullptr = ThreadPool::global().
        threadpool::ThreadPool* pool = nullptr;
    };

    class Service
    {
    public:
        using Options = ServiceOptions;

        explicit Service(Options options = {});
        //! Stops admission, finishes every already-admitted request (all
        //! futures complete), then joins the fleet.
        ~Service();

        Service(Service const&) = delete;
        auto operator=(Service const&) -> Service& = delete;

        //! Registers \p desc (see TemplateDesc for the two flavours) and
        //! lowers it for every worker: kernel templates are frozen into
        //! per-worker PrebuiltJobs, graph builders run once per worker and
        //! the Graphs are instantiated into per-worker graph::Exec
        //! objects. Callable any time, including while serving. \throws
        //! UsageError for an ill-formed descriptor (neither or both
        //! flavours set, maxBatch == 0).
        auto registerTemplate(TemplateDesc desc) -> TemplateId;

        //! Admits one request of \p tmpl for \p tenant (created on first
        //! use). Never blocks: \throws AdmissionError when the global or
        //! tenant queue bound is reached or the service is shutting down.
        //! \throws UsageError for an unknown template id.
        auto submit(TemplateId tmpl, std::string_view tenant, void* payload) -> Future;

        //! Blocking submit: waits up to \p timeout for queue space, then
        //! admits. \throws AdmissionError when the deadline expires first.
        auto submitFor(TemplateId tmpl, std::string_view tenant, void* payload, std::chrono::nanoseconds timeout)
            -> Future;

        //! Blocks until no request is queued or in flight.
        void drain();

        //! Coherent introspection snapshot (per-device pool stats come
        //! from mempool::Pool::stats(), the single-lock variant).
        [[nodiscard]] auto stats() const -> ServiceStats;

        [[nodiscard]] auto workerCount() const noexcept -> std::size_t
        {
            return workers_.size();
        }

    private:
        struct TemplateState;

        //! Log2-bucketed latency histogram, lock-free on the record path.
        class LatencyHistogram
        {
        public:
            void record(std::uint64_t us) noexcept;
            [[nodiscard]] auto snapshot() const -> LatencySnapshot;

        private:
            static constexpr std::size_t bucketCount = 48;
            std::array<std::atomic<std::uint64_t>, bucketCount> counts_{};
            std::atomic<std::uint64_t> maxUs_{0};
        };

        struct TenantState;

        //! One admitted, not-yet-dispatched request.
        struct Pending
        {
            TemplateState* tmpl = nullptr;
            TenantState* tenant = nullptr;
            void* payload = nullptr;
            std::shared_ptr<Future::State> future;
            std::chrono::steady_clock::time_point admitted;
        };

        struct TenantState
        {
            std::string name;
            std::deque<Pending> queue;
            std::uint64_t admitted = 0;
            std::uint64_t completed = 0;
        };

        struct Worker
        {
            std::size_t index = 0;
            dev::DevCpu cpuDev{};
            std::optional<dev::DevCudaSim> simDev;
            //! Replay driver + CPU scratch timeline; the worker thread IS
            //! this stream's execution (synchronous stream), so template
            //! errors surface in the worker and never poison a queue.
            std::optional<stream::StreamCpuSync> driver;
            //! Scratch timeline of simulated-GPU workers.
            std::optional<stream::StreamCudaSimSync> simStream;
            mempool::Pool* pool = nullptr;
            //! Reused batch-item buffer of this worker's dispatches — the
            //! dispatch hot path performs no allocation of its own.
            std::vector<RequestItem> items;
            std::thread thread;
        };

        struct PerWorker;

        //! Stable per-(template, worker) callable of the kernel flavour's
        //! pre-built job: runs the body for its batch index, captures the
        //! request's error without ever throwing into the pool job.
        struct KernelRun
        {
            TemplateState const* tmpl = nullptr;
            PerWorker* per = nullptr;
            void operator()(std::size_t index) const;
        };

        //! Per-(template, worker) lowered state (stable address).
        struct PerWorker
        {
            //! The batch bound to the dispatch currently executing on
            //! this worker; written and cleared by the worker thread
            //! around the pool-job/replay, which orders the accesses of
            //! pool workers (invariant 15).
            BatchView const* cell = nullptr;
            KernelRun run{};
            std::vector<std::exception_ptr> itemErrors;
            threadpool::ThreadPool::PrebuiltJob job{};
            std::unique_ptr<graph::Exec> exec;
        };

        struct TemplateState
        {
            TemplateId id = 0;
            TemplateDesc desc;
            bool isGraph = false;
            std::vector<std::unique_ptr<PerWorker>> perWorker;
        };

        //! One dispatch: a same-template run popped from one tenant.
        struct Batch
        {
            TemplateState* tmpl = nullptr;
            std::vector<Pending> requests;
        };

        auto admit(
            TemplateId tmpl,
            std::string_view tenant,
            void* payload,
            std::chrono::steady_clock::time_point const* deadline) -> Future;
        [[nodiscard]] auto resolveTemplate(TemplateId id) -> TemplateState*;
        [[nodiscard]] auto tenantLocked(std::string_view name) -> TenantState*;
        [[nodiscard]] auto popBatchLocked() -> Batch;
        void workerLoop(Worker& worker);
        //! Runs \p batch on \p worker and completes its futures.
        //! \returns the number of requests that failed.
        auto execute(Worker& worker, Batch& batch) -> std::size_t;
        [[nodiscard]] auto allocScratch(Worker& worker, std::size_t bytes) -> void*;
        void freeScratch(Worker& worker, void* ptr);

        Options options_;
        threadpool::ThreadPool* pool_;
        std::chrono::steady_clock::time_point born_ = std::chrono::steady_clock::now();

        //! Registry: append-only under registryMutex_; TemplateState
        //! addresses are stable, so dispatch never needs this lock.
        mutable std::mutex registryMutex_;
        std::vector<std::unique_ptr<TemplateState>> templates_;

        //! Admission/scheduling state under one mutex (short critical
        //! sections: queue push/pop and counter updates only — execution
        //! never holds it).
        mutable std::mutex mutex_;
        std::condition_variable workCv_; //!< workers: work available / stop
        std::condition_variable spaceCv_; //!< blocking submitters: space freed
        std::condition_variable idleCv_; //!< drain(): everything completed
        std::unordered_map<std::string, std::unique_ptr<TenantState>> tenants_;
        std::vector<TenantState*> tenantOrder_; //!< creation order (stats)
        //! Tenants with a non-empty queue, in round-robin rotation: a
        //! tenant enters at the back on its 0→1 queue transition, the
        //! scheduler pops the front and re-appends it while non-empty.
        //! Dispatch therefore never scans idle tenants — O(1) per pick
        //! however many tenants exist.
        std::deque<TenantState*> active_;
        std::size_t queued_ = 0;
        std::size_t inFlight_ = 0;
        std::uint64_t admitted_ = 0;
        std::uint64_t rejected_ = 0;
        std::uint64_t completed_ = 0;
        std::uint64_t failed_ = 0;
        std::uint64_t batches_ = 0;
        bool stop_ = false;

        LatencyHistogram latency_;
        std::vector<std::unique_ptr<Worker>> workers_;
    };
} // namespace alpaka::serve
