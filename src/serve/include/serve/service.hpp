/// \file serve::Service — the kernel-as-a-service runtime (DESIGN.md §6).
///
/// Everything below this layer prices ONE client's work: the launch
/// engine makes a kernel launch nearly free (§3), graphs replay a frozen
/// pipeline for one pool job (§4), the memory pool recycles scratch
/// without serializing a stream (§5). A service has MANY clients, and
/// composing the layers under sustained concurrent load is its own
/// problem: admission must be bounded (a million users cannot all be "in
/// the queue"), dispatch must be fair across tenants (one chatty client
/// must not starve the rest), and per-request submission cost must be
/// amortized when traffic bursts (batching). serve::Service is that
/// composition:
///
///  * A fleet of worker streams spread over devices (DevCpu and any
///    number of DevCudaSim entries). Each worker owns its streams and
///    dispatches from its own thread, so the fleet's pool submissions
///    land in distinct ThreadPool job-ring slots (per-thread slot
///    affinity, §3.7) and overlap exactly like the paper's streams.
///  * Request templates, registered once and lowered ahead of traffic:
///    single-kernel templates freeze a threadpool PrebuiltJob over the
///    batch index space; graph templates pre-instantiate one graph::Exec
///    per worker (the builder sees each worker's device). Dispatch cost
///    is then independent of template complexity — the §4 replay story
///    carried to the serving layer.
///  * A bounded MPMC admission queue with per-tenant accounting:
///    submit() fails fast with AdmissionError when the global or
///    per-tenant bound is hit, submitFor() blocks up to a deadline for
///    space (backpressure, invariant 13).
///  * Per-tenant fair scheduling: workers pick the next non-empty tenant
///    round-robin; one pick drains at most one template's maxBatch from
///    that tenant before the cursor moves on (invariant 14).
///  * Adaptive batching: a dispatch coalesces the run of same-template
///    requests at the head of the picked tenant's queue, capped by the
///    template's maxBatch. Batch size therefore tracks instantaneous
///    queue depth — 1 when idle (no artificial delay is ever added to a
///    lone request), growing toward maxBatch exactly when submission
///    cost matters, which is what amortizes it (§6.3).
///  * Request-scoped memory: scratchBytes per request come from the
///    worker device's mempool::Pool via allocAsync/freeAsync — steady
///    state serves every request from recycled blocks (§5).
///  * Completion via serve::Future (poll/wait/waitFor/then); a failing
///    request fails only its own future (invariant 15).
///  * Introspection: Service::stats() — queue depths per tenant,
///    in-flight count, throughput, a p50/p99 latency histogram snapshot
///    and the coherent per-device pool stats.
///  * Resilience (DESIGN.md §7): per-request deadlines and CancelTokens
///    shed doomed work at dispatch time (DeadlineError/CancelledError,
///    before any kernel runs); a supervisor thread heartbeat-monitors
///    the fleet, declares a stalled worker lost, fails its in-flight
///    requests with WorkerLostError and installs a replacement worker on
///    the same slot (fresh streams, re-lowered templates) so the fleet
///    degrades instead of wedging; a queue high-watermark sheds the
///    most-expired/oldest-deadline requests first (OverloadError) so
///    backpressure never becomes unbounded latency; shutdown(timeout)
///    drains with a bounded wait and reports stuck workers instead of
///    hanging. All of it is opt-in: with the default options (no
///    supervision, no watermark) and the plain submit overloads the
///    service behaves exactly as it did before the resilience layer.
#pragma once

#include "serve/future.hpp"
#include "serve/types.hpp"

#include "mempool/stream_ops.hpp"

#include "alpaka/core/mpmc_ring.hpp"
#include "alpaka/stream.hpp"

#include "graph/exec.hpp"

#include "threadpool/spin.hpp"
#include "threadpool/thread_pool.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace alpaka::serve
{
    struct ServiceOptions
    {
        //! CPU worker streams (>= 1 worker total across both kinds).
        std::size_t cpuWorkers = 2;
        //! One simulated-GPU worker stream per entry; repeat a device for
        //! several workers on it.
        std::vector<dev::DevCudaSim> simDevs;
        //! Global admission bound: queued (admitted, undispatched)
        //! requests never exceed this (invariant 13).
        std::size_t queueCapacity = 1024;
        //! Per-tenant admission bound; 0 means queueCapacity.
        std::size_t tenantCapacity = 0;
        //! Bound on distinct tenants (their accounting records persist
        //! for the service lifetime); a submit naming a tenant beyond the
        //! bound is rejected with AdmissionError. 0 = unbounded.
        std::size_t maxTenants = 0;
        //! Execution substrate; nullptr = ThreadPool::global().
        threadpool::ThreadPool* pool = nullptr;
        //! A worker busy on one dispatch for longer than this is declared
        //! lost by the supervisor: its in-flight futures resolve with
        //! WorkerLostError and a replacement worker takes over the slot.
        //! 0 (default) disables supervision — no supervisor thread runs,
        //! and a worker may legitimately block forever (exactly the
        //! pre-resilience behaviour).
        std::chrono::nanoseconds stallTimeout{0};
        //! Supervisor poll period; 0 = stallTimeout / 4 (floor 1ms).
        std::chrono::nanoseconds superviseEvery{0};
        //! Overload shedding: whenever the queued count exceeds this
        //! watermark, deadline-bearing requests are shed most-expired/
        //! oldest-deadline first (OverloadError) until the queue is back
        //! at the watermark. Requests without a deadline are never shed.
        //! 0 (default) disables shedding.
        std::size_t shedWatermark = 0;
        //! Advisory SLO: the queue-wait budget this service is operated
        //! against. Purely declarative — admission and shedding never
        //! read it — but it travels out through ServiceStats so the
        //! health model (obs::HealthModel, DESIGN.md §11.2) compares the
        //! windowed queue-wait p99 to the budget the OPERATOR set
        //! instead of a one-size-fits-all default. 0 = unset.
        std::chrono::microseconds queueWaitBudget{0};
    };

    class Service
    {
    public:
        using Options = ServiceOptions;

        explicit Service(Options options = {});
        //! Stops admission, finishes every already-admitted request (all
        //! futures complete), then joins the fleet.
        ~Service();

        Service(Service const&) = delete;
        auto operator=(Service const&) -> Service& = delete;

        //! Registers \p desc (see TemplateDesc for the two flavours) and
        //! lowers it for every worker: kernel templates are frozen into
        //! per-worker PrebuiltJobs, graph builders run once per worker and
        //! the Graphs are instantiated into per-worker graph::Exec
        //! objects. Callable any time, including while serving. \throws
        //! UsageError for an ill-formed descriptor (neither or both
        //! flavours set, maxBatch == 0).
        auto registerTemplate(TemplateDesc desc) -> TemplateId;

        //! Admits one request of \p tmpl for \p tenant (created on first
        //! use). Never blocks: \throws AdmissionError when the global or
        //! tenant queue bound is reached or the service is shutting down.
        //! \throws UsageError for an unknown template id.
        auto submit(TemplateId tmpl, std::string_view tenant, void* payload) -> Future;

        //! Admits \p request — the full surface: deadline and CancelToken
        //! ride along (see Request). A request already expired or
        //! cancelled at submission is not queued; its future comes back
        //! pre-resolved with the typed error.
        auto submit(Request const& request) -> Future;

        //! Blocking submit: waits up to \p timeout for queue space, then
        //! admits. \throws AdmissionError when the deadline expires first.
        auto submitFor(TemplateId tmpl, std::string_view tenant, void* payload, std::chrono::nanoseconds timeout)
            -> Future;

        //! Blocking submit of the full Request surface.
        auto submitFor(Request const& request, std::chrono::nanoseconds timeout) -> Future;

        //! Blocks until no request is queued, in flight, or resolving.
        void drain();

        //! Bounded shutdown (the drain-tolerates-a-dead-worker
        //! satellite): stops admission, then waits up to \p timeout for
        //! the fleet to finish the already-admitted work and exit. A
        //! worker unresponsive past the deadline is reported stuck and
        //! its in-flight requests resolve with WorkerLostError; if no
        //! live worker remains, still-queued requests resolve with
        //! CancelledError — every future resolves either way (invariant
        //! 16). Idempotent; the destructor calls it and then joins the
        //! remaining threads (a literally-infinite stall blocks the
        //! destructor — the report, not the join, is what is bounded:
        //! detaching would let a late worker touch freed service state).
        auto shutdown(std::chrono::nanoseconds timeout = std::chrono::seconds(5)) -> ShutdownReport;

        //! Coherent introspection snapshot (per-device pool stats come
        //! from mempool::Pool::stats(), the single-lock variant).
        [[nodiscard]] auto stats() const -> ServiceStats;

        [[nodiscard]] auto workerCount() const noexcept -> std::size_t
        {
            return workers_.size();
        }

    private:
        struct TemplateState;

        struct TenantState;

        //! One admitted, not-yet-dispatched request.
        struct Pending
        {
            TemplateState* tmpl = nullptr;
            TenantState* tenant = nullptr;
            PayloadView payload;
            std::shared_ptr<Future::State> future;
            std::chrono::steady_clock::time_point admitted;
            //! Shed with DeadlineError once passed (empty = never).
            std::optional<std::chrono::steady_clock::time_point> deadline;
            //! Shed with CancelledError once cancelled (empty = never).
            CancelToken cancel;
            //! Request::traceId, carried so dispatch/completion close
            //! the async spans admission opened (DESIGN.md §10).
            std::uint64_t traceId = 0;
        };

        //! Fixed-capacity FIFO of one tenant's admitted requests, backed
        //! by a ring over a vector sized once at tenant creation (the
        //! per-tenant admission bound). Unlike std::deque — whose chunk
        //! map churns a heap allocation every few dozen rotations —
        //! steady-state queueing through this ring never touches the
        //! heap (zero-allocation audit, DESIGN.md §8.9). Worker-side
        //! only: every access is under mutex_.
        class PendingFifo
        {
        public:
            explicit PendingFifo(std::size_t capacity) : buf_(capacity)
            {
            }

            [[nodiscard]] auto size() const noexcept -> std::size_t
            {
                return tail_ - head_;
            }
            [[nodiscard]] auto empty() const noexcept -> bool
            {
                return head_ == tail_;
            }
            [[nodiscard]] auto front() noexcept -> Pending&
            {
                return at(0);
            }
            //! Element \p i positions behind the front.
            [[nodiscard]] auto at(std::size_t i) noexcept -> Pending&
            {
                return buf_[(head_ + i) % buf_.size()];
            }
            //! Capacity is enforced by the admission-side reservation
            //! (TenantState::depth); a push never overflows.
            void pushBack(Pending&& p)
            {
                buf_[tail_ % buf_.size()] = std::move(p);
                ++tail_;
            }
            void popFront()
            {
                front() = Pending{}; // drop the future/token refs now
                ++head_;
            }
            //! Removes the element at logical index \p i by shifting the
            //! tail down — O(size), used only by overload shedding, which
            //! is already the exceptional path.
            auto takeAt(std::size_t i) -> Pending
            {
                Pending out = std::move(at(i));
                for(auto j = i; j + 1 < size(); ++j)
                    at(j) = std::move(at(j + 1));
                at(size() - 1) = Pending{};
                --tail_;
                return out;
            }

        private:
            std::vector<Pending> buf_;
            std::size_t head_ = 0;
            std::size_t tail_ = 0;
        };

        struct TenantState
        {
            explicit TenantState(std::size_t queueCap) : queue(queueCap)
            {
            }

            std::string name;
            //! Cached std::hash of name — the lock-free tenant index
            //! probes compare this before the string.
            std::size_t hash = 0;
            PendingFifo queue;
            //! Admission-side occupancy: requests of this tenant staged
            //! in the admission ring plus queued here. Reserved by
            //! fetch_add (rolled back on reject) BEFORE the ring push, so
            //! the per-tenant bound holds without any lock; drops under
            //! mutex_ as requests leave the queue.
            std::atomic<std::size_t> depth{0};
            std::atomic<std::uint64_t> admitted{0};
            std::uint64_t completed = 0; //!< under mutex_
            //! Intrusive round-robin rotation hooks (under mutex_): a
            //! linked rotation beats a std::deque of pointers, whose
            //! chunk churn would allocate in the steady state.
            TenantState* nextActive = nullptr;
            bool inRotation = false;
        };

        //! One dispatch: a same-template run popped from one tenant.
        struct Batch
        {
            TemplateState* tmpl = nullptr;
            std::vector<Pending> requests;
        };

        //! A dispatched batch while a worker executes it. The claimed
        //! flag is the exactly-once handshake between the executing
        //! worker and the supervisor: whoever exchanges it to true owns
        //! resolving the futures and the in-flight accounting; the loser
        //! walks away (invariant 16). The supervisor claims when it
        //! declares the worker lost; a worker that later finishes anyway
        //! (it was stalled, not dead) loses the claim, discards its
        //! results and exits.
        struct InFlightBatch
        {
            Batch batch;
            std::atomic<bool> claimed{false};
        };

        //! A worker's heartbeat, shared (shared_ptr) between the worker
        //! thread, the supervisor and shutdown so it outlives any of
        //! them. busySinceNs is the steady-clock start of the dispatch
        //! currently executing (0 = idle): the supervisor declares the
        //! worker lost when now - busySinceNs exceeds stallTimeout.
        struct Beat
        {
            std::atomic<std::int64_t> busySinceNs{0};
            //! Set by the supervisor (or shutdown); the worker thread
            //! exits at the next check instead of serving on a slot that
            //! has been handed to its replacement.
            std::atomic<bool> lost{false};
            //! Set by the worker thread as its very last action; bounded
            //! joins poll this (std::thread has no timed join).
            std::atomic<bool> exited{false};
        };

        struct Worker
        {
            std::size_t index = 0;
            dev::DevCpu cpuDev{};
            std::optional<dev::DevCudaSim> simDev;
            //! Replay driver + CPU scratch timeline; the worker thread IS
            //! this stream's execution (synchronous stream), so template
            //! errors surface in the worker and never poison a queue.
            std::optional<stream::StreamCpuSync> driver;
            //! Scratch timeline of simulated-GPU workers.
            std::optional<stream::StreamCudaSimSync> simStream;
            mempool::Pool* pool = nullptr;
            //! Reused batch-item buffer of this worker's dispatches — the
            //! dispatch hot path performs no allocation of its own.
            std::vector<RequestItem> items;
            //! Reused per-request outcome buffer of execute().
            std::vector<std::exception_ptr> outcomes;
            std::shared_ptr<Beat> beat = std::make_shared<Beat>();
            //! The dispatch currently executing (set at pop, cleared at
            //! completion, both under mutex_); the supervisor reads it to
            //! claim a lost worker's work.
            std::shared_ptr<InFlightBatch> inFlight;
            //! Pool of this worker's InFlightBatch control blocks: an
            //! entry with use_count() == 1 (nobody else — supervisor or
            //! shutdown — still holds it) is recycled for the next
            //! dispatch, so the steady state allocates no batch state.
            std::vector<std::shared_ptr<InFlightBatch>> batchCache;
            std::thread thread;
        };

        //! Immutable description of one fleet slot (built once in the
        //! constructor): which devices and pool a worker on this slot
        //! uses. Template lowering and worker (re)construction read this
        //! instead of workers_, which restarts mutate under mutex_.
        struct SlotInfo
        {
            dev::DevCpu cpuDev{};
            std::optional<dev::DevCudaSim> simDev;
            mempool::Pool* pool = nullptr;
        };

        struct PerWorker;

        //! Stable per-(template, worker) callable of the kernel flavour's
        //! pre-built job: runs the body for its batch index, captures the
        //! request's error without ever throwing into the pool job.
        struct KernelRun
        {
            TemplateState const* tmpl = nullptr;
            PerWorker* per = nullptr;
            void operator()(std::size_t index) const;
        };

        //! Per-(template, worker-incarnation) lowered state (stable
        //! address, owned by TemplateState::incarnations for the template's
        //! lifetime): a slot's current incarnation hangs in
        //! TemplateState::perWorker; an executing worker pins its own
        //! pointer for the duration of a dispatch, and a replacement
        //! installing a fresh incarnation never frees the one a zombie (a
        //! stalled-but-alive predecessor) still executes against.
        struct PerWorker
        {
            //! The batch bound to the dispatch currently executing on
            //! this worker; written and cleared by the worker thread
            //! around the pool-job/replay, which orders the accesses of
            //! pool workers (invariant 15).
            BatchView const* cell = nullptr;
            KernelRun run{};
            std::vector<std::exception_ptr> itemErrors;
            threadpool::ThreadPool::PrebuiltJob job{};
            std::unique_ptr<graph::Exec> exec;
        };

        struct TemplateState
        {
            TemplateId id = 0;
            TemplateDesc desc;
            bool isGraph = false;
            //! The CURRENT lowered incarnation per fleet slot; a plain
            //! atomic pointer so a worker restart swaps in a re-lowered
            //! incarnation (fresh streams need fresh graph::Execs) while
            //! dispatches load lock-free. std::atomic<std::shared_ptr>
            //! would also work but its libstdc++ lock-bit protocol is
            //! opaque to TSan (and slower than a bare pointer load).
            std::vector<std::atomic<PerWorker*>> perWorker;
            //! Owns every incarnation this template ever lowered, current
            //! and superseded alike (appended under registryMutex_, never
            //! removed): a zombie worker may still be executing against a
            //! superseded incarnation, so none can be freed before the
            //! TemplateState itself dies with the service. Restarts are
            //! rare; the retired tail stays tiny.
            std::vector<std::unique_ptr<PerWorker>> incarnations;
        };

        //! Requests removed from the queues whose futures still await
        //! their typed error — resolved outside mutex_ (a continuation
        //! may re-enter the service).
        struct Shed
        {
            Pending request;
            std::exception_ptr error;
        };

        auto admit(Request const& request, std::chrono::steady_clock::time_point const* spaceDeadline) -> Future;
        [[nodiscard]] auto resolveTemplate(TemplateId id) -> TemplateState*;
        //! Lock-free tenant lookup through the open-addressed index;
        //! nullptr on miss (first submit of a tenant — the locked
        //! creation path handles it).
        [[nodiscard]] auto tenantFind(std::string_view name) const noexcept -> TenantState*;
        [[nodiscard]] auto tenantLocked(std::string_view name) -> TenantState*;
        //! Reserves one global + one per-tenant queue slot against the
        //! atomic bounds (fetch_add, rolled back on overshoot). \returns
        //! false with nothing held when either bound is full.
        [[nodiscard]] auto tryReserve(TenantState& t) noexcept -> bool;
        //! Moves every request staged in the admission ring into its
        //! tenant's queue and rotation slot. Caller holds mutex_.
        void drainAdmissionLocked();
        //! \name intrusive active-tenant rotation (caller holds mutex_)
        //! @{
        void activePush(TenantState* t) noexcept;
        [[nodiscard]] auto activePop() noexcept -> TenantState*;
        void activeErase(TenantState* t) noexcept;
        //! @}
        //! A recycled (or, before the cache warmed up, fresh) in-flight
        //! control block from \p worker's pool, claimed flag reset and
        //! batch cleared.
        [[nodiscard]] auto acquireBatch(Worker& worker) -> std::shared_ptr<InFlightBatch>;
        //! Pops the next batch into \p out (whose request buffer is
        //! reused across dispatches); doomed (expired/cancelled) head
        //! requests go to \p shed instead of the batch (dispatch-time
        //! shedding — they never reach kernel work). \returns false when
        //! no batch formed.
        [[nodiscard]] auto popBatchLocked(Batch& out, std::vector<Shed>& shed) -> bool;
        //! Moves overload victims (queued > watermark) into \p shed,
        //! most-expired/oldest-deadline first. Caller holds mutex_.
        void shedOverloadLocked(std::vector<Shed>& shed);
        //! Completes shed futures (outside mutex_) and settles their
        //! accounting (resolving_ was raised while popping them).
        void resolveShed(std::vector<Shed>& shed);
        void workerLoop(Worker& worker);
        //! Lowers \p tmpl for slot \p slot (kernel job freeze or graph
        //! build + instantiate). Caller holds registryMutex_.
        //! The returned incarnation is owned by tmpl.incarnations.
        [[nodiscard]] auto lowerForSlot(TemplateState& tmpl, std::size_t slot) -> PerWorker*;
        //! Builds a (not yet started) worker for \p slot from slotInfo_.
        [[nodiscard]] auto makeWorker(std::size_t slot) const -> std::unique_ptr<Worker>;
        void supervisorLoop();
        //! One supervision sweep: detect stalled workers, fail their
        //! in-flight work typed, restart their slots.
        void superviseOnce();
        //! Runs \p batch on \p worker, filling worker.outcomes with the
        //! per-request results; completes NO futures (the claim winner
        //! does, in workerLoop or the supervisor).
        void execute(Worker& worker, Batch& batch);
        [[nodiscard]] auto allocScratch(Worker& worker, std::size_t bytes) -> void*;
        void freeScratch(Worker& worker, void* ptr);

        Options options_;
        threadpool::ThreadPool* pool_;
        std::chrono::steady_clock::time_point born_ = std::chrono::steady_clock::now();

        //! Registry: append-only under registryMutex_; TemplateState
        //! addresses are stable, so dispatch never needs this lock.
        mutable std::mutex registryMutex_;
        std::vector<std::unique_ptr<TemplateState>> templates_;
        //! Lock-free template lookup: registerTemplate publishes the
        //! state pointer here (release) and submit loads it (acquire) —
        //! the submit hot path never touches registryMutex_. Ids past the
        //! index capacity fall back to the locked lookup.
        static constexpr std::size_t templateIndexCapacity = 1024;
        std::vector<std::atomic<TemplateState*>> templateIndex_
            = std::vector<std::atomic<TemplateState*>>(templateIndexCapacity);

        //! The bounded lock-free admission path (litmus: serve/
        //! {x86,arm64}_admit_ring_cell, *_admit_stop_gate): a submitter
        //! reserves against the atomic bounds, stages the request in this
        //! MPMC ring and publishes workWord_ — no mutex anywhere on the
        //! submit hot path. Workers move staged requests into the tenant
        //! queues under mutex_ (drainAdmissionLocked) before scheduling.
        //! Sized 2x queueCapacity so a push under a reservation never
        //! meets a transiently-uncommitted cell.
        core::MpmcRing<Pending> admitRing_;
        //! Dekker gate against shutdown (litmus: serve/*_admit_stop_gate):
        //! a submitter raises the gate (seq_cst) and THEN checks stop_;
        //! shutdown stores stop_ and spins until the gate is zero before
        //! its leftover sweep. Either the submitter sees stop_ and backs
        //! out, or shutdown waits for the ring push to land — no admitted
        //! request is ever orphaned in the ring.
        std::atomic<std::size_t> admitGate_{0};
        std::atomic<bool> stop_{false};
        //! Admitted, undispatched requests (ring-staged + tenant-queued);
        //! the global bound is enforced by fetch_add-reserve on this.
        std::atomic<std::size_t> queued_{0};
        std::atomic<std::uint64_t> admitted_{0};
        std::atomic<std::uint64_t> rejected_{0};
        //! Worker wake word (replaces the old workCv_, which needed
        //! mutex_ on the submit side to avoid lost wakeups): a submitter
        //! publishes after the ring push, workers snapshot-check-park.
        threadpool::detail::PublishWord workWord_;

        //! Scheduling state under one mutex (short critical sections:
        //! queue moves and counter updates only — neither execution nor
        //! admission ever holds it).
        mutable std::mutex mutex_;
        std::condition_variable spaceCv_; //!< blocking submitters: space freed
        std::condition_variable idleCv_; //!< drain(): everything completed
        std::unordered_map<std::string, std::unique_ptr<TenantState>> tenants_;
        std::vector<TenantState*> tenantOrder_; //!< creation order (stats)
        //! Lock-free tenant index: open-addressed, insert-only (tenant
        //! records persist), written under mutex_ at creation, probed
        //! without any lock by submit. Beyond the capacity, extra
        //! tenants simply miss here and resolve through the locked map.
        static constexpr std::size_t tenantSlotCount = 1024;
        std::vector<std::atomic<TenantState*>> tenantSlots_
            = std::vector<std::atomic<TenantState*>>(tenantSlotCount);
        //! Tenants with a non-empty queue, in round-robin rotation
        //! (intrusive list through TenantState::nextActive): a tenant
        //! enters at the back on its 0→1 queue transition, the scheduler
        //! pops the front and re-appends it while non-empty. Dispatch
        //! therefore never scans idle tenants — O(1) per pick however
        //! many tenants exist.
        TenantState* activeHead_ = nullptr;
        TenantState* activeTail_ = nullptr;
        std::size_t inFlight_ = 0;
        //! Requests off the queues whose typed-error resolution is still
        //! running outside the lock; drain() waits for zero so a returned
        //! drain() always means every future has resolved.
        std::size_t resolving_ = 0;
        std::uint64_t completed_ = 0;
        std::uint64_t failed_ = 0;
        std::uint64_t batches_ = 0;
        std::uint64_t shedExpired_ = 0;
        std::uint64_t shedCancelled_ = 0;
        std::uint64_t shedOverload_ = 0;
        std::uint64_t workersLost_ = 0;
        std::uint64_t workerRestarts_ = 0;
        bool shutdownRan_ = false;

        LatencyHistogram latency_;
        //! Admission→dispatch wait (one record per request at batch
        //! pop, timed off the pop's existing clock read — the hot path
        //! gains two relaxed atomics and no clock call).
        LatencyHistogram queueWait_;
        //! Fixed-size fleet: a restart replaces workers_[i] in place
        //! (under mutex_) and retires the predecessor to zombies_, whose
        //! thread may still be unwinding a stall — its Worker must stay
        //! alive (stable address) until the destructor joins it.
        std::vector<std::unique_ptr<Worker>> workers_;
        std::vector<std::unique_ptr<Worker>> zombies_;
        std::vector<SlotInfo> slotInfo_;
        std::condition_variable superviseCv_; //!< supervisor: stop/poke
        std::thread supervisor_;
    };
} // namespace alpaka::serve
