/// \file Log2-bucketed latency accounting, shared by serve::Service and
/// the net::Router shard aggregation (DESIGN.md §6.4/§9.3).
///
/// PR 8 lifted the histogram out of Service's private parts because the
/// shard router needs to MERGE latency distributions: quantiles of
/// quantiles are meaningless (the p99 of two shards' p99s is not the
/// fleet p99), so Service::stats() now exports the raw bucket counts
/// (LatencyCounts) next to the derived snapshot, and the router sums
/// counts bucket-wise before deriving fleet quantiles — exact, because
/// the buckets are identical power-of-two bins on every shard.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace alpaka::serve
{
    //! Latency quantiles derived from a log2-bucketed histogram of
    //! request latencies (admission to future completion). Quantiles are
    //! upper bucket bounds, i.e. conservative to within a factor of 2.
    struct LatencySnapshot
    {
        std::uint64_t count = 0;
        double p50Us = 0.0;
        double p99Us = 0.0;
        double maxUs = 0.0;
    };

    //! A plain (non-atomic) copy of one histogram's state: the mergeable
    //! form. counts[b] holds samples in [2^(b-1), 2^b) microseconds.
    struct LatencyCounts
    {
        static constexpr std::size_t bucketCount = 48;
        std::array<std::uint64_t, bucketCount> counts{};
        std::uint64_t maxUs = 0;

        //! Bucket-wise sum; max of maxes. Exact for identical binning,
        //! which every LatencyHistogram shares by construction.
        auto merge(LatencyCounts const& other) noexcept -> LatencyCounts&
        {
            for(std::size_t b = 0; b < bucketCount; ++b)
                counts[b] += other.counts[b];
            if(other.maxUs > maxUs)
                maxUs = other.maxUs;
            return *this;
        }

        [[nodiscard]] auto total() const noexcept -> std::uint64_t
        {
            std::uint64_t sum = 0;
            for(auto const c : counts)
                sum += c;
            return sum;
        }

        //! Derives the quantile snapshot; the router calls this on merged
        //! counts, Service::stats() on its own.
        [[nodiscard]] auto snapshot() const noexcept -> LatencySnapshot
        {
            LatencySnapshot snap;
            snap.count = total();
            snap.maxUs = static_cast<double>(maxUs);
            if(snap.count == 0)
                return snap;
            auto const quantile = [&](double q) -> double
            {
                auto const rank = static_cast<std::uint64_t>(q * static_cast<double>(snap.count - 1)) + 1;
                std::uint64_t seen = 0;
                for(std::size_t b = 0; b < bucketCount; ++b)
                {
                    seen += counts[b];
                    // The bucket's upper bound, clamped to the observed
                    // max: the estimate must never exceed a real sample.
                    if(seen >= rank)
                        return std::min(static_cast<double>(std::uint64_t{1} << b), snap.maxUs);
                }
                return snap.maxUs;
            };
            snap.p50Us = quantile(0.50);
            snap.p99Us = quantile(0.99);
            return snap;
        }
    };

    //! Log2-bucketed latency histogram, lock-free on the record path.
    //! Snapshot consistency (litmus: serve/*_hist_snapshot): record()
    //! raises maxUs BEFORE counting the sample (release), counts() reads
    //! counts (acquire) before maxUs — so every sample a snapshot counts
    //! is covered by the maxUs it reports, and the derived quantiles
    //! never exceed the reported max.
    class LatencyHistogram
    {
    public:
        static constexpr std::size_t bucketCount = LatencyCounts::bucketCount;

        void record(std::uint64_t us) noexcept
        {
            auto const bucket = std::min<std::size_t>(std::bit_width(us), bucketCount - 1);
            // Max BEFORE count (the MP pattern with maxUs as payload and
            // the bucket count as flag): once a snapshot has seen this
            // sample's count, read-read coherence across the release/
            // acquire pair guarantees its maxUs read covers this sample.
            auto prev = maxUs_.load(std::memory_order_relaxed);
            while(us > prev
                  && !maxUs_.compare_exchange_weak(prev, us, std::memory_order_release, std::memory_order_relaxed))
            {
            }
            counts_[bucket].fetch_add(1, std::memory_order_release);
        }

        //! Coherent-enough copy (counts first, acquire; maxUs last — the
        //! mirror of record()'s ordering).
        [[nodiscard]] auto counts() const noexcept -> LatencyCounts
        {
            LatencyCounts out;
            for(std::size_t b = 0; b < bucketCount; ++b)
                out.counts[b] = counts_[b].load(std::memory_order_acquire);
            out.maxUs = maxUs_.load(std::memory_order_acquire);
            return out;
        }

        [[nodiscard]] auto snapshot() const noexcept -> LatencySnapshot
        {
            return counts().snapshot();
        }

    private:
        std::array<std::atomic<std::uint64_t>, bucketCount> counts_{};
        std::atomic<std::uint64_t> maxUs_{0};
    };
} // namespace alpaka::serve
