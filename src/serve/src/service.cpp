#include "serve/service.hpp"

#include <algorithm>
#include <bit>
#include <utility>

namespace alpaka::serve
{
    // ------------------------------------------------------------------
    // latency histogram

    void Service::LatencyHistogram::record(std::uint64_t us) noexcept
    {
        auto const bucket = std::min<std::size_t>(std::bit_width(us), bucketCount - 1);
        counts_[bucket].fetch_add(1, std::memory_order_relaxed);
        auto prev = maxUs_.load(std::memory_order_relaxed);
        while(us > prev && !maxUs_.compare_exchange_weak(prev, us, std::memory_order_relaxed))
        {
        }
    }

    auto Service::LatencyHistogram::snapshot() const -> LatencySnapshot
    {
        std::array<std::uint64_t, bucketCount> counts{};
        std::uint64_t total = 0;
        for(std::size_t b = 0; b < bucketCount; ++b)
        {
            counts[b] = counts_[b].load(std::memory_order_relaxed);
            total += counts[b];
        }
        LatencySnapshot snap;
        snap.count = total;
        snap.maxUs = static_cast<double>(maxUs_.load(std::memory_order_relaxed));
        if(total == 0)
            return snap;
        // A bucket holds latencies in [2^(b-1), 2^b); report the upper
        // bound, conservative to within 2x.
        auto const quantile = [&](double q) -> double
        {
            auto const rank = static_cast<std::uint64_t>(q * static_cast<double>(total - 1)) + 1;
            std::uint64_t seen = 0;
            for(std::size_t b = 0; b < bucketCount; ++b)
            {
                seen += counts[b];
                if(seen >= rank)
                    return static_cast<double>(std::uint64_t{1} << b);
            }
            return snap.maxUs;
        };
        snap.p50Us = quantile(0.50);
        snap.p99Us = quantile(0.99);
        return snap;
    }

    // ------------------------------------------------------------------
    // construction / shutdown

    Service::Service(Options options) : options_(std::move(options))
    {
        pool_ = options_.pool != nullptr ? options_.pool : &threadpool::ThreadPool::global();
        if(options_.queueCapacity == 0)
            throw UsageError("serve::Service: queueCapacity must be >= 1");
        auto const workerCount = options_.cpuWorkers + options_.simDevs.size();
        if(workerCount == 0)
            throw UsageError("serve::Service: the fleet needs at least one worker stream");

        workers_.reserve(workerCount);
        for(std::size_t w = 0; w < options_.cpuWorkers; ++w)
        {
            auto worker = std::make_unique<Worker>();
            worker->index = workers_.size();
            worker->driver.emplace(worker->cpuDev);
            worker->pool = &mempool::Pool::forDev(worker->cpuDev);
            workers_.push_back(std::move(worker));
        }
        for(auto const& dev : options_.simDevs)
        {
            auto worker = std::make_unique<Worker>();
            worker->index = workers_.size();
            worker->simDev = dev;
            worker->driver.emplace(worker->cpuDev);
            worker->simStream.emplace(dev);
            worker->pool = &mempool::Pool::forDev(dev);
            workers_.push_back(std::move(worker));
        }
        // Start the threads only after the fleet vector is complete (a
        // worker never touches another worker, but keeps things simple).
        for(auto& worker : workers_)
            worker->thread = std::thread([this, w = worker.get()] { workerLoop(*w); });
    }

    Service::~Service()
    {
        {
            std::scoped_lock lock(mutex_);
            stop_ = true;
        }
        workCv_.notify_all();
        spaceCv_.notify_all();
        for(auto& worker : workers_)
            if(worker->thread.joinable())
                worker->thread.join();
    }

    // ------------------------------------------------------------------
    // registration

    auto Service::registerTemplate(TemplateDesc desc) -> TemplateId
    {
        auto const hasBody = desc.body != nullptr;
        auto const hasGraph = desc.graph != nullptr;
        if(hasBody == hasGraph)
            throw UsageError("serve::Service::registerTemplate: exactly one of {body, graph} must be set");
        if(desc.maxBatch == 0)
            throw UsageError("serve::Service::registerTemplate: maxBatch must be >= 1");

        auto state = std::make_unique<TemplateState>();
        state->desc = std::move(desc);
        state->isGraph = hasGraph;
        state->perWorker.reserve(workers_.size());
        for(auto const& worker : workers_)
        {
            auto per = std::make_unique<PerWorker>();
            if(hasGraph)
            {
                GraphContext ctx(worker->index, worker->cpuDev, worker->simDev, &per->cell);
                auto const graph = state->desc.graph(ctx);
                per->exec = std::make_unique<graph::Exec>(graph, *pool_);
            }
            else
            {
                per->run = KernelRun{state.get(), per.get()};
                per->itemErrors.resize(state->desc.maxBatch);
                per->job = pool_->prebuild(state->desc.maxBatch, per->run);
            }
            state->perWorker.push_back(std::move(per));
        }

        std::scoped_lock lock(registryMutex_);
        state->id = static_cast<TemplateId>(templates_.size());
        auto const id = state->id;
        templates_.push_back(std::move(state));
        return id;
    }

    auto Service::resolveTemplate(TemplateId id) -> TemplateState*
    {
        std::scoped_lock lock(registryMutex_);
        if(id >= templates_.size())
            throw UsageError("serve::Service: unknown template id " + std::to_string(id));
        return templates_[id].get();
    }

    // ------------------------------------------------------------------
    // admission

    auto Service::tenantLocked(std::string_view name) -> TenantState*
    {
        auto const it = tenants_.find(std::string(name));
        if(it != tenants_.end())
            return it->second.get();
        // Tenant records persist for accounting; the bound keeps a
        // churned tenant namespace from growing the service without
        // limit (invariant 13 extended to the tenant table).
        if(options_.maxTenants != 0 && tenants_.size() >= options_.maxTenants)
        {
            ++rejected_;
            throw AdmissionError(
                "serve::Service: tenant bound reached (" + std::to_string(tenants_.size()) + "/"
                + std::to_string(options_.maxTenants) + "), tenant '" + std::string(name) + "' not admitted");
        }
        auto state = std::make_unique<TenantState>();
        state->name = std::string(name);
        auto* const raw = state.get();
        tenants_.emplace(raw->name, std::move(state));
        tenantOrder_.push_back(raw);
        return raw;
    }

    auto Service::admit(
        TemplateId tmpl,
        std::string_view tenant,
        void* payload,
        std::chrono::steady_clock::time_point const* deadline) -> Future
    {
        auto* const state = resolveTemplate(tmpl);
        auto future = std::make_shared<Future::State>();
        {
            std::unique_lock lock(mutex_);
            auto* const t = tenantLocked(tenant);
            auto const tenantCap = options_.tenantCapacity == 0 ? options_.queueCapacity : options_.tenantCapacity;
            auto const admissible = [&] { return queued_ < options_.queueCapacity && t->queue.size() < tenantCap; };
            if(stop_ || !admissible())
            {
                if(deadline == nullptr || stop_)
                {
                    ++rejected_;
                    throw AdmissionError(
                        stop_ ? "serve::Service: submit while shutting down"
                              : "serve::Service: admission queue full (queued " + std::to_string(queued_) + "/"
                                  + std::to_string(options_.queueCapacity) + ", tenant '" + t->name + "' "
                                  + std::to_string(t->queue.size()) + "/" + std::to_string(tenantCap) + ")");
                }
                if(!spaceCv_.wait_until(lock, *deadline, [&] { return stop_ || admissible(); }) || stop_)
                {
                    ++rejected_;
                    throw AdmissionError(
                        stop_ ? "serve::Service: submit while shutting down"
                              : "serve::Service: admission deadline expired before queue space freed");
                }
            }
            if(t->queue.empty())
                active_.push_back(t); // 0 -> 1: tenant (re)enters the rotation
            t->queue.push_back(Pending{state, t, payload, future, std::chrono::steady_clock::now()});
            ++t->admitted;
            ++admitted_;
            ++queued_;
        }
        workCv_.notify_one();
        return Future(std::move(future));
    }

    auto Service::submit(TemplateId tmpl, std::string_view tenant, void* payload) -> Future
    {
        return admit(tmpl, tenant, payload, nullptr);
    }

    auto Service::submitFor(
        TemplateId tmpl,
        std::string_view tenant,
        void* payload,
        std::chrono::nanoseconds timeout) -> Future
    {
        auto const deadline = std::chrono::steady_clock::now() + timeout;
        return admit(tmpl, tenant, payload, &deadline);
    }

    // ------------------------------------------------------------------
    // scheduling

    auto Service::popBatchLocked() -> Batch
    {
        if(active_.empty())
            return {};
        // Fairness (invariant 14): the picked tenant goes to the back of
        // the rotation whatever we take from it, and one pick never
        // exceeds the head template's maxBatch.
        auto* const t = active_.front();
        active_.pop_front();
        Batch batch;
        batch.tmpl = t->queue.front().tmpl;
        auto const limit = batch.tmpl->desc.maxBatch;
        while(batch.requests.size() < limit && !t->queue.empty() && t->queue.front().tmpl == batch.tmpl)
        {
            batch.requests.push_back(std::move(t->queue.front()));
            t->queue.pop_front();
        }
        if(!t->queue.empty())
            active_.push_back(t);
        return batch;
    }

    void Service::workerLoop(Worker& worker)
    {
        for(;;)
        {
            Batch batch;
            {
                std::unique_lock lock(mutex_);
                workCv_.wait(lock, [&] { return stop_ || queued_ > 0; });
                if(queued_ == 0)
                    return; // stop requested and nothing left to serve
                batch = popBatchLocked();
                if(batch.tmpl == nullptr)
                    continue;
                queued_ -= batch.requests.size();
                inFlight_ += batch.requests.size();
                ++batches_;
            }
            spaceCv_.notify_all();

            auto const failures = execute(worker, batch);

            bool idle = false;
            {
                std::scoped_lock lock(mutex_);
                inFlight_ -= batch.requests.size();
                completed_ += batch.requests.size();
                failed_ += failures;
                for(auto const& request : batch.requests)
                    ++request.tenant->completed;
                idle = queued_ == 0 && inFlight_ == 0;
            }
            if(idle)
                idleCv_.notify_all();
        }
    }

    // ------------------------------------------------------------------
    // execution

    void Service::KernelRun::operator()(std::size_t index) const
    {
        auto const* const view = per->cell;
        if(view == nullptr || index >= view->size())
            return; // the frozen job spans maxBatch; this dispatch is smaller
        try
        {
            tmpl->desc.body((*view)[index]);
        }
        catch(...)
        {
            // Confinement (invariant 15): the error belongs to THIS
            // request; it must neither fail the pool job nor the batch.
            per->itemErrors[index] = std::current_exception();
        }
    }

    auto Service::allocScratch(Worker& worker, std::size_t bytes) -> void*
    {
        if(worker.simDev.has_value())
            return worker.pool->allocAsync(*worker.simStream, bytes);
        return worker.pool->allocAsync(*worker.driver, bytes);
    }

    void Service::freeScratch(Worker& worker, void* ptr)
    {
        if(worker.simDev.has_value())
            worker.pool->freeAsync(*worker.simStream, ptr);
        else
            worker.pool->freeAsync(*worker.driver, ptr);
    }

    auto Service::execute(Worker& worker, Batch& batch) -> std::size_t
    {
        auto& tmpl = *batch.tmpl;
        auto const count = batch.requests.size();
        auto const scratchBytes = tmpl.desc.scratchBytes;
        auto& items = worker.items;
        items.assign(count, RequestItem{});
        std::exception_ptr batchError; // setup or replay failure: fails every request of the batch
        std::size_t allocated = 0;
        auto& per = *tmpl.perWorker[worker.index];

        try
        {
            for(std::size_t i = 0; i < count; ++i)
            {
                items[i].payload = batch.requests[i].payload;
                if(scratchBytes > 0)
                {
                    items[i].scratch = allocScratch(worker, scratchBytes);
                    ++allocated;
                }
            }
            BatchView const view(items.data(), count, scratchBytes);
            // Bind -> run -> unbind, all on this worker thread: the pool
            // job publication (or the inline replay) orders the bind
            // before every body, the drain orders the unbind after
            // (invariant 15).
            per.cell = &view;
            if(tmpl.isGraph)
            {
                try
                {
                    per.exec->replay(*worker.driver);
                }
                catch(...)
                {
                    batchError = std::current_exception();
                }
            }
            else
            {
                pool_->runPrebuilt(per.job);
            }
        }
        catch(...)
        {
            batchError = std::current_exception();
        }
        per.cell = nullptr;

        // Request-scoped blocks go back stream-ordered; on the fleet's
        // synchronous streams the free point has passed, so the blocks are
        // instantly reusable by any worker.
        for(std::size_t i = 0; i < allocated; ++i)
            freeScratch(worker, items[i].scratch);

        std::size_t failures = 0;
        auto const now = std::chrono::steady_clock::now();
        for(std::size_t i = 0; i < count; ++i)
        {
            // Kernel-flavour per-item errors are consumed (and the slot
            // reset for the next dispatch) right here — no copy.
            auto const itemError
                = tmpl.isGraph ? std::exception_ptr{} : std::exchange(per.itemErrors[i], nullptr);
            auto const error = batchError != nullptr ? batchError : itemError;
            if(error != nullptr)
                ++failures;
            latency_.record(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(now - batch.requests[i].admitted).count()));
            Future::complete(batch.requests[i].future, error);
        }
        return failures;
    }

    // ------------------------------------------------------------------
    // introspection

    void Service::drain()
    {
        std::unique_lock lock(mutex_);
        idleCv_.wait(lock, [&] { return queued_ == 0 && inFlight_ == 0; });
    }

    auto Service::stats() const -> ServiceStats
    {
        ServiceStats s;
        {
            std::scoped_lock lock(mutex_);
            s.queued = queued_;
            s.inFlight = inFlight_;
            s.admitted = admitted_;
            s.rejected = rejected_;
            s.completed = completed_;
            s.failed = failed_;
            s.batches = batches_;
            s.tenants.reserve(tenantOrder_.size());
            for(auto const* t : tenantOrder_)
                s.tenants.push_back(TenantStats{t->name, t->queue.size(), t->admitted, t->completed});
        }
        auto const elapsed
            = std::chrono::duration<double>(std::chrono::steady_clock::now() - born_).count();
        s.requestsPerSecond = elapsed > 0.0 ? static_cast<double>(s.completed) / elapsed : 0.0;
        s.latency = latency_.snapshot();

        // One entry per distinct pool of the fleet, via the coherent
        // single-lock snapshot (the satellite of this subsystem).
        std::vector<mempool::Pool*> seen;
        for(auto const& worker : workers_)
        {
            if(std::find(seen.begin(), seen.end(), worker->pool) != seen.end())
                continue;
            seen.push_back(worker->pool);
            auto const name
                = worker->simDev.has_value() ? worker->simDev->getName() : worker->cpuDev.getName();
            s.devicePools.push_back(DevicePoolStats{name, worker->pool->stats()});
        }
        return s;
    }
} // namespace alpaka::serve
