#include "serve/service.hpp"

#include "alpaka/core/fault.hpp"
#include "alpaka/core/trace.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <functional>
#include <utility>

namespace alpaka::serve
{
    namespace
    {
        //! Steady-clock now as int64 ns — the heartbeat wire format.
        auto nowNs() noexcept -> std::int64_t
        {
            return std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now().time_since_epoch())
                .count();
        }

        //! RAII arm of the admission gate (the Dekker pair with
        //! shutdown's stop_-store/gate-spin, litmus: serve/
        //! *_admit_stop_gate). Raised for the whole reserve→push window
        //! so shutdown's leftover sweep never misses an in-flight ring
        //! push; released on every exit path, including the throws.
        class GateGuard
        {
        public:
            explicit GateGuard(std::atomic<std::size_t>& gate) noexcept : gate_(gate)
            {
                gate_.fetch_add(1, std::memory_order_seq_cst);
            }
            ~GateGuard()
            {
                gate_.fetch_sub(1, std::memory_order_seq_cst);
            }
            GateGuard(GateGuard const&) = delete;
            auto operator=(GateGuard const&) -> GateGuard& = delete;

        private:
            std::atomic<std::size_t>& gate_;
        };
    } // namespace

    // ------------------------------------------------------------------
    // construction / shutdown

    Service::Service(Options options)
        : options_(std::move(options))
        , admitRing_(options_.queueCapacity * 2)
    {
        pool_ = options_.pool != nullptr ? options_.pool : &threadpool::ThreadPool::global();
        if(options_.queueCapacity == 0)
            throw UsageError("serve::Service: queueCapacity must be >= 1");
        auto const workerCount = options_.cpuWorkers + options_.simDevs.size();
        if(workerCount == 0)
            throw UsageError("serve::Service: the fleet needs at least one worker stream");

        slotInfo_.reserve(workerCount);
        for(std::size_t w = 0; w < options_.cpuWorkers; ++w)
        {
            SlotInfo info;
            info.pool = &mempool::Pool::forDev(info.cpuDev);
            slotInfo_.push_back(info);
        }
        for(auto const& dev : options_.simDevs)
        {
            SlotInfo info;
            info.simDev = dev;
            info.pool = &mempool::Pool::forDev(dev);
            slotInfo_.push_back(info);
        }

        workers_.reserve(workerCount);
        for(std::size_t w = 0; w < workerCount; ++w)
            workers_.push_back(makeWorker(w));
        // Start the threads only after the fleet vector is complete (a
        // worker never touches another worker, but keeps things simple).
        for(auto& worker : workers_)
            worker->thread = std::thread([this, w = worker.get()] { workerLoop(*w); });
        if(options_.stallTimeout.count() > 0)
            supervisor_ = std::thread([this] { supervisorLoop(); });
    }

    auto Service::makeWorker(std::size_t slot) const -> std::unique_ptr<Worker>
    {
        auto const& info = slotInfo_[slot];
        auto worker = std::make_unique<Worker>();
        worker->index = slot;
        worker->cpuDev = info.cpuDev;
        worker->simDev = info.simDev;
        worker->driver.emplace(worker->cpuDev);
        if(info.simDev.has_value())
            worker->simStream.emplace(*info.simDev);
        worker->pool = info.pool;
        return worker;
    }

    Service::~Service()
    {
        if(!shutdownRan_)
        {
            // The destructor keeps the pre-resilience contract: every
            // admitted request finishes, however long it takes. Tests of
            // the bounded path call shutdown() themselves with a real
            // timeout and read the report.
            shutdown(std::chrono::hours(24));
        }
        for(auto& worker : workers_)
            if(worker != nullptr && worker->thread.joinable())
                worker->thread.join();
        for(auto& zombie : zombies_)
            if(zombie->thread.joinable())
                zombie->thread.join();
    }

    auto Service::shutdown(std::chrono::nanoseconds timeout) -> ShutdownReport
    {
        ShutdownReport report;
        auto const deadline = std::chrono::steady_clock::now() + timeout;
        {
            // Under mutex_ only for the cv waiters (spaceCv_/superviseCv_
            // check stop_ inside their predicates); the store itself is
            // the seq_cst half of the admission Dekker.
            std::scoped_lock lock(mutex_);
            stop_.store(true, std::memory_order_seq_cst);
        }
        workWord_.publishAlways();
        spaceCv_.notify_all();
        superviseCv_.notify_all();
        // Admission quiescence (litmus: serve/*_admit_stop_gate): any
        // submitter already past its stop_ check holds the gate until its
        // ring push landed; once the gate reads zero every future ring
        // entry is impossible (a later submitter sees stop_) and every
        // present one is visible to the sweep below.
        while(admitGate_.load(std::memory_order_seq_cst) != 0)
            std::this_thread::yield();
        // The supervisor exits promptly on stop_; joining it first means
        // no restart mutates workers_ while we walk the fleet below.
        if(supervisor_.joinable())
            supervisor_.join();

        auto const waitExit = [&](Worker& worker) -> bool
        {
            while(!worker.beat->exited.load(std::memory_order_acquire))
            {
                if(std::chrono::steady_clock::now() >= deadline)
                    return false;
                std::this_thread::sleep_for(std::chrono::microseconds(200));
            }
            return true;
        };

        for(auto& worker : workers_)
        {
            if(worker == nullptr || !worker->thread.joinable())
                continue;
            if(waitExit(*worker))
            {
                worker->thread.join();
                ++report.workersJoined;
                continue;
            }
            // Unresponsive within the bound: report it, stop it from ever
            // serving again, and resolve its in-flight futures typed so no
            // client blocks on a wedged worker (the thread itself is the
            // destructor's problem — detaching would risk a use after
            // free; see the header contract).
            report.clean = false;
            report.stuckWorkers.push_back(worker->index);
            worker->beat->lost.store(true, std::memory_order_release);
            std::shared_ptr<InFlightBatch> work;
            {
                std::scoped_lock lock(mutex_);
                work = worker->inFlight;
            }
            if(work != nullptr && !work->claimed.exchange(true, std::memory_order_acq_rel))
            {
                auto& requests = work->batch.requests;
                for(auto const& request : requests)
                    Future::complete(
                        request.future,
                        std::make_exception_ptr(WorkerLostError(
                            "serve::Service: worker " + std::to_string(worker->index)
                            + " unresponsive at shutdown; request outcome unknown")));
                std::scoped_lock lock(mutex_);
                inFlight_ -= requests.size();
                completed_ += requests.size();
                failed_ += requests.size();
                for(auto const& request : requests)
                    ++request.tenant->completed;
                report.orphanedInFlight += requests.size();
            }
        }
        for(auto& zombie : zombies_)
        {
            if(!zombie->thread.joinable())
                continue;
            if(waitExit(*zombie))
            {
                zombie->thread.join();
                ++report.workersJoined;
            }
            else
            {
                report.clean = false;
                report.stuckWorkers.push_back(zombie->index);
            }
        }

        // Whatever is still staged or queued now has nobody left to serve
        // it: every joinable worker exited (and drained while it could)
        // or is stuck with its lost flag set. Resolve the leftovers so
        // invariant 16 holds across shutdown too.
        std::vector<Pending> abandoned;
        {
            std::scoped_lock lock(mutex_);
            drainAdmissionLocked();
            for(auto* t : tenantOrder_)
            {
                while(!t->queue.empty())
                {
                    abandoned.push_back(std::move(t->queue.front()));
                    t->queue.popFront();
                }
                t->depth.store(0, std::memory_order_relaxed);
                t->nextActive = nullptr;
                t->inRotation = false;
            }
            activeHead_ = nullptr;
            activeTail_ = nullptr;
            queued_.store(0, std::memory_order_relaxed);
            resolving_ += abandoned.size();
        }
        for(auto const& pending : abandoned)
            Future::complete(
                pending.future,
                std::make_exception_ptr(
                    CancelledError("serve::Service: request abandoned at shutdown (no live worker remained)")));
        if(!abandoned.empty())
        {
            report.clean = false;
            report.abandonedQueued = abandoned.size();
            std::scoped_lock lock(mutex_);
            resolving_ -= abandoned.size();
            completed_ += abandoned.size();
            failed_ += abandoned.size();
            for(auto const& pending : abandoned)
                ++pending.tenant->completed;
        }
        idleCv_.notify_all();
        {
            std::scoped_lock lock(mutex_);
            shutdownRan_ = true;
        }
        return report;
    }

    // ------------------------------------------------------------------
    // registration

    auto Service::lowerForSlot(TemplateState& tmpl, std::size_t slot) -> PerWorker*
    {
        auto const& info = slotInfo_[slot];
        auto per = std::make_unique<PerWorker>();
        if(tmpl.isGraph)
        {
            GraphContext ctx(slot, info.cpuDev, info.simDev, &per->cell);
            auto const graph = tmpl.desc.graph(ctx);
            per->exec = std::make_unique<graph::Exec>(graph, *pool_);
        }
        else
        {
            per->run = KernelRun{&tmpl, per.get()};
            per->itemErrors.resize(tmpl.desc.maxBatch);
            per->job = pool_->prebuild(tmpl.desc.maxBatch, per->run);
        }
        tmpl.incarnations.push_back(std::move(per));
        return tmpl.incarnations.back().get();
    }

    auto Service::registerTemplate(TemplateDesc desc) -> TemplateId
    {
        auto const hasBody = desc.body != nullptr;
        auto const hasGraph = desc.graph != nullptr;
        if(hasBody == hasGraph)
            throw UsageError("serve::Service::registerTemplate: exactly one of {body, graph} must be set");
        if(desc.maxBatch == 0)
            throw UsageError("serve::Service::registerTemplate: maxBatch must be >= 1");

        auto state = std::make_unique<TemplateState>();
        state->desc = std::move(desc);
        state->isGraph = hasGraph;
        // Lowering runs under registryMutex_ so a concurrent worker
        // restart (which re-lowers every template for its slot, also
        // under registryMutex_) sees either no entry or a fully lowered
        // one — never a template half-lowered across slots.
        std::scoped_lock lock(registryMutex_);
        state->perWorker = std::vector<std::atomic<PerWorker*>>(slotInfo_.size());
        for(std::size_t slot = 0; slot < slotInfo_.size(); ++slot)
            state->perWorker[slot].store(lowerForSlot(*state, slot), std::memory_order_release);
        state->id = static_cast<TemplateId>(templates_.size());
        auto const id = state->id;
        auto* const raw = state.get();
        templates_.push_back(std::move(state));
        // Publish to the lock-free index last: an acquire load through
        // templateIndex_ sees a fully lowered template.
        if(id < templateIndexCapacity)
            templateIndex_[id].store(raw, std::memory_order_release);
        return id;
    }

    auto Service::resolveTemplate(TemplateId id) -> TemplateState*
    {
        // Hot path: one acquire load, no lock (zero-allocation audit —
        // submit never touches registryMutex_ once the template exists).
        if(id < templateIndexCapacity)
        {
            auto* const state = templateIndex_[id].load(std::memory_order_acquire);
            if(state != nullptr)
                return state;
        }
        std::scoped_lock lock(registryMutex_);
        if(id >= templates_.size())
            throw UsageError("serve::Service: unknown template id " + std::to_string(id));
        return templates_[id].get();
    }

    // ------------------------------------------------------------------
    // admission

    auto Service::tenantFind(std::string_view name) const noexcept -> TenantState*
    {
        auto const h = std::hash<std::string_view>{}(name);
        for(std::size_t i = 0; i < tenantSlotCount; ++i)
        {
            auto const slot = (h + i) & (tenantSlotCount - 1);
            auto* const t = tenantSlots_[slot].load(std::memory_order_acquire);
            if(t == nullptr)
                return nullptr; // insert-only table: an empty probe slot ends the chain
            if(t->hash == h && std::string_view(t->name) == name)
                return t;
        }
        return nullptr; // index full; the locked map still resolves it
    }

    auto Service::tenantLocked(std::string_view name) -> TenantState*
    {
        auto const it = tenants_.find(std::string(name));
        if(it != tenants_.end())
            return it->second.get();
        // Tenant records persist for accounting; the bound keeps a
        // churned tenant namespace from growing the service without
        // limit (invariant 13 extended to the tenant table).
        if(options_.maxTenants != 0 && tenants_.size() >= options_.maxTenants)
        {
            rejected_.fetch_add(1, std::memory_order_relaxed);
            throw AdmissionError(
                "serve::Service: tenant bound reached (" + std::to_string(tenants_.size()) + "/"
                + std::to_string(options_.maxTenants) + "), tenant '" + std::string(name) + "' not admitted");
        }
        auto const tenantCap = options_.tenantCapacity == 0 ? options_.queueCapacity : options_.tenantCapacity;
        auto state = std::make_unique<TenantState>(std::min(tenantCap, options_.queueCapacity));
        state->name = std::string(name);
        state->hash = std::hash<std::string_view>{}(std::string_view(state->name));
        auto* const raw = state.get();
        tenants_.emplace(raw->name, std::move(state));
        tenantOrder_.push_back(raw);
        // Publish into the lock-free index (release pairs with
        // tenantFind's acquire); on a full table the tenant just keeps
        // resolving through this locked path.
        for(std::size_t i = 0; i < tenantSlotCount; ++i)
        {
            auto const slot = (raw->hash + i) & (tenantSlotCount - 1);
            if(tenantSlots_[slot].load(std::memory_order_relaxed) == nullptr)
            {
                tenantSlots_[slot].store(raw, std::memory_order_release);
                break;
            }
        }
        return raw;
    }

    auto Service::tryReserve(TenantState& t) noexcept -> bool
    {
        // Optimistic fetch_add with rollback: the transient overshoot is
        // invisible to correctness (nothing is staged until both
        // reservations held) and self-corrects before this returns.
        if(queued_.fetch_add(1, std::memory_order_acq_rel) + 1 > options_.queueCapacity)
        {
            queued_.fetch_sub(1, std::memory_order_relaxed);
            return false;
        }
        auto const tenantCap = options_.tenantCapacity == 0 ? options_.queueCapacity : options_.tenantCapacity;
        if(t.depth.fetch_add(1, std::memory_order_acq_rel) + 1 > tenantCap)
        {
            t.depth.fetch_sub(1, std::memory_order_relaxed);
            queued_.fetch_sub(1, std::memory_order_relaxed);
            return false;
        }
        return true;
    }

    auto Service::admit(Request const& request, std::chrono::steady_clock::time_point const* spaceDeadline)
        -> Future
    {
        auto* const state = resolveTemplate(request.tmpl);
        // Fault site: admission itself fails (e.g. the tenant table
        // allocation dies) — the error must reach the submitter, never a
        // worker, and must not leak a queue slot.
        ALPAKA_FAULT_POINT("serve.admit");
        auto future = Future::makeState();

        // Already doomed at submission: resolve now, queue nothing.
        if(request.cancel.cancelled())
        {
            Future::complete(
                future,
                std::make_exception_ptr(CancelledError("serve::Service: request cancelled before admission")));
            std::scoped_lock lock(mutex_);
            ++shedCancelled_;
            return Future(std::move(future));
        }
        if(request.deadline.has_value() && *request.deadline <= std::chrono::steady_clock::now())
        {
            Future::complete(
                future,
                std::make_exception_ptr(DeadlineError("serve::Service: deadline expired before admission")));
            std::scoped_lock lock(mutex_);
            ++shedExpired_;
            return Future(std::move(future));
        }

        TenantState* t = tenantFind(request.tenant);
        for(;;)
        {
            bool reserved = false;
            {
                GateGuard gate(admitGate_);
                // Stop check AFTER the gate raise (seq_cst Dekker with
                // shutdown, litmus: serve/*_admit_stop_gate).
                if(stop_.load(std::memory_order_seq_cst))
                {
                    rejected_.fetch_add(1, std::memory_order_relaxed);
                    throw AdmissionError("serve::Service: submit while shutting down");
                }
                if(t == nullptr)
                {
                    // First submit of this tenant: the one admission path
                    // that locks (and allocates) — once per tenant
                    // lifetime, never in the steady state.
                    std::scoped_lock lock(mutex_);
                    t = tenantLocked(request.tenant);
                }
                if(tryReserve(*t))
                {
                    Pending p{
                        state,
                        t,
                        request.payload,
                        future,
                        std::chrono::steady_clock::now(),
                        request.deadline,
                        request.cancel,
                        request.traceId};
                    // The reservation guarantees a free cell (ring is 2x
                    // the bound); the spin only ever covers another
                    // thread's in-flight cell commit.
                    while(!admitRing_.push(std::move(p)))
                        threadpool::detail::cpuRelax();
                    admitted_.fetch_add(1, std::memory_order_relaxed);
                    t->admitted.fetch_add(1, std::memory_order_relaxed);
                    reserved = true;
                }
            }
            if(reserved)
                break;
            // Full. Fail fast (plain submit) or wait for space and retry
            // the reservation (the wait is the one blocking submit path,
            // and it parks outside the admission gate so shutdown never
            // waits on a parked submitter).
            if(spaceDeadline == nullptr)
            {
                rejected_.fetch_add(1, std::memory_order_relaxed);
                auto const tenantCap
                    = options_.tenantCapacity == 0 ? options_.queueCapacity : options_.tenantCapacity;
                throw AdmissionError(
                    "serve::Service: admission queue full (queued " + std::to_string(queued_.load()) + "/"
                    + std::to_string(options_.queueCapacity) + ", tenant '" + t->name + "' "
                    + std::to_string(t->depth.load()) + "/" + std::to_string(tenantCap) + ")");
            }
            std::unique_lock lock(mutex_);
            auto const tenantCap = options_.tenantCapacity == 0 ? options_.queueCapacity : options_.tenantCapacity;
            auto const spaceLikely = [&]
            {
                return stop_.load(std::memory_order_relaxed)
                       || (queued_.load(std::memory_order_relaxed) < options_.queueCapacity
                           && t->depth.load(std::memory_order_relaxed) < tenantCap);
            };
            if(!spaceCv_.wait_until(lock, *spaceDeadline, spaceLikely))
            {
                rejected_.fetch_add(1, std::memory_order_relaxed);
                throw AdmissionError("serve::Service: admission deadline expired before queue space freed");
            }
            // stop_ and lost reservation races resurface in the next
            // iteration's gate-guarded checks.
        }

        // Request-lifecycle spans (DESIGN.md §10): traced requests open
        // their cross-thread timeline here — "serve.request" runs to
        // completion, "serve.queued" to dispatch pop. Untraced requests
        // (traceId 0 — e.g. the bench's plain submits) record nothing.
        if(request.traceId != 0)
        {
            ALPAKA_TRACE_ASYNC_BEGIN("serve.request", request.traceId);
            ALPAKA_TRACE_ASYNC_BEGIN("serve.queued", request.traceId);
        }
        workWord_.publish(); // wake a parked worker (elided when none is)
        if(options_.shedWatermark != 0 && queued_.load(std::memory_order_relaxed) > options_.shedWatermark)
        {
            // Overload: shed most-expired first. Slow path by design —
            // it takes mutex_ and allocates, but a service past its
            // watermark is already failing its latency promise.
            std::vector<Shed> shed;
            {
                std::scoped_lock lock(mutex_);
                drainAdmissionLocked();
                shedOverloadLocked(shed);
            }
            resolveShed(shed);
        }
        return Future(std::move(future));
    }

    auto Service::submit(TemplateId tmpl, std::string_view tenant, void* payload) -> Future
    {
        return admit(Request{tmpl, tenant, payload, std::nullopt, {}}, nullptr);
    }

    auto Service::submit(Request const& request) -> Future
    {
        return admit(request, nullptr);
    }

    auto Service::submitFor(
        TemplateId tmpl,
        std::string_view tenant,
        void* payload,
        std::chrono::nanoseconds timeout) -> Future
    {
        auto const deadline = std::chrono::steady_clock::now() + timeout;
        return admit(Request{tmpl, tenant, payload, std::nullopt, {}}, &deadline);
    }

    auto Service::submitFor(Request const& request, std::chrono::nanoseconds timeout) -> Future
    {
        auto const deadline = std::chrono::steady_clock::now() + timeout;
        return admit(request, &deadline);
    }

    // ------------------------------------------------------------------
    // scheduling

    void Service::activePush(TenantState* t) noexcept
    {
        t->nextActive = nullptr;
        t->inRotation = true;
        if(activeTail_ != nullptr)
            activeTail_->nextActive = t;
        else
            activeHead_ = t;
        activeTail_ = t;
    }

    auto Service::activePop() noexcept -> TenantState*
    {
        auto* const t = activeHead_;
        if(t == nullptr)
            return nullptr;
        activeHead_ = t->nextActive;
        if(activeHead_ == nullptr)
            activeTail_ = nullptr;
        t->nextActive = nullptr;
        t->inRotation = false;
        return t;
    }

    void Service::activeErase(TenantState* t) noexcept
    {
        TenantState* prev = nullptr;
        for(auto* it = activeHead_; it != nullptr; prev = it, it = it->nextActive)
        {
            if(it != t)
                continue;
            if(prev != nullptr)
                prev->nextActive = t->nextActive;
            else
                activeHead_ = t->nextActive;
            if(activeTail_ == t)
                activeTail_ = prev;
            t->nextActive = nullptr;
            t->inRotation = false;
            return;
        }
    }

    void Service::drainAdmissionLocked()
    {
        Pending p;
        while(admitRing_.pop(p))
        {
            auto* const t = p.tenant;
            t->queue.pushBack(std::move(p));
            if(!t->inRotation)
                activePush(t); // 0 -> 1: tenant (re)enters the rotation
        }
    }

    auto Service::acquireBatch(Worker& worker) -> std::shared_ptr<InFlightBatch>
    {
        for(auto& slot : worker.batchCache)
        {
            // use_count() == 1 means this worker's cache holds the only
            // reference: no supervisor or shutdown claim is outstanding,
            // so the block (and its request buffer's capacity) recycles.
            if(slot.use_count() == 1)
            {
                slot->claimed.store(false, std::memory_order_relaxed);
                slot->batch.tmpl = nullptr;
                slot->batch.requests.clear();
                return slot;
            }
        }
        auto fresh = std::make_shared<InFlightBatch>();
        if(worker.batchCache.size() < 8)
            worker.batchCache.push_back(fresh);
        return fresh;
    }

    auto Service::popBatchLocked(Batch& out, std::vector<Shed>& shed) -> bool
    {
        // Fairness (invariant 14): the picked tenant goes to the back of
        // the rotation whatever we take from it, and one pick never
        // exceeds the head template's maxBatch.
        auto* const t = activePop();
        if(t == nullptr)
            return false;
        out.tmpl = nullptr;
        out.requests.clear();
        auto const now = std::chrono::steady_clock::now();
        while(!t->queue.empty())
        {
            auto& head = t->queue.front();
            // Dispatch-time shedding: a cancelled or expired request is
            // dropped here, before any kernel work, whatever template it
            // belongs to — doomed work never gates batch formation.
            auto const cancelled = head.cancel.cancelled();
            if(cancelled || (head.deadline.has_value() && *head.deadline <= now))
            {
                Shed s;
                s.request = std::move(head);
                s.error = cancelled
                              ? std::make_exception_ptr(
                                    CancelledError("serve::Service: request cancelled before dispatch"))
                              : std::make_exception_ptr(
                                    DeadlineError("serve::Service: deadline expired before dispatch"));
                shed.push_back(std::move(s));
                t->queue.popFront();
                t->depth.fetch_sub(1, std::memory_order_relaxed);
                queued_.fetch_sub(1, std::memory_order_relaxed);
                ++resolving_;
                continue;
            }
            if(out.tmpl == nullptr)
                out.tmpl = head.tmpl;
            else if(head.tmpl != out.tmpl || out.requests.size() >= out.tmpl->desc.maxBatch)
                break;
            out.requests.push_back(std::move(head));
            t->queue.popFront();
            t->depth.fetch_sub(1, std::memory_order_relaxed);
        }
        if(!t->queue.empty())
            activePush(t);
        if(out.requests.empty())
        {
            out.tmpl = nullptr; // everything at the head was doomed
            return false;
        }
        // Queue-wait accounting rides the loop's one clock read: two
        // relaxed atomics per request, no extra now() (DESIGN.md §10.4).
        // Traced requests also close the "serve.queued" span opened at
        // admission — the timeline's queue-wait segment.
        for(auto const& p : out.requests)
        {
            auto const waitedUs
                = std::chrono::duration_cast<std::chrono::microseconds>(now - p.admitted).count();
            queueWait_.record(std::uint64_t(std::max<std::int64_t>(waitedUs, 0)));
            if(p.traceId != 0)
                ALPAKA_TRACE_ASYNC_END("serve.queued", p.traceId);
        }
        return true;
    }

    void Service::shedOverloadLocked(std::vector<Shed>& shed)
    {
        // Fail-fast the requests that are least likely to make their
        // deadline anyway: most-expired/oldest-deadline first. Requests
        // without a deadline made no latency promise to break, so they
        // are never shed — they queue and backpressure as before.
        while(queued_.load(std::memory_order_relaxed) > options_.shedWatermark)
        {
            TenantState* victimTenant = nullptr;
            std::size_t victimIndex = 0;
            std::chrono::steady_clock::time_point victimDeadline{};
            for(auto* t = activeHead_; t != nullptr; t = t->nextActive)
            {
                for(std::size_t i = 0; i < t->queue.size(); ++i)
                {
                    auto const& pending = t->queue.at(i);
                    if(!pending.deadline.has_value())
                        continue;
                    if(victimTenant == nullptr || *pending.deadline < victimDeadline)
                    {
                        victimTenant = t;
                        victimIndex = i;
                        victimDeadline = *pending.deadline;
                    }
                }
            }
            if(victimTenant == nullptr)
                return; // nothing sheddable; the hard capacity bound still holds
            Shed s;
            s.request = victimTenant->queue.takeAt(victimIndex);
            s.error = std::make_exception_ptr(OverloadError(
                "serve::Service: shed under overload (queued past watermark "
                + std::to_string(options_.shedWatermark) + ")"));
            shed.push_back(std::move(s));
            victimTenant->depth.fetch_sub(1, std::memory_order_relaxed);
            queued_.fetch_sub(1, std::memory_order_relaxed);
            ++resolving_;
            if(victimTenant->queue.empty())
                activeErase(victimTenant);
        }
    }

    void Service::resolveShed(std::vector<Shed>& shed)
    {
        if(shed.empty())
            return;
        // Futures first, outside the lock (a continuation may re-enter
        // the service); only then the accounting that lets drain() return
        // — so drain() returning always means the futures have resolved.
        for(auto const& s : shed)
        {
            if(s.request.traceId != 0)
            {
                // A shed request's timeline still closes: both spans end
                // here (the queued span was never closed at dispatch —
                // shed requests bypass popBatchLocked's accounting).
                ALPAKA_TRACE_ASYNC_END("serve.queued", s.request.traceId);
                ALPAKA_TRACE_ASYNC_END("serve.request", s.request.traceId);
            }
            Future::complete(s.request.future, s.error);
        }
        bool idle = false;
        {
            std::scoped_lock lock(mutex_);
            for(auto const& s : shed)
            {
                --resolving_;
                ++completed_;
                ++failed_;
                ++s.request.tenant->completed;
                try
                {
                    std::rethrow_exception(s.error);
                }
                catch(DeadlineError const&)
                {
                    ++shedExpired_;
                }
                catch(CancelledError const&)
                {
                    ++shedCancelled_;
                }
                catch(...)
                {
                    ++shedOverload_;
                }
            }
            idle = queued_.load(std::memory_order_relaxed) == 0 && inFlight_ == 0 && resolving_ == 0;
        }
        spaceCv_.notify_all();
        if(idle)
            idleCv_.notify_all();
        shed.clear();
    }

    void Service::workerLoop(Worker& worker)
    {
#if defined(ALPAKA_REPRO_TRACE)
        char traceName[32];
        std::snprintf(traceName, sizeof(traceName), "serve.worker.%zu", worker.index);
        ALPAKA_TRACE_THREAD_NAME(traceName);
#endif
        std::vector<Shed> shed;
        for(;;)
        {
            if(worker.beat->lost.load(std::memory_order_acquire))
                break; // slot handed to a replacement; this thread is done
            // Park ticket BEFORE the work checks: a submitter publishing
            // after this snapshot makes the park below return immediately
            // (no lost wakeup — the snapshot-check-park protocol of
            // PublishWord).
            auto const ticket = workWord_.snapshot();
            auto work = acquireBatch(worker);
            bool exit = false;
            bool popped = false;
            {
                std::unique_lock lock(mutex_);
                drainAdmissionLocked();
                if(stop_.load(std::memory_order_seq_cst) && queued_.load(std::memory_order_seq_cst) == 0
                   && admitGate_.load(std::memory_order_seq_cst) == 0)
                {
                    // Stopped, nothing queued, and no admission mid-push
                    // (the gate read pairs with the submitter's raise).
                    exit = true;
                }
                else if(queued_.load(std::memory_order_relaxed) > 0)
                {
                    popped = popBatchLocked(work->batch, shed);
                    if(popped)
                    {
                        auto const count = work->batch.requests.size();
                        queued_.fetch_sub(count, std::memory_order_relaxed);
                        inFlight_ += count;
                        ++batches_;
                        worker.inFlight = work;
                        // Heartbeat: busy from here until the accounting
                        // below; the supervisor measures this window.
                        worker.beat->busySinceNs.store(nowNs(), std::memory_order_release);
                    }
                }
            }
            spaceCv_.notify_all();
            resolveShed(shed);
            if(exit)
                break;
            if(!popped)
            {
                work.reset(); // back to the cache untouched
                if(stop_.load(std::memory_order_seq_cst) || queued_.load(std::memory_order_seq_cst) > 0)
                {
                    // Racing work (or a draining shutdown): re-check
                    // rather than park.
                    std::this_thread::yield();
                    continue;
                }
                workWord_.park(ticket);
                continue;
            }

            execute(worker, work->batch);

            // The exactly-once handshake (invariant 16): whoever flips
            // claimed owns the futures and the accounting. Losing means
            // the supervisor declared this worker lost mid-batch and
            // already resolved everything with WorkerLostError — this
            // thread is a zombie; its results are discarded and it exits.
            if(work->claimed.exchange(true, std::memory_order_acq_rel))
                break;

            auto const& outcomes = worker.outcomes;
            auto& requests = work->batch.requests;
            std::size_t failures = 0;
            auto const now = std::chrono::steady_clock::now();
            for(std::size_t i = 0; i < requests.size(); ++i)
            {
                if(outcomes[i] != nullptr)
                    ++failures;
                latency_.record(static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::microseconds>(now - requests[i].admitted).count()));
                if(requests[i].traceId != 0)
                    ALPAKA_TRACE_ASYNC_END("serve.request", requests[i].traceId);
                Future::complete(requests[i].future, outcomes[i]);
            }
            bool idle = false;
            {
                std::scoped_lock lock(mutex_);
                worker.inFlight.reset();
                worker.beat->busySinceNs.store(0, std::memory_order_relaxed);
                inFlight_ -= requests.size();
                completed_ += requests.size();
                failed_ += failures;
                for(auto const& request : requests)
                    ++request.tenant->completed;
                idle = queued_.load(std::memory_order_relaxed) == 0 && inFlight_ == 0 && resolving_ == 0;
            }
            if(idle)
                idleCv_.notify_all();
        }
        worker.beat->exited.store(true, std::memory_order_release);
    }

    // ------------------------------------------------------------------
    // supervision

    void Service::supervisorLoop()
    {
        auto interval = options_.superviseEvery;
        if(interval.count() <= 0)
            interval = std::max(
                options_.stallTimeout / 4,
                std::chrono::nanoseconds(std::chrono::milliseconds(1)));
        std::unique_lock lock(mutex_);
        while(!stop_.load(std::memory_order_acquire))
        {
            superviseCv_.wait_for(lock, interval, [&] { return stop_.load(std::memory_order_relaxed); });
            if(stop_.load(std::memory_order_relaxed))
                return;
            lock.unlock();
            superviseOnce();
            lock.lock();
        }
    }

    void Service::superviseOnce()
    {
        struct LostWorker
        {
            std::size_t slot = 0;
            std::shared_ptr<InFlightBatch> work;
        };
        std::vector<LostWorker> lost;
        auto const now = nowNs();
        {
            std::scoped_lock lock(mutex_);
            for(auto& worker : workers_)
            {
                if(worker == nullptr)
                    continue; // slot went dark (a restart failed); served by the rest
                auto const busySince = worker->beat->busySinceNs.load(std::memory_order_acquire);
                if(busySince == 0 || now - busySince < options_.stallTimeout.count())
                    continue;
                // Claim before declaring lost: if the worker finished in
                // the meantime (or is finishing right now), the exchange
                // loses and the worker stays — stalled is a verdict on
                // the batch, and the batch owner is whoever claims it.
                auto work = worker->inFlight;
                if(work == nullptr || work->claimed.exchange(true, std::memory_order_acq_rel))
                    continue;
                worker->beat->lost.store(true, std::memory_order_release);
                ++workersLost_;
                lost.push_back(LostWorker{worker->index, std::move(work)});
                // The zombie keeps its Worker (stable address — its thread
                // still runs inside it); the slot frees for a replacement.
                zombies_.push_back(std::move(worker));
            }
        }
        if(lost.empty())
            return;

        for(auto const& l : lost)
        {
            // Futures first (outside every lock), accounting later:
            // drain() must not return between the two.
            for(auto const& request : l.work->batch.requests)
                Future::complete(
                    request.future,
                    std::make_exception_ptr(WorkerLostError(
                        "serve::Service: worker " + std::to_string(l.slot)
                        + " stalled past stallTimeout; request outcome unknown")));

            // Re-lower every template for the slot: the replacement gets
            // fresh streams, so graph templates need fresh graph::Execs;
            // the zombie still holds shared_ptrs to its old incarnations.
            std::unique_ptr<Worker> fresh;
            try
            {
                fresh = makeWorker(l.slot);
                std::scoped_lock rlock(registryMutex_);
                for(auto& tmpl : templates_)
                    tmpl->perWorker[l.slot].store(lowerForSlot(*tmpl, l.slot), std::memory_order_release);
            }
            catch(...)
            {
                // Replacement construction failed: the slot stays dark and
                // the remaining workers carry the traffic — degraded, not
                // wedged.
                fresh.reset();
            }

            bool idle = false;
            {
                std::scoped_lock lock(mutex_);
                auto const& requests = l.work->batch.requests;
                inFlight_ -= requests.size();
                completed_ += requests.size();
                failed_ += requests.size();
                for(auto const& request : requests)
                    ++request.tenant->completed;
                if(fresh != nullptr)
                {
                    auto* const raw = fresh.get();
                    workers_[l.slot] = std::move(fresh);
                    ++workerRestarts_;
                    raw->thread = std::thread([this, raw] { workerLoop(*raw); });
                }
                idle = queued_.load(std::memory_order_relaxed) == 0 && inFlight_ == 0 && resolving_ == 0;
            }
            if(idle)
                idleCv_.notify_all();
            workWord_.publishAlways();
        }
    }

    // ------------------------------------------------------------------
    // execution

    void Service::KernelRun::operator()(std::size_t index) const
    {
        auto const* const view = per->cell;
        if(view == nullptr || index >= view->size())
            return; // the frozen job spans maxBatch; this dispatch is smaller
        try
        {
            // Fault site: a kernel body that throws — must fail exactly
            // this request's future, nothing else (invariant 15).
            ALPAKA_FAULT_POINT("serve.kernel_throw");
            tmpl->desc.body((*view)[index]);
        }
        catch(...)
        {
            // Confinement (invariant 15): the error belongs to THIS
            // request; it must neither fail the pool job nor the batch.
            per->itemErrors[index] = std::current_exception();
        }
    }

    auto Service::allocScratch(Worker& worker, std::size_t bytes) -> void*
    {
        if(worker.simDev.has_value())
            return worker.pool->allocAsync(*worker.simStream, bytes);
        return worker.pool->allocAsync(*worker.driver, bytes);
    }

    void Service::freeScratch(Worker& worker, void* ptr)
    {
        if(worker.simDev.has_value())
            worker.pool->freeAsync(*worker.simStream, ptr);
        else
            worker.pool->freeAsync(*worker.driver, ptr);
    }

    void Service::execute(Worker& worker, Batch& batch)
    {
        auto& tmpl = *batch.tmpl;
        auto const count = batch.requests.size();
        // Per-batch span (amortized over up to maxBatch requests); the
        // per-request "serve.exec" async spans below only fire for
        // traced requests, so the untraced hot path pays 2 events per
        // BATCH, not per request (overhead budget, DESIGN.md §10.5).
        ALPAKA_TRACE_SCOPE("serve.batch", count);
        for(auto const& r : batch.requests)
            if(r.traceId != 0)
                ALPAKA_TRACE_ASYNC_BEGIN("serve.exec", r.traceId);
        auto const scratchBytes = tmpl.desc.scratchBytes;
        auto& items = worker.items;
        items.assign(count, RequestItem{});
        worker.outcomes.assign(count, nullptr);
        std::exception_ptr batchError; // setup or replay failure: fails every request of the batch
        std::size_t allocated = 0;
        // The slot's CURRENT incarnation, pinned for this dispatch: a
        // concurrent restart swaps the slot to a fresh incarnation, but
        // this worker (then a zombie) keeps executing against its own —
        // which stays alive in TemplateState::incarnations either way.
        auto* const per = tmpl.perWorker[worker.index].load(std::memory_order_acquire);

        try
        {
            // Fault site: dispatch dies before any per-request work —
            // the whole batch must fail typed, futures resolving once.
            ALPAKA_FAULT_POINT("serve.dispatch");
            for(std::size_t i = 0; i < count; ++i)
            {
                // Fault site: batch assembly fails midway (scratch
                // exhaustion is the realistic cause — compose with
                // "mempool.upstream_oom" to force the real path).
                ALPAKA_FAULT_POINT("serve.batch_build");
                items[i].payload = batch.requests[i].payload.data();
                items[i].payloadSize = batch.requests[i].payload.size();
                if(scratchBytes > 0)
                {
                    ALPAKA_TRACE_SCOPE("serve.scratch_alloc", scratchBytes);
                    items[i].scratch = allocScratch(worker, scratchBytes);
                    ++allocated;
                }
            }
            BatchView const view(items.data(), count, scratchBytes);
            // Bind -> run -> unbind, all on this worker thread: the pool
            // job publication (or the inline replay) orders the bind
            // before every body, the drain orders the unbind after
            // (invariant 15).
            per->cell = &view;
            // Fault site (delay rules): the worker stalls with work in
            // flight — the window the supervisor exists to detect.
            ALPAKA_FAULT_POINT("serve.worker_stall");
            if(tmpl.isGraph)
            {
                try
                {
                    per->exec->replay(*worker.driver);
                }
                catch(...)
                {
                    batchError = std::current_exception();
                }
            }
            else
            {
                pool_->runPrebuilt(per->job);
            }
        }
        catch(...)
        {
            batchError = std::current_exception();
        }
        per->cell = nullptr;

        // Request-scoped blocks go back stream-ordered; on the fleet's
        // synchronous streams the free point has passed, so the blocks are
        // instantly reusable by any worker.
        for(std::size_t i = 0; i < allocated; ++i)
            freeScratch(worker, items[i].scratch);

        for(std::size_t i = 0; i < count; ++i)
        {
            // Kernel-flavour per-item errors are consumed (and the slot
            // reset for the next dispatch) right here — no copy.
            auto const itemError
                = tmpl.isGraph ? std::exception_ptr{} : std::exchange(per->itemErrors[i], nullptr);
            worker.outcomes[i] = batchError != nullptr ? batchError : itemError;
        }
        for(auto const& r : batch.requests)
            if(r.traceId != 0)
                ALPAKA_TRACE_ASYNC_END("serve.exec", r.traceId);
    }

    // ------------------------------------------------------------------
    // introspection

    void Service::drain()
    {
        std::unique_lock lock(mutex_);
        idleCv_.wait(
            lock,
            [&] { return queued_.load(std::memory_order_relaxed) == 0 && inFlight_ == 0 && resolving_ == 0; });
    }

    auto Service::stats() const -> ServiceStats
    {
        ServiceStats s;
        {
            std::scoped_lock lock(mutex_);
            s.queued = queued_.load(std::memory_order_relaxed);
            s.inFlight = inFlight_;
            s.admitted = admitted_.load(std::memory_order_relaxed);
            s.rejected = rejected_.load(std::memory_order_relaxed);
            s.completed = completed_;
            s.failed = failed_;
            s.batches = batches_;
            s.shedExpired = shedExpired_;
            s.shedCancelled = shedCancelled_;
            s.shedOverload = shedOverload_;
            s.workersLost = workersLost_;
            s.workerRestarts = workerRestarts_;
            s.tenants.reserve(tenantOrder_.size());
            for(auto const* t : tenantOrder_)
                s.tenants.push_back(TenantStats{
                    t->name,
                    t->depth.load(std::memory_order_relaxed),
                    t->admitted.load(std::memory_order_relaxed),
                    t->completed});
        }
        auto const elapsed
            = std::chrono::duration<double>(std::chrono::steady_clock::now() - born_).count();
        s.requestsPerSecond = elapsed > 0.0 ? static_cast<double>(s.completed) / elapsed : 0.0;
        s.latencyCounts = latency_.counts();
        s.latency = s.latencyCounts.snapshot();
        s.queueWaitCounts = queueWait_.counts();
        s.queueWait = s.queueWaitCounts.snapshot();
        s.queueWaitBudgetUs = static_cast<std::uint64_t>(options_.queueWaitBudget.count());

        // One entry per distinct pool of the fleet, via the coherent
        // single-lock snapshot. slotInfo_ is immutable, so this never
        // races a worker restart.
        std::vector<mempool::Pool*> seen;
        for(auto const& info : slotInfo_)
        {
            if(std::find(seen.begin(), seen.end(), info.pool) != seen.end())
                continue;
            seen.push_back(info.pool);
            auto const name = info.simDev.has_value() ? info.simDev->getName() : info.cpuDev.getName();
            s.devicePools.push_back(DevicePoolStats{name, info.pool->stats()});
        }
        return s;
    }
} // namespace alpaka::serve
