/// \file Cooperative barrier for fibers of one scheduler run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fiber
{
    //! Rendezvous point for a fixed number of fibers driven by the same
    //! Scheduler::run(). Reusable across generations (like std::barrier, but
    //! cooperative and single-threaded).
    //!
    //! If a participant finishes its body without arriving while siblings
    //! wait, the scheduler's stall detection cancels the run and the caller
    //! of Scheduler::run() receives BarrierDivergenceError — mirroring the
    //! semantics of __syncthreads() in divergent code, except detected.
    class Barrier
    {
    public:
        explicit Barrier(std::size_t participants);

        //! Arrive and wait for all participants; throws FiberCancelled when
        //! the scheduler cancels the run while waiting.
        void arriveAndWait();

        [[nodiscard]] auto participants() const noexcept -> std::size_t
        {
            return participants_;
        }
        //! Number of completed generations (instrumentation / tests).
        [[nodiscard]] auto generation() const noexcept -> std::uint64_t
        {
            return generation_;
        }

    private:
        std::size_t participants_;
        std::size_t arrived_ = 0;
        std::uint64_t generation_ = 0;
        std::vector<std::size_t> waiters_;
    };
} // namespace fiber
