/// \file mmap-backed fiber stacks with guard page and canary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fiber
{
    //! A single fiber stack.
    //!
    //! Layout (low to high address):
    //!   [guard page (PROT_NONE)] [canary words] [usable stack ...........]
    //!
    //! The guard page turns a hard stack overflow into an immediate fault
    //! instead of silent corruption; the canary detects "near misses" where
    //! the fiber wrote into the lowest usable words without crossing into
    //! the guard page.
    class Stack
    {
    public:
        Stack() = default;
        explicit Stack(std::size_t usableBytes);
        ~Stack();

        Stack(Stack&& other) noexcept;
        auto operator=(Stack&& other) noexcept -> Stack&;
        Stack(Stack const&) = delete;
        auto operator=(Stack const&) -> Stack& = delete;

        //! Lowest usable address (just above guard page and canary).
        [[nodiscard]] auto lo() const noexcept -> void*;
        //! Number of usable bytes starting at lo().
        [[nodiscard]] auto usableBytes() const noexcept -> std::size_t;
        [[nodiscard]] auto valid() const noexcept -> bool;

        //! (Re)writes the canary pattern. Called before a fiber is (re)used.
        void armCanary() noexcept;
        //! True while the canary pattern is intact.
        [[nodiscard]] auto canaryIntact() const noexcept -> bool;

        //! Address of the canary region start; exposed for tests that
        //! deliberately simulate an overflow.
        [[nodiscard]] auto canaryLo() const noexcept -> void*;
        static constexpr std::size_t canaryBytes = 64;

    private:
        void release() noexcept;

        std::byte* mapBase_ = nullptr; //!< start of the whole mapping
        std::size_t mapBytes_ = 0;
        std::size_t usable_ = 0;
    };

    //! Reuses stacks across scheduler runs so that per-kernel-block fiber
    //! creation does not hit mmap.
    class StackPool
    {
    public:
        explicit StackPool(std::size_t stackBytes);

        //! Borrows a stack (grows the pool on demand).
        auto acquire() -> Stack;
        //! Returns a stack for reuse.
        void recycle(Stack&& stack);

        [[nodiscard]] auto stackBytes() const noexcept -> std::size_t
        {
            return stackBytes_;
        }
        [[nodiscard]] auto pooled() const noexcept -> std::size_t
        {
            return pool_.size();
        }

    private:
        std::size_t stackBytes_;
        std::vector<Stack> pool_;
    };
} // namespace fiber
