/// \file Low-level execution context switching.
///
/// Two interchangeable implementations are provided:
///  * SwitchImpl::Asm      - hand-written x86-64 System V context switch that
///                           saves only the callee-saved register set plus the
///                           floating point control words. A switch costs a
///                           few nanoseconds. Available on x86-64 only.
///  * SwitchImpl::Ucontext - portable fallback on top of POSIX
///                           makecontext/swapcontext. Functionally identical
///                           but roughly an order of magnitude slower because
///                           glibc's swapcontext performs a signal mask
///                           syscall per switch.
///
/// The scheduler selects the implementation at run time (fiber::SchedulerConfig)
/// so that both code paths stay continuously tested.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ucontext.h>

namespace fiber
{
    //! Selects the machine-level context switch implementation.
    enum class SwitchImpl
    {
        Asm, //!< hand written x86-64 switch (default where available)
        Ucontext //!< POSIX ucontext fallback
    };

    //! Returns the fastest implementation available on this platform.
    [[nodiscard]] auto defaultSwitchImpl() noexcept -> SwitchImpl;

    namespace detail
    {
        //! Saved machine context for the Asm implementation. Only the stack
        //! pointer is stored explicitly; everything else lives on the stack.
        struct AsmContext
        {
            void* sp = nullptr;
        };

        extern "C"
        {
            //! Switches from \p from to \p to. Defined in context.cpp in
            //! assembly. Saves rbp/rbx/r12-r15 + mxcsr + x87cw.
            void alpakaFiberCtxSwitch(AsmContext* from, AsmContext* to) noexcept;
        }

        //! Entry thunk invoked on the first switch into a fresh fiber. It
        //! must never return; it reads the current fiber from thread-local
        //! state and runs its body.
        using EntryFn = void (*)();

        //! Prepares a fresh Asm context on [stackLo, stackHi) that will enter
        //! \p entry on the first switch-in.
        void makeAsmContext(AsmContext& ctx, void* stackLo, std::size_t stackBytes, EntryFn entry) noexcept;

        //! A context that can hold either implementation; which member is
        //! active is decided by the owning scheduler's SwitchImpl.
        struct Context
        {
            AsmContext asmCtx;
            ucontext_t uctx{};
        };

        //! Prepares \p ctx (of implementation \p impl) to enter \p entry on a
        //! fresh stack. \p returnTo is the context control returns to should
        //! the entry function ever return (must not happen; used as guard).
        void makeContext(
            SwitchImpl impl,
            Context& ctx,
            void* stackLo,
            std::size_t stackBytes,
            EntryFn entry,
            Context& returnTo);

        //! Transfers control from \p from to \p to.
        void switchContext(SwitchImpl impl, Context& from, Context& to) noexcept;
    } // namespace detail
} // namespace fiber
