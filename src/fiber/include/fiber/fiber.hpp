/// \file Umbrella header of the fiber substrate.
///
/// The fiber library provides deterministic cooperative user-level threads.
/// It backs two higher layers of this repository:
///  * the AccCpuFibers accelerator back-end (the paper's "boost fibers"
///    back-end, rebuilt from scratch), and
///  * the warp/thread execution engine of the SIMT GPU simulator.
#pragma once

#include "fiber/barrier.hpp"
#include "fiber/context.hpp"
#include "fiber/error.hpp"
#include "fiber/scheduler.hpp"
#include "fiber/stack.hpp"
