/// \file Cooperative round-robin fiber scheduler.
///
/// One Scheduler drives a set of fibers on the calling OS thread until all of
/// them finished. It is the execution engine below the AccCpuFibers back-end
/// and below every block of the SIMT GPU simulator. Key properties:
///
///  * deterministic round-robin order (blocks of the simulator replay
///    identically from run to run),
///  * cooperative blocking via Barrier (see barrier.hpp) with stall
///    detection: if no fiber can make progress the scheduler cancels the run
///    and reports BarrierDivergenceError instead of hanging,
///  * exceptions thrown by fiber bodies are captured, remaining fibers are
///    cancelled and unwound, and the first error is re-thrown to the caller,
///  * stacks are pooled and reused across runs.
#pragma once

#include "fiber/context.hpp"
#include "fiber/error.hpp"
#include "fiber/stack.hpp"

#include <cstddef>
#include <exception>
#include <functional>
#include <vector>

namespace fiber
{
    //! Scheduler construction parameters.
    struct SchedulerConfig
    {
        //! Usable bytes per fiber stack.
        std::size_t stackBytes = 128 * 1024;
        //! Context switch implementation; Asm where available.
        SwitchImpl switchImpl = defaultSwitchImpl();
    };

    class Scheduler
    {
    public:
        explicit Scheduler(SchedulerConfig config = {});
        ~Scheduler();

        Scheduler(Scheduler const&) = delete;
        auto operator=(Scheduler const&) -> Scheduler& = delete;

        //! The body invoked per fiber; receives the fiber index [0, count).
        using Body = std::function<void(std::size_t)>;

        //! Runs \p count fibers executing \p body(index) to completion.
        //!
        //! Re-throws the first exception a fiber body raised. Throws
        //! BarrierDivergenceError if the run stalled (see class comment).
        //! Throws StackOverflowError if a fiber's stack canary was destroyed.
        void run(std::size_t count, Body const& body);

        //! \name In-fiber services (valid only while run() is active and the
        //! caller is one of its fibers)
        //! @{

        //! Cooperatively gives up the processor; the fiber stays runnable.
        static void yield();
        //! Index of the calling fiber within the current run.
        [[nodiscard]] static auto currentIndex() -> std::size_t;
        //! True when called from inside a fiber.
        [[nodiscard]] static auto insideFiber() noexcept -> bool;
        //! The scheduler driving the calling fiber.
        [[nodiscard]] static auto current() -> Scheduler&;
        //! @}

        //! \name Services used by cooperative primitives (Barrier)
        //! @{

        //! Marks the calling fiber blocked and switches to the scheduler.
        //! Returns when some other fiber marked it ready again.
        void blockCurrent();
        //! Marks fiber \p index ready (callable from another fiber).
        void makeReady(std::size_t index);
        //! True once the run is being cancelled; blocked primitives must
        //! throw FiberCancelled when they observe this.
        [[nodiscard]] auto cancelRequested() const noexcept -> bool
        {
            return cancelRequested_;
        }
        //! @}

        //! Total number of fiber context switches performed (instrumentation).
        [[nodiscard]] auto switchCount() const noexcept -> std::uint64_t
        {
            return switches_;
        }
        [[nodiscard]] auto config() const noexcept -> SchedulerConfig const&
        {
            return config_;
        }

    private:
        enum class Status
        {
            Ready,
            Blocked,
            Done
        };

        struct FiberSlot
        {
            detail::Context ctx{};
            Stack stack{};
            Status status = Status::Done;
            std::exception_ptr error{};
            std::size_t index = 0;
            //! ThreadSanitizer shadow-state handle for this fiber (created
            //! per run, destroyed when the run ends); null outside TSan
            //! builds. TSan cannot follow the custom context switch on its
            //! own — without the fiber annotations it would report false
            //! races between fibers of one OS thread.
            void* tsanFiber = nullptr;
        };

        static void trampoline();
        void runBodyOn(FiberSlot& slot);
        void switchToFiber(FiberSlot& slot);
        void switchToScheduler();
        void cancelRemaining();

        SchedulerConfig config_;
        StackPool stackPool_;
        std::vector<FiberSlot> slots_;
        detail::Context schedCtx_{};
        //! TSan handle of the scheduler's own context (the OS thread's
        //! fiber); captured on the first switch-out of a run.
        void* tsanSchedFiber_ = nullptr;
        //! AddressSanitizer view of the scheduler's own stack (the OS
        //! thread's); captured at the first fiber entry and passed back to
        //! __sanitizer_start_switch_fiber on every fiber → scheduler
        //! switch. Unused (null) outside ASan builds. Without the ASan
        //! fiber annotations, running on a fiber stack looks like
        //! stack-use-after-return to the sanitizer.
        void const* asanSchedStackBottom_ = nullptr;
        std::size_t asanSchedStackSize_ = 0;
        Body const* body_ = nullptr;
        FiberSlot* running_ = nullptr;
        std::size_t doneCount_ = 0;
        std::size_t activeCount_ = 0;
        bool cancelRequested_ = false;
        std::uint64_t switches_ = 0;
    };
} // namespace fiber
