/// \file Error types of the fiber substrate.
#pragma once

#include <stdexcept>
#include <string>

namespace fiber
{
    //! Base class of all errors raised by the fiber substrate.
    class Error : public std::runtime_error
    {
    public:
        using std::runtime_error::runtime_error;
    };

    //! Raised by the scheduler when cooperative progress stalls: every
    //! unfinished fiber is blocked in a barrier that can never complete
    //! because at least one expected participant already finished.
    //!
    //! This is the substrate-level signal behind the "barrier divergence is
    //! detected, not a hang" guarantee of the SIMT back-ends.
    class BarrierDivergenceError : public Error
    {
    public:
        using Error::Error;
    };

    //! Thrown *inside* a blocked fiber when the scheduler cancels the run
    //! (for example after detecting divergence or after another fiber threw).
    //! It unwinds the fiber stack so that destructors of kernel-local objects
    //! run; the scheduler translates it back into the primary error.
    class FiberCancelled : public Error
    {
    public:
        FiberCancelled() : Error("fiber run cancelled by scheduler")
        {
        }
    };

    //! Raised when the canary region at the low end of a fiber stack was
    //! overwritten, i.e. the fiber (nearly) overflowed its stack.
    class StackOverflowError : public Error
    {
    public:
        using Error::Error;
    };

    //! Raised on misuse of the API (calling fiber-only functions from
    //! outside a fiber, zero participants, ...).
    class UsageError : public Error
    {
    public:
        using Error::Error;
    };
} // namespace fiber
