#include "fiber/stack.hpp"

#include "fiber/error.hpp"

#include <cstring>
#include <utility>

#include <sys/mman.h>
#include <unistd.h>

namespace fiber
{
    namespace
    {
        [[nodiscard]] auto pageSize() noexcept -> std::size_t
        {
            static std::size_t const cached = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
            return cached;
        }

        [[nodiscard]] auto roundUp(std::size_t value, std::size_t mult) noexcept -> std::size_t
        {
            return (value + mult - 1) / mult * mult;
        }

        constexpr std::uint64_t canaryWord = 0xFEEDFACECAFEBEEFull;
    } // namespace

    Stack::Stack(std::size_t usableBytes)
    {
        usable_ = roundUp(usableBytes, 16);
        mapBytes_ = pageSize() + roundUp(canaryBytes + usable_, pageSize());
        void* const p = ::mmap(
            nullptr,
            mapBytes_,
            PROT_READ | PROT_WRITE,
            MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK,
            -1,
            0);
        if(p == MAP_FAILED)
            throw Error("fiber::Stack: mmap failed");
        mapBase_ = static_cast<std::byte*>(p);
        if(::mprotect(mapBase_, pageSize(), PROT_NONE) != 0)
        {
            release();
            throw Error("fiber::Stack: mprotect(guard) failed");
        }
        armCanary();
    }

    Stack::~Stack()
    {
        release();
    }

    Stack::Stack(Stack&& other) noexcept
        : mapBase_(std::exchange(other.mapBase_, nullptr))
        , mapBytes_(std::exchange(other.mapBytes_, 0))
        , usable_(std::exchange(other.usable_, 0))
    {
    }

    auto Stack::operator=(Stack&& other) noexcept -> Stack&
    {
        if(this != &other)
        {
            release();
            mapBase_ = std::exchange(other.mapBase_, nullptr);
            mapBytes_ = std::exchange(other.mapBytes_, 0);
            usable_ = std::exchange(other.usable_, 0);
        }
        return *this;
    }

    void Stack::release() noexcept
    {
        if(mapBase_ != nullptr)
        {
            ::munmap(mapBase_, mapBytes_);
            mapBase_ = nullptr;
            mapBytes_ = 0;
            usable_ = 0;
        }
    }

    auto Stack::lo() const noexcept -> void*
    {
        return mapBase_ + pageSize() + canaryBytes;
    }

    auto Stack::usableBytes() const noexcept -> std::size_t
    {
        return usable_;
    }

    auto Stack::valid() const noexcept -> bool
    {
        return mapBase_ != nullptr;
    }

    auto Stack::canaryLo() const noexcept -> void*
    {
        return mapBase_ + pageSize();
    }

    void Stack::armCanary() noexcept
    {
        auto* p = static_cast<std::byte*>(canaryLo());
        for(std::size_t i = 0; i < canaryBytes; i += sizeof(canaryWord))
            std::memcpy(p + i, &canaryWord, sizeof(canaryWord));
    }

    auto Stack::canaryIntact() const noexcept -> bool
    {
        auto const* p = static_cast<std::byte const*>(canaryLo());
        for(std::size_t i = 0; i < canaryBytes; i += sizeof(canaryWord))
        {
            std::uint64_t w = 0;
            std::memcpy(&w, p + i, sizeof(w));
            if(w != canaryWord)
                return false;
        }
        return true;
    }

    StackPool::StackPool(std::size_t stackBytes) : stackBytes_(stackBytes)
    {
    }

    auto StackPool::acquire() -> Stack
    {
        if(!pool_.empty())
        {
            Stack s = std::move(pool_.back());
            pool_.pop_back();
            s.armCanary();
            return s;
        }
        return Stack(stackBytes_);
    }

    void StackPool::recycle(Stack&& stack)
    {
        if(stack.valid())
            pool_.push_back(std::move(stack));
    }
} // namespace fiber
