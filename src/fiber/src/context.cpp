#include "fiber/context.hpp"

#include "fiber/error.hpp"

#include <cstring>

namespace fiber
{
    auto defaultSwitchImpl() noexcept -> SwitchImpl
    {
#if defined(__x86_64__) && defined(__GNUC__)
        return SwitchImpl::Asm;
#else
        return SwitchImpl::Ucontext;
#endif
    }

    namespace detail
    {
#if defined(__x86_64__) && defined(__GNUC__)
        // System V x86-64 cooperative context switch.
        //
        // Stack frame captured at a switch point (from low to high address,
        // rsp pointing at offset 0 after the save sequence):
        //   [ 0.. 7]  mxcsr (4 bytes) + x87 control word (2 bytes) + pad
        //   [ 8..15]  r15
        //   [16..23]  r14
        //   [24..31]  r13
        //   [32..39]  r12
        //   [40..47]  rbx
        //   [48..55]  rbp
        //   [56..63]  return address
        //
        // All other registers are caller-saved under the System V ABI and are
        // therefore dealt with by the compiler at the call site of
        // alpakaFiberCtxSwitch.
        asm(R"(
        .text
        .globl alpakaFiberCtxSwitch
        .type alpakaFiberCtxSwitch,@function
        .align 16
alpakaFiberCtxSwitch:
        pushq %rbp
        pushq %rbx
        pushq %r12
        pushq %r13
        pushq %r14
        pushq %r15
        subq  $8, %rsp
        stmxcsr (%rsp)
        fnstcw  4(%rsp)
        movq  %rsp, (%rdi)
        movq  (%rsi), %rsp
        ldmxcsr (%rsp)
        fldcw   4(%rsp)
        addq  $8, %rsp
        popq  %r15
        popq  %r14
        popq  %r13
        popq  %r12
        popq  %rbx
        popq  %rbp
        retq
        .size alpakaFiberCtxSwitch,.-alpakaFiberCtxSwitch
        )");

        void makeAsmContext(AsmContext& ctx, void* stackLo, std::size_t stackBytes, EntryFn entry) noexcept
        {
            auto* const hi = static_cast<std::byte*>(stackLo) + stackBytes;

            // Choose sp such that after the restore sequence pops the frame
            // (64 bytes) the entry function observes rsp % 16 == 8, exactly
            // as if it had been reached via a call instruction.
            auto top = reinterpret_cast<std::uintptr_t>(hi);
            top &= ~std::uintptr_t{0xF}; // 16-byte align
            top -= 8; // sp0 % 16 == 8  =>  (sp0 + 64) % 16 == 8
            auto* sp = reinterpret_cast<std::byte*>(top) - 64;

            std::memset(sp, 0, 64);
            // Default x86-64 floating point environment: mxcsr = 0x1F80
            // (all exceptions masked, round to nearest), x87 cw = 0x037F.
            std::uint32_t const mxcsr = 0x1F80u;
            std::uint16_t const fcw = 0x037Fu;
            std::memcpy(sp + 0, &mxcsr, sizeof(mxcsr));
            std::memcpy(sp + 4, &fcw, sizeof(fcw));
            auto const entryAddr = reinterpret_cast<std::uintptr_t>(entry);
            std::memcpy(sp + 56, &entryAddr, sizeof(entryAddr));

            ctx.sp = sp;
        }
#else
        void makeAsmContext(AsmContext&, void*, std::size_t, EntryFn) noexcept
        {
        }
#endif

        void makeContext(
            SwitchImpl impl,
            Context& ctx,
            void* stackLo,
            std::size_t stackBytes,
            EntryFn entry,
            Context& returnTo)
        {
            if(impl == SwitchImpl::Asm)
            {
#if defined(__x86_64__) && defined(__GNUC__)
                makeAsmContext(ctx.asmCtx, stackLo, stackBytes, entry);
                return;
#else
                throw UsageError("SwitchImpl::Asm is not available on this platform");
#endif
            }
            if(::getcontext(&ctx.uctx) != 0)
                throw Error("getcontext failed");
            ctx.uctx.uc_stack.ss_sp = stackLo;
            ctx.uctx.uc_stack.ss_size = stackBytes;
            ctx.uctx.uc_link = &returnTo.uctx; // guard: entry must not return
            ::makecontext(&ctx.uctx, entry, 0);
        }

        void switchContext(SwitchImpl impl, Context& from, Context& to) noexcept
        {
            if(impl == SwitchImpl::Asm)
            {
                alpakaFiberCtxSwitch(&from.asmCtx, &to.asmCtx);
                return;
            }
            ::swapcontext(&from.uctx, &to.uctx);
        }
    } // namespace detail
} // namespace fiber
