#include "fiber/scheduler.hpp"

#include <utility>

// ThreadSanitizer support: the hand-rolled context switch moves execution
// between stacks without TSan noticing, so sequential fibers of one OS
// thread would look like racing threads. The TSan fiber API
// (create/switch/destroy) keeps one shadow state per fiber and establishes
// happens-before along every cooperative switch, making the fiber substrate
// (and everything above it: AccCpuFibers, the gpusim SIMT blocks, the
// CudaSim streams) race-checkable by the sanitizer CI layer.
#if defined(__SANITIZE_THREAD__)
#    define FIBER_TSAN 1
#elif defined(__has_feature)
#    if __has_feature(thread_sanitizer)
#        define FIBER_TSAN 1
#    endif
#endif
#if defined(FIBER_TSAN)
#    include <sanitizer/tsan_interface.h>
#endif

// AddressSanitizer support: ASan tracks the current stack region (and, with
// detect_stack_use_after_return, a fake stack per frame); a hand-rolled
// switch onto a fiber stack looks like a wild jump into freed stack memory.
// The ASan fiber API (__sanitizer_start_switch_fiber /
// __sanitizer_finish_switch_fiber) retargets the shadow state around every
// cooperative switch, making the fiber substrate checkable by the
// AddressSanitizer CI lane exactly like the TSan one above.
#if defined(__SANITIZE_ADDRESS__)
#    define FIBER_ASAN 1
#elif defined(__has_feature)
#    if __has_feature(address_sanitizer)
#        define FIBER_ASAN 1
#    endif
#endif
#if defined(FIBER_ASAN)
#    include <sanitizer/common_interface_defs.h>
#endif

namespace fiber
{
    namespace
    {
        thread_local Scheduler* t_scheduler = nullptr;

        inline auto tsanCreateFiber() noexcept -> void*
        {
#if defined(FIBER_TSAN)
            return __tsan_create_fiber(0);
#else
            return nullptr;
#endif
        }

        inline void tsanDestroyFiber(void*& fiber) noexcept
        {
#if defined(FIBER_TSAN)
            if(fiber != nullptr)
                __tsan_destroy_fiber(fiber);
#endif
            fiber = nullptr;
        }

        //! Announces the upcoming switch to the stack [bottom, bottom+size).
        //! \p fakeSave stores this stack's fake-stack handle for the
        //! matching finish when control returns here; nullptr means "this
        //! context terminates" (its fake stack is destroyed).
        inline void asanStartSwitch(void** fakeSave, void const* bottom, std::size_t size) noexcept
        {
#if defined(FIBER_ASAN)
            __sanitizer_start_switch_fiber(fakeSave, bottom, size);
#else
            (void) fakeSave;
            (void) bottom;
            (void) size;
#endif
        }

        //! Completes a switch after arriving on this stack: restores this
        //! stack's fake-stack handle (\p fakeSave; nullptr on first entry)
        //! and optionally reports the stack we came from.
        inline void asanFinishSwitch(void* fakeSave, void const** bottomOld, std::size_t* sizeOld) noexcept
        {
#if defined(FIBER_ASAN)
            __sanitizer_finish_switch_fiber(fakeSave, bottomOld, sizeOld);
#else
            (void) fakeSave;
            (void) bottomOld;
            (void) sizeOld;
#endif
        }
    } // namespace

    Scheduler::Scheduler(SchedulerConfig config) : config_(config), stackPool_(config.stackBytes)
    {
    }

    Scheduler::~Scheduler()
    {
        for(auto& slot : slots_)
            tsanDestroyFiber(slot.tsanFiber);
    }

    auto Scheduler::insideFiber() noexcept -> bool
    {
        return t_scheduler != nullptr && t_scheduler->running_ != nullptr;
    }

    auto Scheduler::current() -> Scheduler&
    {
        if(t_scheduler == nullptr)
            throw UsageError("fiber::Scheduler::current() called outside of a fiber run");
        return *t_scheduler;
    }

    auto Scheduler::currentIndex() -> std::size_t
    {
        auto& self = current();
        if(self.running_ == nullptr)
            throw UsageError("fiber::Scheduler::currentIndex() called outside of a fiber");
        return self.running_->index;
    }

    void Scheduler::yield()
    {
        auto& self = current();
        if(self.running_ == nullptr)
            throw UsageError("fiber::Scheduler::yield() called outside of a fiber");
        // Stays Ready; just hand control back to the scheduler loop.
        self.switchToScheduler();
        if(self.cancelRequested_)
            throw FiberCancelled{};
    }

    void Scheduler::blockCurrent()
    {
        if(running_ == nullptr)
            throw UsageError("fiber::Scheduler::blockCurrent() called outside of a fiber");
        running_->status = Status::Blocked;
        switchToScheduler();
    }

    void Scheduler::makeReady(std::size_t index)
    {
        if(index >= slots_.size())
            throw UsageError("fiber::Scheduler::makeReady(): index out of range");
        if(slots_[index].status == Status::Blocked)
            slots_[index].status = Status::Ready;
    }

    void Scheduler::trampoline()
    {
        // Entered exactly once per fiber activation via the first context
        // switch into the fresh stack.
        auto* self = t_scheduler;
        // First code on the fresh stack: complete the switch for ASan (no
        // fake stack to restore yet) and learn the scheduler's own stack
        // region — needed for every later fiber → scheduler switch.
        asanFinishSwitch(nullptr, &self->asanSchedStackBottom_, &self->asanSchedStackSize_);
        self->runBodyOn(*self->running_);
        // Unreachable: runBodyOn switches back to the scheduler for good.
        std::terminate();
    }

    void Scheduler::runBodyOn(FiberSlot& slot)
    {
        try
        {
            (*body_)(slot.index);
        }
        catch(...)
        {
            slot.error = std::current_exception();
        }
        slot.status = Status::Done;
        switchToScheduler();
        std::terminate(); // a Done fiber must never be resumed
    }

    void Scheduler::switchToFiber(FiberSlot& slot)
    {
        running_ = &slot;
        ++switches_;
#if defined(FIBER_TSAN)
        tsanSchedFiber_ = __tsan_get_current_fiber();
        __tsan_switch_to_fiber(slot.tsanFiber, 0);
#endif
        // The local fake-stack handle lives in this (scheduler-stack)
        // frame, which is exactly the frame control returns to.
        void* fakeStack = nullptr;
        asanStartSwitch(&fakeStack, slot.stack.lo(), slot.stack.usableBytes());
        detail::switchContext(config_.switchImpl, schedCtx_, slot.ctx);
        asanFinishSwitch(fakeStack, nullptr, nullptr);
        running_ = nullptr;
    }

    void Scheduler::switchToScheduler()
    {
        auto& slot = *running_;
        ++switches_;
#if defined(FIBER_TSAN)
        __tsan_switch_to_fiber(tsanSchedFiber_, 0);
#endif
        // A Done fiber never runs again: tell ASan to destroy its fake
        // stack instead of saving it (nullptr handle).
        void* fakeStack = nullptr;
        asanStartSwitch(
            slot.status == Status::Done ? nullptr : &fakeStack,
            asanSchedStackBottom_,
            asanSchedStackSize_);
        detail::switchContext(config_.switchImpl, slot.ctx, schedCtx_);
        asanFinishSwitch(fakeStack, nullptr, nullptr);
    }

    void Scheduler::cancelRemaining()
    {
        cancelRequested_ = true;
        for(auto& slot : slots_)
            if(slot.status == Status::Blocked)
                slot.status = Status::Ready;
    }

    void Scheduler::run(std::size_t count, Body const& body)
    {
        if(t_scheduler != nullptr)
            throw UsageError("fiber::Scheduler::run() is not re-entrant on the same thread");
        if(count == 0)
            return;

        t_scheduler = this;
        body_ = &body;
        doneCount_ = 0;
        activeCount_ = count;
        cancelRequested_ = false;

        // Shrinking: hand surplus stacks back to the pool instead of
        // unmapping them.
        while(slots_.size() > count)
        {
            stackPool_.recycle(std::move(slots_.back().stack));
            tsanDestroyFiber(slots_.back().tsanFiber);
            slots_.pop_back();
        }
        slots_.resize(count);
        for(std::size_t i = 0; i < count; ++i)
        {
            auto& slot = slots_[i];
            slot.index = i;
            slot.status = Status::Ready;
            slot.error = nullptr;
            // Fresh TSan shadow state per activation: the previous run's
            // fiber terminated on this slot, and reusing its shadow stack
            // for a new body would leak stale synchronization history.
            tsanDestroyFiber(slot.tsanFiber);
            slot.tsanFiber = tsanCreateFiber();
            if(!slot.stack.valid())
                slot.stack = stackPool_.acquire();
            else
                slot.stack.armCanary();
            detail::makeContext(
                config_.switchImpl,
                slot.ctx,
                slot.stack.lo(),
                slot.stack.usableBytes(),
                &Scheduler::trampoline,
                schedCtx_);
        }

        std::exception_ptr firstError{};
        bool stalled = false;
        bool canaryBroken = false;

        while(doneCount_ < count)
        {
            bool progressed = false;
            for(auto& slot : slots_)
            {
                if(slot.status != Status::Ready)
                    continue;
                progressed = true;
                switchToFiber(slot);
                if(!slot.stack.canaryIntact())
                {
                    // The fiber scribbled over its canary: its stack contents
                    // are untrustworthy, do not resume it again.
                    canaryBroken = true;
                    slot.status = Status::Done;
                    ++doneCount_;
                    cancelRemaining();
                    continue;
                }
                if(slot.status == Status::Done)
                {
                    ++doneCount_;
                    if(slot.error != nullptr && firstError == nullptr)
                    {
                        // Distinguish user errors from our own cancellation
                        // signal; only the former is primary.
                        try
                        {
                            std::rethrow_exception(slot.error);
                        }
                        catch(FiberCancelled const&)
                        {
                        }
                        catch(...)
                        {
                            firstError = slot.error;
                            // Unwind the remaining fibers promptly; blocked
                            // siblings would otherwise stall the run first.
                            cancelRemaining();
                        }
                    }
                }
            }
            if(!progressed && doneCount_ < count)
            {
                // Every unfinished fiber is Blocked: cooperative deadlock,
                // i.e. a barrier that can never be completed.
                stalled = true;
                cancelRemaining();
            }
        }

        // Recycle state for the next run.
        body_ = nullptr;
        t_scheduler = nullptr;

        if(canaryBroken)
            throw StackOverflowError("fiber stack canary destroyed; increase SchedulerConfig::stackBytes");
        if(firstError != nullptr)
            std::rethrow_exception(firstError);
        if(stalled)
            throw BarrierDivergenceError(
                "cooperative deadlock: all unfinished fibers are blocked in a barrier that can never complete "
                "(a sibling fiber exited before reaching it)");
    }
} // namespace fiber
