#include "fiber/scheduler.hpp"

#include <utility>

namespace fiber
{
    namespace
    {
        thread_local Scheduler* t_scheduler = nullptr;
    } // namespace

    Scheduler::Scheduler(SchedulerConfig config) : config_(config), stackPool_(config.stackBytes)
    {
    }

    Scheduler::~Scheduler() = default;

    auto Scheduler::insideFiber() noexcept -> bool
    {
        return t_scheduler != nullptr && t_scheduler->running_ != nullptr;
    }

    auto Scheduler::current() -> Scheduler&
    {
        if(t_scheduler == nullptr)
            throw UsageError("fiber::Scheduler::current() called outside of a fiber run");
        return *t_scheduler;
    }

    auto Scheduler::currentIndex() -> std::size_t
    {
        auto& self = current();
        if(self.running_ == nullptr)
            throw UsageError("fiber::Scheduler::currentIndex() called outside of a fiber");
        return self.running_->index;
    }

    void Scheduler::yield()
    {
        auto& self = current();
        if(self.running_ == nullptr)
            throw UsageError("fiber::Scheduler::yield() called outside of a fiber");
        // Stays Ready; just hand control back to the scheduler loop.
        self.switchToScheduler();
        if(self.cancelRequested_)
            throw FiberCancelled{};
    }

    void Scheduler::blockCurrent()
    {
        if(running_ == nullptr)
            throw UsageError("fiber::Scheduler::blockCurrent() called outside of a fiber");
        running_->status = Status::Blocked;
        switchToScheduler();
    }

    void Scheduler::makeReady(std::size_t index)
    {
        if(index >= slots_.size())
            throw UsageError("fiber::Scheduler::makeReady(): index out of range");
        if(slots_[index].status == Status::Blocked)
            slots_[index].status = Status::Ready;
    }

    void Scheduler::trampoline()
    {
        // Entered exactly once per fiber activation via the first context
        // switch into the fresh stack.
        auto* self = t_scheduler;
        self->runBodyOn(*self->running_);
        // Unreachable: runBodyOn switches back to the scheduler for good.
        std::terminate();
    }

    void Scheduler::runBodyOn(FiberSlot& slot)
    {
        try
        {
            (*body_)(slot.index);
        }
        catch(...)
        {
            slot.error = std::current_exception();
        }
        slot.status = Status::Done;
        switchToScheduler();
        std::terminate(); // a Done fiber must never be resumed
    }

    void Scheduler::switchToFiber(FiberSlot& slot)
    {
        running_ = &slot;
        ++switches_;
        detail::switchContext(config_.switchImpl, schedCtx_, slot.ctx);
        running_ = nullptr;
    }

    void Scheduler::switchToScheduler()
    {
        auto& slot = *running_;
        ++switches_;
        detail::switchContext(config_.switchImpl, slot.ctx, schedCtx_);
    }

    void Scheduler::cancelRemaining()
    {
        cancelRequested_ = true;
        for(auto& slot : slots_)
            if(slot.status == Status::Blocked)
                slot.status = Status::Ready;
    }

    void Scheduler::run(std::size_t count, Body const& body)
    {
        if(t_scheduler != nullptr)
            throw UsageError("fiber::Scheduler::run() is not re-entrant on the same thread");
        if(count == 0)
            return;

        t_scheduler = this;
        body_ = &body;
        doneCount_ = 0;
        activeCount_ = count;
        cancelRequested_ = false;

        // Shrinking: hand surplus stacks back to the pool instead of
        // unmapping them.
        while(slots_.size() > count)
        {
            stackPool_.recycle(std::move(slots_.back().stack));
            slots_.pop_back();
        }
        slots_.resize(count);
        for(std::size_t i = 0; i < count; ++i)
        {
            auto& slot = slots_[i];
            slot.index = i;
            slot.status = Status::Ready;
            slot.error = nullptr;
            if(!slot.stack.valid())
                slot.stack = stackPool_.acquire();
            else
                slot.stack.armCanary();
            detail::makeContext(
                config_.switchImpl,
                slot.ctx,
                slot.stack.lo(),
                slot.stack.usableBytes(),
                &Scheduler::trampoline,
                schedCtx_);
        }

        std::exception_ptr firstError{};
        bool stalled = false;
        bool canaryBroken = false;

        while(doneCount_ < count)
        {
            bool progressed = false;
            for(auto& slot : slots_)
            {
                if(slot.status != Status::Ready)
                    continue;
                progressed = true;
                switchToFiber(slot);
                if(!slot.stack.canaryIntact())
                {
                    // The fiber scribbled over its canary: its stack contents
                    // are untrustworthy, do not resume it again.
                    canaryBroken = true;
                    slot.status = Status::Done;
                    ++doneCount_;
                    cancelRemaining();
                    continue;
                }
                if(slot.status == Status::Done)
                {
                    ++doneCount_;
                    if(slot.error != nullptr && firstError == nullptr)
                    {
                        // Distinguish user errors from our own cancellation
                        // signal; only the former is primary.
                        try
                        {
                            std::rethrow_exception(slot.error);
                        }
                        catch(FiberCancelled const&)
                        {
                        }
                        catch(...)
                        {
                            firstError = slot.error;
                            // Unwind the remaining fibers promptly; blocked
                            // siblings would otherwise stall the run first.
                            cancelRemaining();
                        }
                    }
                }
            }
            if(!progressed && doneCount_ < count)
            {
                // Every unfinished fiber is Blocked: cooperative deadlock,
                // i.e. a barrier that can never be completed.
                stalled = true;
                cancelRemaining();
            }
        }

        // Recycle state for the next run.
        body_ = nullptr;
        t_scheduler = nullptr;

        if(canaryBroken)
            throw StackOverflowError("fiber stack canary destroyed; increase SchedulerConfig::stackBytes");
        if(firstError != nullptr)
            std::rethrow_exception(firstError);
        if(stalled)
            throw BarrierDivergenceError(
                "cooperative deadlock: all unfinished fibers are blocked in a barrier that can never complete "
                "(a sibling fiber exited before reaching it)");
    }
} // namespace fiber
