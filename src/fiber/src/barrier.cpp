#include "fiber/barrier.hpp"

#include "fiber/error.hpp"
#include "fiber/scheduler.hpp"

namespace fiber
{
    Barrier::Barrier(std::size_t participants) : participants_(participants)
    {
        if(participants == 0)
            throw UsageError("fiber::Barrier: participants must be > 0");
        waiters_.reserve(participants - 1);
    }

    void Barrier::arriveAndWait()
    {
        auto& sched = Scheduler::current();
        ++arrived_;
        if(arrived_ == participants_)
        {
            // Last arriver: open the barrier and wake all waiters. It keeps
            // running; the woken fibers resume on their next schedule slot.
            arrived_ = 0;
            ++generation_;
            for(auto const idx : waiters_)
                sched.makeReady(idx);
            waiters_.clear();
            return;
        }

        waiters_.push_back(Scheduler::currentIndex());
        auto const myGeneration = generation_;
        while(generation_ == myGeneration)
        {
            if(sched.cancelRequested())
                throw FiberCancelled{};
            sched.blockCurrent();
        }
    }
} // namespace fiber
